"""Splice the current claims-check results into EXPERIMENTS.md.

Run from the repo root after a full sweep:

    python -m repro.experiments.run_all
    python scripts/update_experiments.py
"""

from repro.analysis.compare import check_all, render_markdown

MARKER = "<!-- RESULTS -->"

results = check_all()
table = render_markdown(results)
text = open("EXPERIMENTS.md").read()
head, _, tail = text.partition(MARKER)
if not tail:
    raise SystemExit("marker not found")
# Keep the marker so the splice is repeatable; replace everything up to the
# next section heading.
rest = tail.split("\n## ", 1)
remainder = ("\n## " + rest[1]) if len(rest) > 1 else ""
open("EXPERIMENTS.md", "w").write(head + MARKER + "\n\n" + table + "\n" + remainder)
print("updated EXPERIMENTS.md")
