"""Micro-harness: time the full cross-module lint pass over ``src/``.

The TRD006-TRD008 analyzers build a project call graph and run taint
fixpoints, so their cost grows with the codebase.  This harness keeps
that growth honest: it times ``run_lint_detailed`` end-to-end (best of
``--repeats``), prints the per-rule breakdown, and exits nonzero if the
pass exceeds ``--budget-s``.  CI runs it so an accidentally quadratic
rule fails the build instead of quietly slowing every lint.

Run from the repo root:

    PYTHONPATH=src python scripts/lint_corpus.py [--budget-s 30]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.lint import ALL_RULES, run_lint_detailed


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="paths to lint"
    )
    parser.add_argument(
        "--budget-s",
        type=float,
        default=30.0,
        metavar="S",
        help="fail if the best full pass exceeds this many seconds",
    )
    parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="N",
        help="passes to run; the best one is judged (default: 3)",
    )
    args = parser.parse_args(argv)

    best_s = float("inf")
    best_timings: dict[str, float] = {}
    files = 0
    for _ in range(max(1, args.repeats)):
        started = time.perf_counter()
        report = run_lint_detailed(args.paths, ALL_RULES)
        elapsed = time.perf_counter() - started
        if elapsed < best_s:
            best_s = elapsed
            best_timings = report.rule_timings_ms
            files = report.files

    print(f"lint corpus: {files} files, best of {args.repeats}: {best_s:.2f}s")
    for code in sorted(best_timings):
        print(f"  {code}: {best_timings[code]:8.1f} ms")
    if best_s > args.budget_s:
        print(
            f"FAIL: full pass took {best_s:.2f}s, over the "
            f"{args.budget_s:.0f}s budget — a rule has gotten expensive"
        )
        return 1
    print(f"ok: within the {args.budget_s:.0f}s budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
