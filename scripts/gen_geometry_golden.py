"""Regenerate the x86-geometry equivalence golden.

The page-size API redesign (N-level ``PageGeometry``) must leave the
default x86-shaped pipeline bitwise-identical.  This script freezes the
reference state: for each of the four headline policies it runs the same
cold zipf stream the batch-equivalence suite uses and records the full
:func:`repro.sim.bench.state_fingerprint` (counters, per-set TLB LRU
order, walk histograms, accessed bits, simulated clock).

``tests/test_geometry_differential.py`` replays the identical scenario
through the current code and compares against the committed JSON — any
behavioural drift in the default geometry fails the suite.

Run from the repo root:

    PYTHONPATH=src python scripts/gen_geometry_golden.py
"""

from __future__ import annotations

import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.config import default_machine  # noqa: E402
from repro.core import (  # noqa: E402
    Baseline4KPolicy,
    HawkEyePolicy,
    THPPolicy,
    TridentPolicy,
)
from repro.sim.bench import state_fingerprint  # noqa: E402
from repro.sim.system import System  # noqa: E402
from repro.workloads.access import zipf  # noqa: E402

FOOTPRINT = 16 * 1024 * 1024
ACCESSES = 60_000
POLICIES = {
    "Trident": TridentPolicy,
    "THP": THPPolicy,
    "Baseline4K": Baseline4KPolicy,
    "HawkEye": HawkEyePolicy,
}


def canonical(obj):
    """JSON-stable form of a fingerprint: str keys, lists for tuples."""
    if isinstance(obj, dict):
        return {str(k): canonical(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [canonical(v) for v in obj]
    return obj


def run_policy(policy) -> dict:
    system = System(default_machine(16), policy, seed=5)
    system.daemon_period_accesses = 20_000
    process = system.create_process()
    base = system.sys_mmap(process, FOOTPRINT)
    rng = np.random.default_rng(42)
    stream = zipf(rng, base, FOOTPRINT, ACCESSES)
    result = system.touch_batch(process, stream)
    fp = canonical(state_fingerprint(system, process))
    fp["batch_result"] = {
        "accesses": result.accesses,
        "translation_cycles": result.translation_cycles,
        "l1_hits": result.l1_hits,
        "l2_hits": result.l2_hits,
        "walks": result.walks,
        "faults": result.faults,
        "fault_ns": result.fault_ns,
        "walks_by_size": canonical(result.walks_by_size),
    }
    return fp


def main() -> None:
    out = {
        "scenario": {
            "machine_regions": 16,
            "footprint": FOOTPRINT,
            "accesses": ACCESSES,
            "daemon_period": 20_000,
            "seed": 5,
            "stream_seed": 42,
            "workload": "zipf",
        },
        "policies": {name: run_policy(p) for name, p in POLICIES.items()},
    }
    path = os.path.join(
        os.path.dirname(__file__), "..", "tests", "golden",
        "x86_geometry_fingerprints.json",
    )
    with open(path, "w") as f:
        json.dump(out, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"wrote {os.path.normpath(path)}")


if __name__ == "__main__":
    main()
