"""Physical-memory substrate: frames, buddy allocator, regions, fragmentation.

This package is the analogue of Linux's page allocator layer.  The paper's
first Trident change lives here: the buddy allocator tracks free chunks all
the way up to the large-page (1GB) order instead of stopping at 4MB, and two
per-large-region counters (free frames, unmovable frames) feed Trident's
smart compaction.
"""

from repro.mem.buddy import BuddyAllocator, OutOfMemoryError
from repro.mem.frames import FrameState
from repro.mem.numa import NumaBuddyPools, NumaTopology
from repro.mem.regions import RegionTracker
from repro.mem.fragmentation import FragmentationInjector, fmfi
from repro.mem.zerofill import ZeroFillEngine

__all__ = [
    "BuddyAllocator",
    "OutOfMemoryError",
    "FrameState",
    "NumaBuddyPools",
    "NumaTopology",
    "RegionTracker",
    "FragmentationInjector",
    "fmfi",
    "ZeroFillEngine",
]
