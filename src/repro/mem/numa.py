"""Per-node physical memory: NUMA topology + sharded buddy pools.

Trident's evaluation runs one socket; the fleet north-star is a large
multi-socket machine where physical contiguity is a *per-node* resource
(Cichlid) and page-table placement is itself a NUMA decision (Mitosis).
This module supplies the substrate half of that story:

* :class:`NumaTopology` — node count and the latency model: a remote DRAM
  access costs ``remote_multiplier`` times a local one, and a fraction of
  data accesses (``data_dram_fraction``) reach DRAM at all.
* :class:`NumaBuddyPools` — one :class:`~repro.mem.buddy.BuddyAllocator`
  per node, each running in local pfn space over a slice of one shared
  frame-state array, behind a facade that speaks the *full* allocator
  duck-type in global pfn space.  Every existing consumer — region
  tracker, compactors, zero-fill, fragmentation index, the ``--audit``
  checker — works against the facade unchanged.

Node boundaries are aligned to the max block size, so no buddy pair ever
straddles nodes and :func:`repro.lint.invariants.check_buddy` holds on
the facade exactly as on a flat allocator.  With ``nodes == 1`` the
facade is a zero-cost wrapper: identical pfn sequence, identical
counters, identical gauges — the property the single-node differential
test in ``tests/sim/test_numa_differential.py`` pins down.

Allocation placement is deterministic: an explicit preference (the
faulting process's home node, set by ``System``) is tried first, then the
remaining nodes ordered by descending free frames with the node index as
the tie-break — a pure function of allocator state, so runs replay
byte-for-byte at any parallelism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.mem.buddy import AllocationListener, BuddyAllocator, OutOfMemoryError
from repro.mem.fragmentation import fmfi
from repro.mem.frames import FrameState, new_frame_array


@dataclass(frozen=True)
class NumaTopology:
    """The machine's NUMA shape and access-latency model.

    ``remote_multiplier`` scales one DRAM access that crosses the
    interconnect (~1.4x on two-socket Skylake, higher on larger meshes).
    ``data_dram_fraction`` is the fraction of application accesses that
    miss the cache hierarchy and pay DRAM latency at all; page-walk
    accesses always pay it (page-table entries of big working sets miss
    the data caches — the same assumption WalkConfig.mem_access_cycles
    already makes).
    """

    nodes: int = 1
    remote_multiplier: float = 1.4
    data_dram_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"nodes must be >= 1, got {self.nodes}")
        if self.remote_multiplier < 1.0:
            raise ValueError(
                "remote_multiplier must be >= 1.0 (remote is never faster), "
                f"got {self.remote_multiplier}"
            )
        if not 0.0 <= self.data_dram_fraction <= 1.0:
            raise ValueError(
                f"data_dram_fraction must be in [0, 1], got "
                f"{self.data_dram_fraction}"
            )

    @property
    def interleaved(self) -> bool:
        return self.nodes > 1


class NumaBuddyPools:
    """Per-node buddy allocators behind the flat-allocator duck-type.

    Global pfns partition contiguously: node ``i`` owns
    ``[i * frames_per_node, (i + 1) * frames_per_node)``.  Each node's
    allocator works in local pfn space (its ``pfn_base`` translates trace
    events and listener callbacks back to global), over a slice view of
    the one shared frame-state array, so compaction's frame scans and the
    region tracker see a single coherent physical address space.
    """

    def __init__(
        self,
        total_frames: int,
        max_order: int,
        topology: NumaTopology,
        listeners: tuple[AllocationListener, ...] = (),
        obs=None,
    ) -> None:
        nodes = topology.nodes
        if total_frames % (nodes << max_order):
            raise ValueError(
                f"total_frames ({total_frames}) must split into {nodes} "
                f"node(s) of whole max-order blocks "
                f"({nodes} * {1 << max_order} frames)"
            )
        self.topology = topology
        self.total_frames = total_frames
        self.max_order = max_order
        self.frames_per_node = total_frames // nodes
        self.frame_state = new_frame_array(total_frames)
        per = self.frames_per_node
        self.pools: tuple[BuddyAllocator, ...] = tuple(
            BuddyAllocator(
                per,
                max_order,
                listeners=listeners,
                pfn_base=node * per,
                frame_state=self.frame_state[node * per : (node + 1) * per],
            )
            for node in range(nodes)
        )
        #: explicit placement preference (a node index) consulted first by
        #: :meth:`alloc`; ``System`` points it at the faulting process's
        #: home node for the duration of the fault handler
        self._preferred: int | None = None
        self._c_local = self._c_remote = None
        if obs is not None:
            self._attach_obs(obs)

    # -- observability ---------------------------------------------------
    def _attach_obs(self, obs) -> None:
        """Shared machine-wide counters + one aggregate gauge collector.

        Every pool attaches to the same registry, so the buddy counters
        are machine totals exactly as on a flat allocator; the per-node
        gauges (and the local/remote placement counters) only exist when
        the topology actually has more than one node, keeping the
        single-node registry byte-identical to the flat machine's.
        """
        for pool in self.pools:
            pool.attach_counters(obs)
        if self.nodes > 1:
            m = obs.metrics
            self._c_local = m.counter("numa_alloc_local_total")
            self._c_remote = m.counter("numa_alloc_remote_total")
        obs.metrics.add_collector(self._collect)

    def _collect(self, metrics) -> None:
        metrics.gauge("buddy_free_frames").value = self.free_frames
        for order in range(self.max_order + 1):
            metrics.gauge("buddy_free_blocks", order=order).value = (
                self.free_blocks(order)
            )
        if self.nodes > 1:
            for node, pool in enumerate(self.pools):
                metrics.gauge(
                    "numa_node_free_frames", node=node
                ).value = pool.free_frames
                metrics.gauge("numa_node_fmfi", node=node).value = (
                    self.node_fmfi(node)
                )

    # -- topology helpers -------------------------------------------------
    @property
    def nodes(self) -> int:
        return self.topology.nodes

    def node_of(self, pfn: int) -> int:
        """The node owning global frame ``pfn``."""
        if not 0 <= pfn < self.total_frames:
            raise ValueError(f"pfn {pfn} out of bounds")
        return pfn // self.frames_per_node

    def node_bounds(self, node: int) -> tuple[int, int]:
        """Global ``[lo, hi)`` frame range of ``node``."""
        per = self.frames_per_node
        return node * per, (node + 1) * per

    def node_free_frames(self, node: int) -> int:
        return self.pools[node].free_frames

    def node_fmfi(self, node: int, order: int | None = None) -> float:
        """Per-node fragmentation index (at the max order by default)."""
        return fmfi(self.pools[node], self.max_order if order is None else order)

    def set_alloc_preference(self, node: int | None) -> None:
        """Steer subsequent allocations toward ``node`` (None clears)."""
        if node is not None and not 0 <= node < self.nodes:
            raise ValueError(f"node {node} out of range [0, {self.nodes})")
        self._preferred = node

    def _candidates(self, preferred: int | None) -> list[int]:
        order = sorted(
            range(self.nodes),
            key=lambda n: (-self.pools[n].free_frames, n),
        )
        if preferred is None:
            return order
        return [preferred] + [n for n in order if n != preferred]

    # -- allocator duck-type ----------------------------------------------
    @property
    def free_frames(self) -> int:
        return sum(pool.free_frames for pool in self.pools)

    @property
    def used_frames(self) -> int:
        return self.total_frames - self.free_frames

    def free_blocks(self, order: int) -> int:
        return sum(pool.free_blocks(order) for pool in self.pools)

    def free_block_starts(self, order: int) -> list[int]:
        starts: list[int] = []
        for pool in self.pools:
            starts.extend(s + pool.pfn_base for s in pool.free_block_starts(order))
        return starts

    def has_free_block(self, order: int) -> bool:
        return any(pool.has_free_block(order) for pool in self.pools)

    def free_frames_at_or_above(self, order: int) -> int:
        return sum(pool.free_frames_at_or_above(order) for pool in self.pools)

    def allocation_at(self, pfn: int) -> tuple[int, bool] | None:
        pool = self.pools[self.node_of(pfn)]
        return pool.allocation_at(pfn - pool.pfn_base)

    def iter_allocations(self) -> Iterable[tuple[int, int, bool]]:
        for pool in self.pools:
            base = pool.pfn_base
            for pfn, order, movable in pool.iter_allocations():
                yield pfn + base, order, movable

    def is_free(self, pfn: int) -> bool:
        return self.frame_state[pfn] == FrameState.FREE

    def add_listener(self, listener: AllocationListener) -> None:
        for pool in self.pools:
            pool.add_listener(listener)

    def alloc(self, order: int, movable: bool = True, node: int | None = None) -> int:
        """Allocate on the preferred node, spilling remote deterministically.

        ``node`` overrides the sticky preference for this one call.  The
        local/remote placement counters record whether a *preferred*
        allocation landed home or spilled; un-preferred allocations (no
        tenant context) count as local wherever they land.
        """
        preferred = self._preferred if node is None else node
        last_oom: OutOfMemoryError | None = None
        for candidate in self._candidates(preferred):
            pool = self.pools[candidate]
            try:
                pfn = pool.alloc(order, movable)
            except OutOfMemoryError as exc:
                last_oom = exc
                continue
            if self._c_local is not None:
                if preferred is None or candidate == preferred:
                    self._c_local.inc()
                else:
                    self._c_remote.inc()
            return pfn + pool.pfn_base
        raise OutOfMemoryError(
            f"no free block at order >= {order} on any of {self.nodes} nodes"
        ) from last_oom

    def try_alloc(
        self, order: int, movable: bool = True, node: int | None = None
    ) -> int | None:
        try:
            return self.alloc(order, movable, node=node)
        except OutOfMemoryError:
            return None

    def alloc_at(self, pfn: int, order: int, movable: bool = True) -> None:
        if not 0 <= order <= self.max_order:
            raise ValueError(f"order {order} out of range [0, {self.max_order}]")
        if pfn + (1 << order) > self.total_frames:
            raise ValueError(f"block [{pfn}, {pfn + (1 << order)}) out of bounds")
        pool = self.pools[self.node_of(pfn)]
        pool.alloc_at(pfn - pool.pfn_base, order, movable)

    def free(self, pfn: int) -> None:
        pool = self.pools[self.node_of(pfn)]
        pool.free(pfn - pool.pfn_base)

    # -- verification -----------------------------------------------------
    def check_invariants(self) -> None:
        """Audit the facade and every per-node pool (tests / ``--audit``)."""
        from repro.lint.invariants import check_buddy, check_numa_pools

        check_buddy(self)
        check_numa_pools(self)
