"""Synchronous and asynchronous zero-filling of large pages.

A freshly faulted page must be zeroed before the application may see it (the
paper: "Zero-fill ensures application's leftover data does not leak out").
Zeroing a 1GB-class page synchronously inside the fault handler costs
~400 ms; Trident instead runs a background thread (``kzerofilld`` here) that
pre-zeroes free large chunks so the fault handler can grab one for ~2.7 ms.

The engine *holds* its pre-zeroed blocks as live buddy allocations so no
other allocation can dirty them; :meth:`take_zeroed` transfers ownership to
the caller (typically the page-fault handler), and :meth:`release_all`
returns the pool under memory pressure.
"""

from __future__ import annotations

from repro.config import CostModel, PageGeometry
from repro.mem.buddy import BuddyAllocator


class ZeroFillEngine:
    """Pool of pre-zeroed large blocks, refilled by a background daemon."""

    def __init__(
        self,
        buddy: BuddyAllocator,
        geometry: PageGeometry,
        cost: CostModel,
        pool_capacity: int = 2,
        obs=None,
    ) -> None:
        if pool_capacity < 0:
            raise ValueError(f"pool_capacity must be >= 0, got {pool_capacity}")
        self.buddy = buddy
        self.geometry = geometry
        self.cost = cost
        self.pool_capacity = pool_capacity
        self._pool: list[int] = []
        self._progress_ns = 0.0  # budget accrued toward the next block
        self.blocks_zeroed = 0
        self.zero_ns_spent = 0.0
        self.pool_hits = 0
        self.pool_misses = 0
        self.blocks_released = 0
        self._tracer = None
        self._clock = None
        self._spans = None
        self._c_fill = self._c_hit = self._c_miss = None
        self._c_release = self._c_credit_dropped = self._g_pool = None
        if obs is not None:
            m = obs.metrics
            self._tracer = obs.tracer
            self._clock = getattr(obs, "clock", None)
            self._spans = getattr(obs, "spans", None)
            self._c_fill = m.counter("zerofill_fill_total")
            self._c_hit = m.counter("zerofill_take_hit_total")
            self._c_miss = m.counter("zerofill_take_miss_total")
            self._c_release = m.counter("zerofill_release_total")
            self._c_credit_dropped = m.counter("zerofill_credit_dropped_ns_total")
            self._g_pool = m.gauge("zerofill_pool_size")

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def _drop_credit(self, amount_ns: float) -> None:
        """Surrender accrued zeroing credit (pressure release / no work)."""
        self._progress_ns = 0.0
        if self._c_credit_dropped is not None and amount_ns > 0.0:
            self._c_credit_dropped.inc(amount_ns)

    def take_zeroed(self) -> int | None:
        """Pop a pre-zeroed large block; the caller now owns the allocation.

        Returns the block's start PFN, or None when the pool is empty (the
        fault handler then zeroes synchronously or falls back to a smaller
        page size).
        """
        if self._pool:
            pfn = self._pool.pop()
            self.pool_hits += 1
            if self._c_hit is not None:
                self._c_hit.inc()
                self._g_pool.value = len(self._pool)
                tr = self._tracer
                if tr.active:
                    tr.emit("zerofill", "take", pfn=pfn, hit=True)
            return pfn
        self.pool_misses += 1
        if self._c_miss is not None:
            self._c_miss.inc()
            tr = self._tracer
            if tr.active:
                tr.emit("zerofill", "take", hit=False)
        return None

    def background_fill(self, budget_ns: float, concurrent: bool = False) -> float:
        """Zero free large blocks until the pool is full or budget runs out.

        Returns the nanoseconds of CPU actually consumed.  Called from the
        daemon scheduler with its per-tick CPU budget.  Zeroing one block
        usually costs more than one scheduling quantum, so progress carries
        over between calls (the daemon keeps zeroing where it left off).

        ``concurrent=True`` marks a refill running on another core in
        parallel with the caller (Trident's fault-path kick): its CPU time
        is real but does not advance the simulated clock, which tracks the
        *critical path* the caller is on.
        """
        if len(self._pool) >= self.pool_capacity:
            return 0.0
        block_cost = self.cost.zero_ns(self.geometry.large_size)
        self._progress_ns += budget_ns
        spent = budget_ns
        while (
            len(self._pool) < self.pool_capacity
            and self._progress_ns >= block_cost
        ):
            pfn = self.buddy.try_alloc(self.geometry.large_order, movable=True)
            if pfn is None:
                # No free large block to zero: return the unused credit.
                spent -= self._progress_ns
                self._drop_credit(self._progress_ns)
                break
            self._pool.append(pfn)
            self.blocks_zeroed += 1
            self._progress_ns -= block_cost
            if self._c_fill is not None:
                self._c_fill.inc()
                self._g_pool.value = len(self._pool)
                tr = self._tracer
                if tr.active:
                    tr.emit("zerofill", "fill", pfn=pfn, cost_ns=block_cost)
        if len(self._pool) >= self.pool_capacity:
            spent -= self._progress_ns
            self._progress_ns = 0.0
        spent = max(spent, 0.0)
        self.zero_ns_spent += spent
        if not concurrent and spent > 0.0 and self._clock is not None:
            self._clock.advance(spent)
            spans = self._spans
            if spans is not None and spans.enabled:
                spans.record_complete(
                    "zerofill_fill", spent, pool=len(self._pool)
                )
        return spent

    def release_all(self) -> int:
        """Return every pooled block to the buddy (memory pressure path)."""
        released = len(self._pool)
        for pfn in self._pool:
            self.buddy.free(pfn)
        self._pool.clear()
        # The credit was accrued toward blocks the reclaim path just took
        # away; keeping it would let the next daemon tick instantly re-grab
        # the large blocks that reclaim freed, defeating the release.
        self._drop_credit(self._progress_ns)
        self.blocks_released += released
        if self._c_release is not None:
            self._c_release.inc(released)
            self._g_pool.value = 0
            tr = self._tracer
            if tr.active:
                tr.emit("zerofill", "release_all", released=released)
        return released

    # -- latency helpers used by the fault handler -------------------------
    def sync_fault_ns(self, page_size: int) -> float:
        """Fault latency when the page must be zeroed inline."""
        return self.cost.fault_fixed_ns + self.cost.zero_ns(
            self.geometry.bytes_for(page_size)
        )

    def pooled_fault_ns(self) -> float:
        """Fault latency when a pre-zeroed large block is available.

        The paper measures ~2.7 ms: page-table setup and bookkeeping for a
        1GB mapping, with zeroing already paid in the background.
        """
        return self.cost.large_fault_mapped_ns

    def fault_ns(self, page_size: int, used_pool: bool) -> float:
        if page_size == self.geometry.top_level and used_pool:
            return self.pooled_fault_ns()
        return self.sync_fault_ns(page_size)
