"""Synchronous and asynchronous zero-filling of large pages.

A freshly faulted page must be zeroed before the application may see it (the
paper: "Zero-fill ensures application's leftover data does not leak out").
Zeroing a 1GB-class page synchronously inside the fault handler costs
~400 ms; Trident instead runs a background thread (``kzerofilld`` here) that
pre-zeroes free large chunks so the fault handler can grab one for ~2.7 ms.

The engine *holds* its pre-zeroed blocks as live buddy allocations so no
other allocation can dirty them; :meth:`take_zeroed` transfers ownership to
the caller (typically the page-fault handler), and :meth:`release_all`
returns the pool under memory pressure.
"""

from __future__ import annotations

from repro.config import CostModel, PageGeometry, PageSize
from repro.mem.buddy import BuddyAllocator


class ZeroFillEngine:
    """Pool of pre-zeroed large blocks, refilled by a background daemon."""

    def __init__(
        self,
        buddy: BuddyAllocator,
        geometry: PageGeometry,
        cost: CostModel,
        pool_capacity: int = 2,
    ) -> None:
        if pool_capacity < 0:
            raise ValueError(f"pool_capacity must be >= 0, got {pool_capacity}")
        self.buddy = buddy
        self.geometry = geometry
        self.cost = cost
        self.pool_capacity = pool_capacity
        self._pool: list[int] = []
        self._progress_ns = 0.0  # budget accrued toward the next block
        self.blocks_zeroed = 0
        self.zero_ns_spent = 0.0

    @property
    def pool_size(self) -> int:
        return len(self._pool)

    def take_zeroed(self) -> int | None:
        """Pop a pre-zeroed large block; the caller now owns the allocation.

        Returns the block's start PFN, or None when the pool is empty (the
        fault handler then zeroes synchronously or falls back to a smaller
        page size).
        """
        if self._pool:
            return self._pool.pop()
        return None

    def background_fill(self, budget_ns: float) -> float:
        """Zero free large blocks until the pool is full or budget runs out.

        Returns the nanoseconds of CPU actually consumed.  Called from the
        daemon scheduler with its per-tick CPU budget.  Zeroing one block
        usually costs more than one scheduling quantum, so progress carries
        over between calls (the daemon keeps zeroing where it left off).
        """
        if len(self._pool) >= self.pool_capacity:
            return 0.0
        block_cost = self.cost.zero_ns(self.geometry.large_size)
        self._progress_ns += budget_ns
        spent = budget_ns
        while (
            len(self._pool) < self.pool_capacity
            and self._progress_ns >= block_cost
        ):
            pfn = self.buddy.try_alloc(self.geometry.large_order, movable=True)
            if pfn is None:
                # No free large block to zero: return the unused credit.
                spent -= self._progress_ns
                self._progress_ns = 0.0
                break
            self._pool.append(pfn)
            self.blocks_zeroed += 1
            self._progress_ns -= block_cost
        if len(self._pool) >= self.pool_capacity:
            spent -= self._progress_ns
            self._progress_ns = 0.0
        spent = max(spent, 0.0)
        self.zero_ns_spent += spent
        return spent

    def release_all(self) -> int:
        """Return every pooled block to the buddy (memory pressure path)."""
        released = len(self._pool)
        for pfn in self._pool:
            self.buddy.free(pfn)
        self._pool.clear()
        return released

    # -- latency helpers used by the fault handler -------------------------
    def sync_fault_ns(self, page_size: int) -> float:
        """Fault latency when the page must be zeroed inline."""
        return self.cost.fault_fixed_ns + self.cost.zero_ns(
            self.geometry.bytes_for(page_size)
        )

    def pooled_fault_ns(self) -> float:
        """Fault latency when a pre-zeroed large block is available.

        The paper measures ~2.7 ms: page-table setup and bookkeeping for a
        1GB mapping, with zeroing already paid in the background.
        """
        return self.cost.large_fault_mapped_ns

    def fault_ns(self, page_size: int, used_pool: bool) -> float:
        if page_size == PageSize.LARGE and used_pool:
            return self.pooled_fault_ns()
        return self.sync_fault_ns(page_size)
