"""Binary buddy allocator with free lists up to the large-page order.

Linux's buddy allocator keeps per-order free lists only up to order 10 (4MB
with 4KB pages).  Trident's first kernel change extends the lists to order 18
(1GB) so the page-fault handler and khugepaged can ask for 1GB-contiguous
chunks directly.  This module implements the full extended allocator:

* power-of-two blocks, split on demand, eagerly coalesced on free;
* deterministic lowest-address-first allocation (heap + membership set per
  order, with lazy deletion);
* a movability tag per allocation — unmovable blocks model kernel objects
  (inodes, DMA buffers) that compaction must not relocate;
* ``alloc_at`` for claiming a specific free range (used by compaction to
  place copied frames inside a chosen target region, and by hugetlbfs-style
  static reservation);
* listener hooks so :class:`repro.mem.regions.RegionTracker` can maintain the
  per-large-region counters smart compaction selects sources/targets by.
"""

from __future__ import annotations

import heapq
from typing import Iterable, Protocol

from repro.mem.frames import FrameState, new_frame_array


class OutOfMemoryError(RuntimeError):
    """Raised when an allocation cannot be satisfied at any order."""


class AllocationListener(Protocol):
    """Observer notified of every allocation and free."""

    def on_alloc(self, pfn: int, order: int, movable: bool) -> None: ...

    def on_free(self, pfn: int, order: int, movable: bool) -> None: ...


class _OrderFreeList:
    """Free blocks of one order: min-heap of starts plus a membership set.

    The heap gives lowest-address-first allocation (deterministic and
    Linux-like); the set gives O(1) membership tests for buddy coalescing.
    Heap entries whose start is no longer in the set are stale and skipped.
    """

    __slots__ = ("_heap", "_members")

    def __init__(self) -> None:
        self._heap: list[int] = []
        self._members: set[int] = set()

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, pfn: int) -> bool:
        return pfn in self._members

    def add(self, pfn: int) -> None:
        self._members.add(pfn)
        heapq.heappush(self._heap, pfn)

    def discard(self, pfn: int) -> None:
        self._members.discard(pfn)

    def pop_lowest(self) -> int:
        while self._heap:
            pfn = heapq.heappop(self._heap)
            if pfn in self._members:
                self._members.remove(pfn)
                return pfn
        raise KeyError("free list is empty")

    def members(self) -> Iterable[int]:
        return iter(self._members)


class BuddyAllocator:
    """Buddy allocator over ``total_frames`` base frames.

    ``max_order`` is the largest tracked order; Trident configures it to the
    geometry's large order (1GB), stock Linux to 10 (4MB).
    """

    def __init__(
        self,
        total_frames: int,
        max_order: int,
        listeners: tuple[AllocationListener, ...] = (),
        obs=None,
        pfn_base: int = 0,
        frame_state=None,
    ) -> None:
        if max_order < 0:
            raise ValueError(f"max_order must be >= 0, got {max_order}")
        if total_frames <= 0 or total_frames % (1 << max_order):
            raise ValueError(
                f"total_frames ({total_frames}) must be a positive multiple "
                f"of the max block size ({1 << max_order})"
            )
        self.total_frames = total_frames
        self.max_order = max_order
        #: offset added to local pfns when reporting to tracer/listeners —
        #: lets :class:`repro.mem.numa.NumaBuddyPools` run each node's
        #: allocator in local pfn space while observers see global pfns
        self.pfn_base = pfn_base
        if frame_state is None:
            frame_state = new_frame_array(total_frames)
        elif len(frame_state) != total_frames:
            raise ValueError(
                f"frame_state view has {len(frame_state)} entries, "
                f"expected {total_frames}"
            )
        self.frame_state = frame_state
        self._free_lists = [_OrderFreeList() for _ in range(max_order + 1)]
        #: start pfn -> (order, movable) for every live allocation
        self._allocated: dict[int, tuple[int, bool]] = {}
        self._listeners = list(listeners)
        self._free_frames = total_frames
        self._tracer = None
        self._c_alloc = self._c_free = None
        self._c_split = self._c_coalesce = None
        if obs is not None:
            self._attach_obs(obs)
        top = 1 << max_order
        for start in range(0, total_frames, top):
            self._free_lists[max_order].add(start)

    def _attach_obs(self, obs) -> None:
        """Wire counters (hot paths hold direct references) and gauges.

        The free-list-depth and free-frame gauges are *collector-mirrored*:
        the allocator already maintains the authoritative values, so they
        are copied into the registry at snapshot time instead of on every
        alloc/free — the buddy hot paths carry no gauge writes at all.
        """
        self.attach_counters(obs)
        obs.metrics.add_collector(self._collect)

    def attach_counters(self, obs) -> None:
        """Wire the hot-path counters and tracer without the gauge collector.

        The registry hands back the same counter objects for the same
        (name, labels), so several allocators attached to one registry
        share one set of totals — how the per-node pools of a NUMA machine
        keep the machine-wide buddy counters whole (the facade registers
        the single aggregate gauge collector instead).
        """
        m = obs.metrics
        self._tracer = obs.tracer
        orders = range(self.max_order + 1)
        self._c_alloc = [m.counter("buddy_alloc_total", order=o) for o in orders]
        self._c_free = [m.counter("buddy_free_total", order=o) for o in orders]
        self._c_split = m.counter("buddy_split_total")
        self._c_coalesce = m.counter("buddy_coalesce_total")

    def _collect(self, metrics) -> None:
        metrics.gauge("buddy_free_frames").value = self._free_frames
        for order in range(self.max_order + 1):
            metrics.gauge("buddy_free_blocks", order=order).value = len(
                self._free_lists[order]
            )

    def add_listener(self, listener: AllocationListener) -> None:
        """Register a listener after construction (e.g. an audit hook)."""
        self._listeners.append(listener)

    # -- introspection ---------------------------------------------------
    @property
    def free_frames(self) -> int:
        """Total number of free base frames."""
        return self._free_frames

    @property
    def used_frames(self) -> int:
        return self.total_frames - self._free_frames

    def free_blocks(self, order: int) -> int:
        """Number of free blocks exactly at ``order``."""
        return len(self._free_lists[order])

    def free_block_starts(self, order: int) -> list[int]:
        """Starts of free blocks exactly at ``order`` (unsorted)."""
        return list(self._free_lists[order].members())

    def has_free_block(self, order: int) -> bool:
        """True if an allocation of ``order`` would succeed right now."""
        return any(len(self._free_lists[o]) for o in range(order, self.max_order + 1))

    def free_frames_at_or_above(self, order: int) -> int:
        """Free frames sitting in blocks of order >= ``order``.

        This is the numerator of "suitable" free memory in the FMFI metric.
        """
        return sum(
            len(self._free_lists[o]) << o for o in range(order, self.max_order + 1)
        )

    def allocation_at(self, pfn: int) -> tuple[int, bool] | None:
        """(order, movable) of the allocation starting at ``pfn``, if any."""
        return self._allocated.get(pfn)

    def iter_allocations(self) -> Iterable[tuple[int, int, bool]]:
        """Yield (start_pfn, order, movable) for every live allocation."""
        for pfn, (order, movable) in self._allocated.items():
            yield pfn, order, movable

    # -- allocation -------------------------------------------------------
    def alloc(self, order: int, movable: bool = True) -> int:
        """Allocate a block of 2**order frames; returns its start PFN.

        Raises :class:`OutOfMemoryError` when no block at or above ``order``
        is free.  Splits a larger block when necessary, always taking the
        lowest-addressed candidate.
        """
        if not 0 <= order <= self.max_order:
            raise ValueError(f"order {order} out of range [0, {self.max_order}]")
        source = None
        for o in range(order, self.max_order + 1):
            if len(self._free_lists[o]):
                source = o
                break
        if source is None:
            raise OutOfMemoryError(f"no free block at order >= {order}")
        pfn = self._free_lists[source].pop_lowest()
        if self._c_split is not None and source > order:
            self._c_split.inc(source - order)
        while source > order:
            source -= 1
            self._free_lists[source].add(pfn + (1 << source))
        self._commit_alloc(pfn, order, movable)
        return pfn

    def try_alloc(self, order: int, movable: bool = True) -> int | None:
        """Like :meth:`alloc` but returns None instead of raising on OOM."""
        try:
            return self.alloc(order, movable)
        except OutOfMemoryError:
            return None

    def alloc_at(self, pfn: int, order: int, movable: bool = True) -> None:
        """Claim the specific free block [pfn, pfn + 2**order).

        The range must be aligned to ``order`` and currently free.  Splits
        enclosing free blocks as needed.  Raises ValueError if the range is
        misaligned or not fully free.
        """
        if not 0 <= order <= self.max_order:
            raise ValueError(f"order {order} out of range [0, {self.max_order}]")
        if pfn % (1 << order):
            raise ValueError(f"pfn {pfn} not aligned to order {order}")
        if pfn + (1 << order) > self.total_frames:
            raise ValueError(f"block [{pfn}, {pfn + (1 << order)}) out of bounds")
        enclosing = self._find_enclosing_free_block(pfn)
        if enclosing is None:
            raise ValueError(f"frames at pfn {pfn} are not free")
        encl_pfn, encl_order = enclosing
        if encl_order < order or pfn + (1 << order) > encl_pfn + (1 << encl_order):
            raise ValueError(
                f"free block at {encl_pfn} (order {encl_order}) does not "
                f"cover requested [{pfn}, {pfn + (1 << order)})"
            )
        self._free_lists[encl_order].discard(encl_pfn)
        if self._c_split is not None and encl_order > order:
            self._c_split.inc(encl_order - order)
        # Split the enclosing block down until the target block is isolated.
        cur_pfn, cur_order = encl_pfn, encl_order
        while cur_order > order:
            cur_order -= 1
            half = 1 << cur_order
            if pfn < cur_pfn + half:
                self._free_lists[cur_order].add(cur_pfn + half)
            else:
                self._free_lists[cur_order].add(cur_pfn)
                cur_pfn += half
        self._commit_alloc(pfn, order, movable)

    def _find_enclosing_free_block(self, pfn: int) -> tuple[int, int] | None:
        for order in range(self.max_order + 1):
            candidate = pfn & ~((1 << order) - 1)
            if candidate in self._free_lists[order]:
                return candidate, order
        return None

    def is_free(self, pfn: int) -> bool:
        """True if the single frame ``pfn`` is free."""
        return self.frame_state[pfn] == FrameState.FREE

    def _commit_alloc(self, pfn: int, order: int, movable: bool) -> None:
        n = 1 << order
        self.frame_state[pfn : pfn + n] = (
            FrameState.MOVABLE if movable else FrameState.UNMOVABLE
        )
        self._allocated[pfn] = (order, movable)
        self._free_frames -= n
        gpfn = pfn + self.pfn_base
        if self._c_alloc is not None:
            self._c_alloc[order].inc()
            tr = self._tracer
            if tr.active:
                tr.emit("buddy", "alloc", pfn=gpfn, order=order, movable=movable)
        for listener in self._listeners:
            listener.on_alloc(gpfn, order, movable)

    # -- free --------------------------------------------------------------
    def free(self, pfn: int) -> None:
        """Free the allocation that starts at ``pfn``; coalesces eagerly."""
        try:
            order, movable = self._allocated.pop(pfn)
        except KeyError:
            raise ValueError(f"no allocation starts at pfn {pfn}") from None
        n = 1 << order
        self.frame_state[pfn : pfn + n] = FrameState.FREE
        self._free_frames += n
        gpfn = pfn + self.pfn_base
        if self._c_free is not None:
            self._c_free[order].inc()
            tr = self._tracer
            if tr.active:
                tr.emit("buddy", "free", pfn=gpfn, order=order, movable=movable)
        for listener in self._listeners:
            listener.on_free(gpfn, order, movable)
        self._insert_and_coalesce(pfn, order)

    def _insert_and_coalesce(self, pfn: int, order: int) -> None:
        merges = 0
        while order < self.max_order:
            buddy = pfn ^ (1 << order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].discard(buddy)
            pfn = min(pfn, buddy)
            order += 1
            merges += 1
        if merges and self._c_coalesce is not None:
            self._c_coalesce.inc(merges)
        self._free_lists[order].add(pfn)

    # -- verification (tests and the --audit layer) -------------------------
    def check_invariants(self) -> None:
        """Assert internal consistency; O(total_frames).

        Delegates to :func:`repro.lint.invariants.check_buddy`, the
        canonical checker the ``--audit`` runtime layer also uses, so
        tests and audited runs enforce the identical invariant set.
        """
        from repro.lint.invariants import check_buddy

        check_buddy(self)
