"""Physical-memory fragmentation: FMFI metric and fragmentation injector.

The paper measures fragmentation with the Free Memory Fragmentation Index
(FMFI, from Ingens): the fraction of free memory that is *not* usable for a
contiguous allocation of a given order.  0 means every free byte sits in
chunks big enough; 1 means none does.

The injector reproduces the paper's methodology (Section 3, borrowed from
vMitosis): fill memory with page-cache-sized (base-frame) allocations, then
free pages at random offsets so reclaim returns memory in non-contiguous
chunks.  A small probability of unmovable allocations models kernel objects
that land in the middle of otherwise-movable regions and defeat compaction.
"""

from __future__ import annotations

import numpy as np

from repro.mem.buddy import BuddyAllocator, OutOfMemoryError


def fmfi(buddy: BuddyAllocator, order: int) -> float:
    """Free Memory Fragmentation Index for allocations of ``order``.

    ``1 - (free frames in blocks of order >= order) / (all free frames)``.
    Returns 0.0 when there is no free memory at all (nothing to fragment).
    """
    free = buddy.free_frames
    if free == 0:
        return 0.0
    suitable = buddy.free_frames_at_or_above(order)
    return 1.0 - suitable / free


class FragmentationInjector:
    """Fragments physical memory the way a file-cache workload does.

    After :meth:`fragment`, the injector owns a set of scattered base-frame
    allocations (the residual "page cache").  They are movable — compaction
    may relocate them (hook :meth:`notice_moved` up as the rmap owner) — and
    reclaimable: :meth:`reclaim` frees them in random (non-contiguous)
    order, modelling Linux page reclaim under memory pressure.  Unmovable
    allocations made during filling stay pinned unless
    :meth:`release_unmovable` is called (tests only).
    """

    def __init__(
        self, buddy: BuddyAllocator, rng: np.random.Generator | None = None
    ) -> None:
        self.buddy = buddy
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._frames: list[int] = []  # residual cache frames
        self._pos: dict[int, int] = {}  # pfn -> index in _frames
        self._unmovable_frames: list[int] = []

    @property
    def residual_frames(self) -> int:
        """Frames still held by the injected page cache."""
        return len(self._frames)

    @property
    def unmovable_count(self) -> int:
        return len(self._unmovable_frames)

    def cache_frames(self) -> list[int]:
        """Current residual cache frame PFNs (for rmap registration)."""
        return list(self._frames)

    def fragment(
        self,
        fill_fraction: float = 0.95,
        residual_fraction: float = 0.30,
        unmovable_prob: float = 0.002,
    ) -> float:
        """Fill then randomly free memory; returns the resulting large-order FMFI.

        * ``fill_fraction`` — fraction of currently-free memory to allocate
          as base frames (the cached file).
        * ``residual_fraction`` — fraction of those allocations left in place
          afterwards, scattered uniformly (the page cache that survives).
        * ``unmovable_prob`` — probability that an allocation is an unmovable
          kernel object rather than movable page cache.
        """
        if not 0.0 <= residual_fraction <= 1.0:
            raise ValueError(f"residual_fraction out of [0,1]: {residual_fraction}")
        to_fill = int(self.buddy.free_frames * fill_fraction)
        # Kernel-object allocations are grouped by migratetype into shared
        # pageblocks, so they cluster in a few regions rather than salting
        # every 1GB region (which would leave compaction no valid source).
        # Allocating them up-front reproduces that clustering: the buddy is
        # lowest-address-first, so they land together in the low regions.
        for _ in range(int(to_fill * unmovable_prob)):
            try:
                self._unmovable_frames.append(self.buddy.alloc(0, movable=False))
            except OutOfMemoryError:
                break
        fresh: list[int] = []
        for _ in range(to_fill):
            try:
                pfn = self.buddy.alloc(0, movable=True)
            except OutOfMemoryError:
                break
            fresh.append(pfn)
        if fresh:
            order = self.rng.permutation(len(fresh))
            fresh = [fresh[i] for i in order]
        keep = int(len(fresh) * residual_fraction)
        for pfn in fresh[keep:]:
            self.buddy.free(pfn)
        for pfn in fresh[:keep]:
            self._pos[pfn] = len(self._frames)
            self._frames.append(pfn)
        return fmfi(self.buddy, self.buddy.max_order)

    def reclaim(self, n_frames: int) -> list[int]:
        """Free up to ``n_frames`` residual cache frames in random order.

        Models page-cache reclaim: memory comes back, but in scattered base
        frames.  Returns the PFNs actually freed (so the system layer can
        drop their rmap registrations).
        """
        freed: list[int] = []
        for _ in range(min(n_frames, len(self._frames))):
            idx = int(self.rng.integers(len(self._frames)))
            pfn = self._frames[idx]
            self._swap_pop(idx)
            self.buddy.free(pfn)
            freed.append(pfn)
        return freed

    def reclaim_all(self) -> list[int]:
        """Free the entire residual cache (still scattered)."""
        return self.reclaim(len(self._frames))

    def release_unmovable(self) -> None:
        """Free all injected unmovable allocations (test teardown helper)."""
        for pfn in self._unmovable_frames:
            self.buddy.free(pfn)
        self._unmovable_frames.clear()

    def notice_moved(self, old_pfn: int, new_pfn: int) -> bool:
        """Compaction relocated one of our cache frames; update bookkeeping.

        Returns True if ``old_pfn`` belonged to the injected cache.
        """
        idx = self._pos.pop(old_pfn, None)
        if idx is None:
            return False
        self._frames[idx] = new_pfn
        self._pos[new_pfn] = idx
        return True

    # rmap FrameOwner interface: the injector owns its own frames.
    def relocate(self, old_pfn: int, new_pfn: int, order: int) -> None:
        assert order == 0, "page-cache blocks are single frames"
        moved = self.notice_moved(old_pfn, new_pfn)
        assert moved, f"relocate for pfn {old_pfn} not owned by the cache"

    def _swap_pop(self, idx: int) -> None:
        last = self._frames[-1]
        pfn = self._frames[idx]
        self._frames[idx] = last
        self._pos[last] = idx
        self._frames.pop()
        del self._pos[pfn]
