"""Per-frame physical memory state.

A frame is one base page of physical memory, identified by its PFN (page
frame number).  Each frame is in exactly one of three states; the state array
is shared between the buddy allocator (which owns transitions) and the
compaction engine (which scans occupied frames of a region).
"""

from __future__ import annotations

import numpy as np


class FrameState:
    """Symbolic frame states stored in a compact uint8 array."""

    FREE = 0
    MOVABLE = 1
    UNMOVABLE = 2

    NAMES = {FREE: "free", MOVABLE: "movable", UNMOVABLE: "unmovable"}


def new_frame_array(total_frames: int) -> np.ndarray:
    """A fresh all-free frame-state array for ``total_frames`` frames."""
    if total_frames <= 0:
        raise ValueError(f"total_frames must be positive, got {total_frames}")
    return np.zeros(total_frames, dtype=np.uint8)
