"""Per-large-region occupancy counters — the heart of smart compaction.

The paper (Section 5.1.3) adds two counters to every 1GB-aligned physical
region: the number of *free* base frames and the number of *unmovable* base
frames.  They are maintained incrementally on every buddy allocation/free, so
smart compaction can *select* its source region (most free frames, zero
unmovable frames) and target regions (fewest free frames) without scanning
physical memory.

A 2MB allocation inside a region is accounted as 512 base frames, exactly as
the paper describes ("We treat it as 512 base pages for ease of keeping
statistics").
"""

from __future__ import annotations

import numpy as np

from repro.config import PageGeometry


class RegionTracker:
    """Tracks free/unmovable frame counts per large (1GB-class) region.

    Register as a listener on :class:`repro.mem.buddy.BuddyAllocator`.  Block
    allocations never straddle region boundaries (buddy blocks are aligned to
    their own size and regions are large-order aligned), so each event
    touches exactly one region.
    """

    def __init__(
        self, total_frames: int, geometry: PageGeometry, obs=None
    ) -> None:
        fpl = geometry.frames_per_large
        if total_frames % fpl:
            raise ValueError(
                f"total_frames ({total_frames}) must be a multiple of the "
                f"large-region size ({fpl})"
            )
        self.geometry = geometry
        self.n_regions = total_frames // fpl
        self.frames_per_region = fpl
        self.free_frames = np.full(self.n_regions, fpl, dtype=np.int64)
        self.unmovable_frames = np.zeros(self.n_regions, dtype=np.int64)
        self._tracer = None
        if obs is not None:
            self._tracer = obs.tracer
            obs.metrics.add_collector(self._collect)

    def _collect(self, metrics) -> None:
        """Snapshot-time mirror of the O(1) per-region counters."""
        metrics.gauge("regions_fully_free").value = int(
            (self.free_frames == self.frames_per_region).sum()
        )
        metrics.gauge("regions_with_unmovable").value = int(
            (self.unmovable_frames > 0).sum()
        )

    def region_of(self, pfn: int) -> int:
        """Index of the large region containing frame ``pfn``."""
        return pfn // self.frames_per_region

    def region_start(self, region: int) -> int:
        """First PFN of ``region``."""
        return region * self.frames_per_region

    # -- buddy listener interface -----------------------------------------
    def on_alloc(self, pfn: int, order: int, movable: bool) -> None:
        region = self.region_of(pfn)
        n = 1 << order
        self.free_frames[region] -= n
        if not movable:
            self.unmovable_frames[region] += n

    def on_free(self, pfn: int, order: int, movable: bool) -> None:
        region = self.region_of(pfn)
        n = 1 << order
        self.free_frames[region] += n
        if not movable:
            self.unmovable_frames[region] -= n

    # -- selection queries used by smart compaction ------------------------
    def occupied_frames(self, region: int) -> int:
        return self.frames_per_region - int(self.free_frames[region])

    def is_fully_free(self, region: int) -> bool:
        return int(self.free_frames[region]) == self.frames_per_region

    def best_source_regions(self, exclude: set[int] | None = None) -> list[int]:
        """Candidate regions to *evacuate*, cheapest first.

        Regions with unmovable contents are excluded outright (evacuating
        them can never yield a fully-free region); already-free regions are
        skipped (nothing to gain).  Remaining regions sort by descending free
        frames, i.e. ascending bytes-to-copy.
        """
        exclude = exclude or set()
        candidates = [
            r
            for r in range(self.n_regions)
            if r not in exclude
            and self.unmovable_frames[r] == 0
            and 0 < self.free_frames[r] < self.frames_per_region
        ]
        candidates.sort(key=lambda r: (-self.free_frames[r], r))
        tr = self._tracer
        if tr is not None and tr.active:
            tr.emit(
                "regions",
                "select_sources",
                candidates=candidates[:8],
                total=len(candidates),
            )
        return candidates

    def best_target_regions(self, exclude: set[int]) -> list[int]:
        """Candidate regions to copy *into*, fullest (fewest free) first.

        Filling the fullest regions first concentrates occupancy, leaving
        other regions easier to free later — the dual of source selection.
        """
        candidates = [
            r
            for r in range(self.n_regions)
            if r not in exclude and self.free_frames[r] > 0
        ]
        candidates.sort(key=lambda r: (self.free_frames[r], r))
        tr = self._tracer
        if tr is not None and tr.active:
            tr.emit(
                "regions",
                "select_targets",
                candidates=candidates[:8],
                total=len(candidates),
            )
        return candidates

    def check_against(self, frame_state: np.ndarray) -> None:
        """Assert counters match a ground-truth frame-state array.

        Delegates to :func:`repro.lint.invariants.check_regions`, the
        canonical checker the ``--audit`` runtime layer also uses.
        """
        from repro.lint.invariants import check_regions

        check_regions(self, frame_state)
