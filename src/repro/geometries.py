"""Built-in page-size geometry presets and the custom-JSON loader.

Trident's thesis — "harness *all* architectural page sizes" — is not an
x86 statement: any ISA that exposes a ladder of translation granules can
play.  This module packages three ladders as data:

* ``x86`` — the default x86-class pipeline (4KB/2MB/1GB, run at the
  reach-preserving scaled geometry every experiment already uses).
  Selecting it is bitwise-identical to not selecting anything.
* ``sv-napot`` — RISC-V with the SVNAPOT extension: a **four**-level
  4KB / 64KB-NAPOT / 2MB / 1GB ladder.  NAPOT pages are regular PTEs
  with a contiguity hint, so their walks run the full radix depth and
  their leaves are never structure-cached — encoded per level, not in
  code.
* ``arm16k`` — ARM 16KB granule with contiguous-bit 2MB-class blocks
  and 32MB-class L2 blocks.  Contiguous-bit entries, like NAPOT, are
  last-level PTEs (no walk shortening); only the true block mapping
  skips a level.

Like the x86 family, the non-x86 presets run *scaled* (orders shrunk,
level ratios preserved) so figures regenerate in seconds; each preset
records the paper-scale factor of its top level.

Custom geometries load from JSON via :func:`load_geometry_json`; see
``docs/geometry.md`` for the schema and ``repro geometry`` for the CLI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.config import (
    CostModel,
    MachineConfig,
    PageGeometry,
    PageLevel,
    SCALED_GEOMETRY,
    SCALED_TLB,
    SCALE_FACTOR,
    TLBConfig,
    TLBHierarchyConfig,
    TLBSection,
    WalkConfig,
    X86_GEOMETRY,
    default_machine,
)


@dataclass(frozen=True)
class GeometryPreset:
    """A runnable geometry: the level ladder plus machine parameters."""

    key: str
    title: str
    description: str
    geometry: PageGeometry
    #: legacy three-tier TLB shapes; ignored when the geometry embeds
    #: per-level sections
    tlb: TLBHierarchyConfig = field(default_factory=lambda: SCALED_TLB)
    walk: WalkConfig = field(default_factory=WalkConfig)
    #: multiplier mapping scaled bytes back to paper-scale bytes
    scale_factor: int = 1

    def machine(self, total_large_regions: int = 64) -> MachineConfig:
        """A machine of ``total_large_regions`` top-level regions."""
        if self.key == "x86":
            # The canonical pipeline: must stay byte-identical to a run
            # that never mentioned geometries at all.
            return default_machine(total_large_regions)
        return MachineConfig(
            geometry=self.geometry,
            total_frames=total_large_regions * self.geometry.frames_per_large,
            tlb=self.tlb,
            walk=self.walk,
            cost=CostModel().scaled_for(self.geometry),
        )


def _sv_napot_geometry() -> PageGeometry:
    """Scaled RISC-V SVNAPOT ladder: 4K / 64K-NAPOT / 2M / 1G classes.

    Scaled orders (0, 2, 5, 10) keep the strict ordering and shrink the
    top level to 4MB (the same 256x byte factor as the x86 scaled
    geometry).  The NAPOT level walks the full radix depth —
    ``levels_skipped=0`` — because a NAPOT "page" is 2^N ordinary PTEs
    whose low PPN bits encode the contiguity; only the true superpage
    levels shorten the walk.
    """
    shared = TLBConfig(192, 12)
    return PageGeometry(
        base_shift=12,
        levels=(
            PageLevel(
                name="base", label="4KB", order=0, promotable=False,
                tlb=TLBSection(TLBConfig(16, 4), "shared"),
                levels_skipped=0, leaf_cached_prob=0.0,
            ),
            PageLevel(
                name="napot", label="64KB", order=2,
                tlb=TLBSection(TLBConfig(8, 4), "shared"),
                # NAPOT leaves are PTEs: full-depth walk, never
                # structure-cached.
                levels_skipped=0, leaf_cached_prob=0.0,
            ),
            PageLevel(
                name="mega", label="2MB", order=5, thp_target=True,
                tlb=TLBSection(TLBConfig(4, 4), "mid"),
                levels_skipped=1, leaf_cached_prob=0.60,
            ),
            PageLevel(
                name="giga", label="1GB", order=10,
                tlb=TLBSection(TLBConfig(4, 4), "large"),
                levels_skipped=2, leaf_cached_prob=0.85,
            ),
        ),
        l2_groups=(
            ("shared", shared),
            ("mid", TLBConfig(192, 12)),
            ("large", TLBConfig(16, 4)),
        ),
        name="sv-napot",
    )


def _arm16k_geometry() -> PageGeometry:
    """Scaled ARM 16K-granule ladder: 16K / 2M-contig / 32M-block classes.

    Contiguous-bit entries are, like NAPOT, ordinary last-level
    descriptors carrying a contiguity hint — full-depth walks, uncached
    leaves, but a single TLB entry of larger reach.  Only the level-2
    block mapping actually shortens the walk.
    """
    return PageGeometry(
        base_shift=14,
        levels=(
            PageLevel(
                name="granule", label="16KB", order=0, promotable=False,
                tlb=TLBSection(TLBConfig(16, 4), "shared"),
                levels_skipped=0, leaf_cached_prob=0.0,
            ),
            PageLevel(
                name="contig", label="2MB", order=4, thp_target=True,
                tlb=TLBSection(TLBConfig(8, 4), "shared"),
                levels_skipped=0, leaf_cached_prob=0.0,
            ),
            PageLevel(
                name="block", label="32MB", order=8,
                tlb=TLBSection(TLBConfig(4, 4), "block"),
                levels_skipped=1, leaf_cached_prob=0.60,
            ),
        ),
        l2_groups=(
            ("shared", TLBConfig(192, 12)),
            ("block", TLBConfig(16, 4)),
        ),
        name="arm16k",
    )


def _presets() -> dict[str, GeometryPreset]:
    sv = _sv_napot_geometry()
    arm = _arm16k_geometry()
    return {
        "x86": GeometryPreset(
            key="x86",
            title="x86-64 4KB/2MB/1GB (scaled)",
            description=(
                "The default three-tier x86 pipeline at the scaled "
                "geometry every experiment runs; selecting it is "
                "bitwise-identical to the pre-geometry default."
            ),
            geometry=PageGeometry(
                base_shift=SCALED_GEOMETRY.base_shift,
                mid_order=SCALED_GEOMETRY.mid_order,
                large_order=SCALED_GEOMETRY.large_order,
                name="x86",
            ),
            tlb=SCALED_TLB,
            scale_factor=SCALE_FACTOR,
        ),
        "sv-napot": GeometryPreset(
            key="sv-napot",
            title="RISC-V SVNAPOT 4KB/64KB/2MB/1GB (4 levels, scaled)",
            description=(
                "Four-level ladder with 64KB NAPOT pages: NAPOT leaves "
                "are PTEs (full-depth walks, uncached leaves) yet one "
                "TLB entry spans the whole naturally-aligned group."
            ),
            geometry=sv,
            scale_factor=X86_GEOMETRY.large_size // sv.large_size,
        ),
        "arm16k": GeometryPreset(
            key="arm16k",
            title="ARM 16KB granule, 2MB contiguous-bit, 32MB block (scaled)",
            description=(
                "16KB granule with contiguous-bit 2MB-class entries and "
                "32MB-class level-2 blocks; the contig level promotes "
                "like THP but never shortens a walk."
            ),
            geometry=arm,
            scale_factor=(32 << 20) // arm.large_size,
        ),
    }


GEOMETRY_PRESETS: dict[str, GeometryPreset] = _presets()


def resolve_geometry(name_or_path: str) -> GeometryPreset:
    """A preset by key, or a custom geometry loaded from a JSON file."""
    preset = GEOMETRY_PRESETS.get(name_or_path)
    if preset is not None:
        return preset
    if name_or_path.endswith(".json"):
        return load_geometry_json(name_or_path)
    known = ", ".join(sorted(GEOMETRY_PRESETS))
    raise ValueError(
        f"unknown geometry {name_or_path!r}; expected one of [{known}] "
        "or a path to a .json geometry file"
    )


def _tlb_config(obj: dict, where: str) -> TLBConfig:
    try:
        return TLBConfig(int(obj["entries"]), int(obj["ways"]))
    except KeyError as e:
        raise ValueError(f"{where}: TLB config needs 'entries' and 'ways'") from e


def geometry_from_dict(spec: dict, *, name: str = "") -> GeometryPreset:
    """Validate and build a custom geometry from a parsed JSON object.

    Raises :class:`ValueError` with a actionable message on any schema
    violation; :class:`PageGeometry`'s own validation (monotone orders,
    unique names, section/group consistency) runs on top.
    """
    if not isinstance(spec, dict):
        raise ValueError("geometry spec must be a JSON object")
    for key in ("base_shift", "levels"):
        if key not in spec:
            raise ValueError(f"geometry spec is missing {key!r}")
    raw_levels = spec["levels"]
    if not isinstance(raw_levels, list) or len(raw_levels) < 2:
        raise ValueError("'levels' must be a list of at least two levels")
    groups = tuple(
        (str(gname), _tlb_config(gcfg, f"l2_groups[{gname}]"))
        for gname, gcfg in (spec.get("l2_groups") or {}).items()
    )
    levels = []
    for i, raw in enumerate(raw_levels):
        if not isinstance(raw, dict):
            raise ValueError(f"levels[{i}] must be an object")
        for key in ("name", "order"):
            if key not in raw:
                raise ValueError(f"levels[{i}] is missing {key!r}")
        section = None
        if "l1" in raw:
            section = TLBSection(
                _tlb_config(raw["l1"], f"levels[{i}].l1"),
                raw.get("l2", "shared"),
            )
        levels.append(
            PageLevel(
                name=str(raw["name"]),
                label=str(raw.get("label", raw["name"])),
                order=int(raw["order"]),
                promotable=bool(raw.get("promotable", i > 0)),
                thp_target=bool(raw.get("thp_target", False)),
                tlb=section,
                levels_skipped=(
                    int(raw["levels_skipped"])
                    if "levels_skipped" in raw
                    else None
                ),
                leaf_cached_prob=(
                    float(raw["leaf_cached_prob"])
                    if "leaf_cached_prob" in raw
                    else None
                ),
            )
        )
    geometry = PageGeometry(
        base_shift=int(spec["base_shift"]),
        mid_order=None,
        large_order=None,
        levels=tuple(levels),
        l2_groups=groups,
        name=str(spec.get("name", name)),
    )
    walk_spec = spec.get("walk") or {}
    walk = WalkConfig(
        levels_base=int(walk_spec.get("levels_base", 4)),
        mem_access_cycles=int(walk_spec.get("mem_access_cycles", 160)),
        pwc_hit_rate=float(walk_spec.get("pwc_hit_rate", 0.80)),
    )
    scale = X86_GEOMETRY.large_size // geometry.large_size
    return GeometryPreset(
        key=geometry.name or name or "custom",
        title=spec.get("title", geometry.name or "custom geometry"),
        description=spec.get("description", "custom JSON geometry"),
        geometry=geometry,
        walk=walk,
        scale_factor=max(1, scale),
    )


def load_geometry_json(path: str) -> GeometryPreset:
    """Load and validate a custom geometry from a JSON file."""
    with open(path) as f:
        try:
            spec = json.load(f)
        except json.JSONDecodeError as e:
            raise ValueError(f"{path}: not valid JSON ({e})") from e
    try:
        return geometry_from_dict(spec, name=path)
    except ValueError as e:
        raise ValueError(f"{path}: {e}") from e
