"""Structural workload kernels: real data structures over simulated memory.

The registry workloads drive the TLB with *statistical* access models
(uniform/zipf/chase), which is what the figures are calibrated on.  This
module provides the structural alternative: actual data structures laid out
in a simulated address range whose operations emit the exact
virtual-address sequence the real benchmark's pointer graph would —
B+tree descents visit root → inner → leaf, BFS walks row pointers and edge
lists, a hash get walks bucket chains.

They exist for two purposes:

* validation — `examples/realistic_kernels.py` compares the TLB behaviour
  of the statistical models against these structural streams;
* building new workloads — a `Workload.access_stream` can return
  `tree.lookup_stream(keys)` directly.

No actual data is stored: the structures compute *addresses* only, which
is all the simulator consumes.
"""

from __future__ import annotations

import numpy as np


class BPlusTree:
    """A B+tree laid out in one address range, emitting lookup paths.

    Nodes are fixed-size and allocated level by level (breadth-first), the
    layout a bulk-loaded tree has.  A lookup emits one address per visited
    node, root to leaf — the dependent chain that makes B+trees TLB-hostile.
    """

    def __init__(
        self,
        base: int,
        size: int,
        node_bytes: int = 256,
        fanout: int = 16,
    ) -> None:
        if fanout < 2:
            raise ValueError(f"fanout must be >= 2, got {fanout}")
        if node_bytes <= 0 or size < node_bytes:
            raise ValueError("region too small for a single node")
        self.base = base
        self.node_bytes = node_bytes
        self.fanout = fanout
        total_nodes = size // node_bytes
        # Build level sizes top-down until we run out of nodes.
        self.level_offsets: list[int] = []  # node index of each level's start
        self.level_sizes: list[int] = []
        level_size = 1
        used = 0
        while used + level_size <= total_nodes:
            self.level_offsets.append(used)
            self.level_sizes.append(level_size)
            used += level_size
            level_size *= fanout
        if not self.level_sizes:
            raise ValueError("region too small for a single node")
        self.n_leaves = self.level_sizes[-1]

    @property
    def height(self) -> int:
        return len(self.level_sizes)

    def node_addr(self, level: int, index: int) -> int:
        return self.base + (self.level_offsets[level] + index) * self.node_bytes

    def lookup_path(self, key: int) -> list[int]:
        """Addresses visited looking up ``key`` (root -> leaf)."""
        leaf = key % self.n_leaves
        path = []
        for level in range(self.height):
            # The ancestor of `leaf` at this level.
            index = leaf // (self.fanout ** (self.height - 1 - level))
            index %= self.level_sizes[level]
            path.append(self.node_addr(level, index))
        return path

    def lookup_stream(self, keys: np.ndarray) -> np.ndarray:
        """The concatenated address stream of many lookups."""
        out = np.empty(len(keys) * self.height, dtype=np.int64)
        pos = 0
        for key in keys:
            for addr in self.lookup_path(int(key)):
                out[pos] = addr
                pos += 1
        return out


class CSRGraph:
    """A synthetic CSR graph: row pointers, edge array, visited bitmap.

    Generates the address sequence of a BFS step: read ``row_ptr[v]`` and
    ``row_ptr[v+1]``, scan that vertex's slice of ``col_idx``, and touch the
    visited bitmap for each neighbour.  Degrees are synthetic (power-law-ish
    via the rng) but the *layout* arithmetic is exactly CSR's.
    """

    ROW_BYTES = 8
    EDGE_BYTES = 8

    def __init__(
        self,
        row_base: int,
        edge_base: int,
        visited_base: int,
        n_vertices: int,
        avg_degree: int,
        rng: np.random.Generator,
    ) -> None:
        if n_vertices <= 1 or avg_degree < 1:
            raise ValueError("need at least 2 vertices and degree >= 1")
        self.row_base = row_base
        self.edge_base = edge_base
        self.visited_base = visited_base
        self.n_vertices = n_vertices
        degrees = rng.poisson(avg_degree, n_vertices).astype(np.int64) + 1
        self.row_ptr = np.concatenate(([0], np.cumsum(degrees)))
        self.n_edges = int(self.row_ptr[-1])
        self.rng = rng

    def vertex_step(self, v: int) -> np.ndarray:
        """Addresses touched expanding vertex ``v``."""
        start, end = int(self.row_ptr[v]), int(self.row_ptr[v + 1])
        addrs = [
            self.row_base + v * self.ROW_BYTES,
            self.row_base + (v + 1) * self.ROW_BYTES,
        ]
        for e in range(start, end):
            addrs.append(self.edge_base + e * self.EDGE_BYTES)
            neighbour = int(
                (e * 2654435761) % self.n_vertices
            )  # deterministic pseudo-neighbour
            addrs.append(self.visited_base + neighbour // 8)
        return np.array(addrs, dtype=np.int64)

    def bfs_stream(self, n_accesses: int, seed_vertex: int = 0) -> np.ndarray:
        """A BFS-shaped stream of approximately ``n_accesses`` addresses."""
        chunks = []
        total = 0
        v = seed_vertex % self.n_vertices
        while total < n_accesses:
            step = self.vertex_step(v)
            chunks.append(step)
            total += len(step)
            # Next frontier vertex: pseudo-random neighbour.
            v = int((v * 2654435761 + 1) % self.n_vertices)
        return np.concatenate(chunks)[:n_accesses]


class HashIndex:
    """A chained hash index: bucket heads + entry chains + values.

    A ``get`` reads the bucket head, walks a short chain of entries
    (geometric chain lengths), then reads the value — a Redis/Memcached
    lookup's address shape.
    """

    BUCKET_BYTES = 8
    ENTRY_BYTES = 64

    def __init__(
        self,
        bucket_base: int,
        entry_base: int,
        value_base: int,
        n_buckets: int,
        n_entries: int,
        value_bytes: int,
        rng: np.random.Generator,
    ) -> None:
        if n_buckets < 1 or n_entries < 1:
            raise ValueError("need at least one bucket and one entry")
        self.bucket_base = bucket_base
        self.entry_base = entry_base
        self.value_base = value_base
        self.n_buckets = n_buckets
        self.n_entries = n_entries
        self.value_bytes = value_bytes
        self.rng = rng

    def get_path(self, key: int) -> list[int]:
        bucket = key % self.n_buckets
        addrs = [self.bucket_base + bucket * self.BUCKET_BYTES]
        # Chain walk: 1 + geometric(0.6) entries, scattered by hashing.
        chain = 1 + min(3, int(self.rng.geometric(0.6)) - 1)
        for i in range(chain):
            entry = (key * 40503 + i * 2654435761) % self.n_entries
            addrs.append(self.entry_base + entry * self.ENTRY_BYTES)
        value = key % self.n_entries
        addrs.append(self.value_base + value * self.value_bytes)
        return addrs

    def get_stream(self, keys: np.ndarray) -> np.ndarray:
        chunks = [self.get_path(int(k)) for k in keys]
        return np.array([a for chunk in chunks for a in chunk], dtype=np.int64)
