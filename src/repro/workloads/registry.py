"""Catalog of the 12 benchmarks (Table 2) with calibration notes.

Calibration constants (``cpi_base``, ``walk_exposure``, ``touches_per_page``
on each spec) were tuned once against the paper's Figure 1 shape and then
frozen; they are *not* fitted per-experiment.  The guiding facts:

==========  =====================================================================
Workload    Why its constants look the way they do
==========  =====================================================================
XSBench     compute-heavy lookups: huge cpi, low exposure -> big walk-cycle
            reduction, small (+4%) speedup
SVM         moderately compute-bound; mixed pre-alloc/incremental VA layout
Graph500    irregular BFS; hot 1GB-unmappable frontier (Figure 4a spike)
CC/BC/PR    streaming GAPBS kernels: low cpi, low randomness -> 2MB suffices
CG          strided sparse matvec: same class as GAPBS
Btree       dependent descents: high exposure, incremental allocation only
GUPS        pure dependent random updates: cpi ~ DRAM latency, exposure ~1
Redis       request processing dominates cpi; stack segment hot; incremental
Memcached   flatter key popularity; slab fill ~55% (bloat source)
Canneal     dependent hops over whole netlist: biggest 1GB win
==========  =====================================================================
"""

from __future__ import annotations

from repro.workloads.base import Workload
from repro.workloads.btree import Btree
from repro.workloads.canneal import Canneal
from repro.workloads.cg import CG
from repro.workloads.graph import BC, CC, PR, Graph500
from repro.workloads.gups import GUPS
from repro.workloads.kvstore import Memcached, Redis
from repro.workloads.svm import SVM
from repro.workloads.xsbench import XSBench

#: name -> workload class, Table 2 order
REGISTRY: dict[str, type[Workload]] = {
    cls.spec.name: cls
    for cls in (
        XSBench,
        SVM,
        Graph500,
        CC,
        BC,
        PR,
        CG,
        Btree,
        GUPS,
        Redis,
        Memcached,
        Canneal,
    )
}

#: the paper's eight 1GB-sensitive ("shaded") applications
SHADED_EIGHT: tuple[str, ...] = tuple(
    name for name, cls in REGISTRY.items() if cls.spec.shaded
)

ALL_WORKLOADS: tuple[str, ...] = tuple(REGISTRY)


def get_workload(name: str, scale_factor: int | None = None) -> Workload:
    """Instantiate a workload by its Table 2 name."""
    try:
        cls = REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(REGISTRY)}"
        ) from None
    return cls() if scale_factor is None else cls(scale_factor)
