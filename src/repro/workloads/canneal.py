"""Canneal — PARSEC's cache-aware simulated annealing (32GB netlist).

The netlist is loaded element-by-element (incremental allocation in
mid-sized chunks), then annealing performs dependent random hops between
elements across the whole footprint — the paper's biggest 1GB beneficiary
in Figure 1 (+30% over THP) and +50% under virtualization.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec

SPEC = WorkloadSpec(
    name="Canneal",
    paper_footprint_gb=32.0,
    threads=1,
    description="Simulated cache-aware annealing from PARSEC",
    cpi_base=95.0,
    walk_exposure=0.50,
    touches_per_page=70_000,
    shaded=True,
)


class Canneal(Workload):
    spec = SPEC

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        rng = api.rng
        # Netlist parse: chunked allocations slightly above a large page, so
        # some interior slots are 1GB-mappable at fault time (Table 3:
        # 8 of 32GB fault-only; 30GB after promotion).
        chunk = int((1 << 22) * 1.3)
        grown = 0
        i = 0
        while grown < total:
            size = min(int(chunk * float(rng.uniform(0.9, 1.1))), total - grown)
            size = max(size, 4096)
            self._alloc(api, f"netlist_{i}", size)
            self.first_touch(api, f"netlist_{i}")
            grown += size
            i += 1
        api.phase("parse")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        parts = [
            (size, access.pointer_chase(api.rng, base, size, n // 4 + 1, node=128))
            for base, size in self.regions.values()
        ]
        return access.mixture(api.rng, parts, n)
