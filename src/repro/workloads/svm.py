"""SVM — support-vector-machine training on the kdd2012 dataset (67.9GB).

Mixed allocation behaviour: the feature matrix is loaded into a few big
chunks up front, but training allocates and frees working buffers
incrementally, fragmenting the virtual address space (Figure 3b: several GB
are 2MB- but not 1GB-mappable).  The fault handler maps ~54 of 68GB with
1GB pages; promotion recovers most of the rest (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec

SPEC = WorkloadSpec(
    name="SVM",
    paper_footprint_gb=67.9,
    threads=36,
    description="Support Vector Machine, kdd2012 dataset",
    cpi_base=130.0,
    walk_exposure=0.35,
    touches_per_page=25_000,
    shaded=True,
)


class SVM(Workload):
    spec = SPEC

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        geometry_large = 1 << 22  # scaled large page (4MB); sizing heuristic
        # Feature matrix: two big pre-allocated chunks (~60%).
        self._alloc(api, "features_a", int(total * 0.38))
        self._alloc(api, "features_b", int(total * 0.22))
        api.phase("load")
        self.first_touch(api, "features_a")
        self.first_touch(api, "features_b")
        # Training state grows incrementally with interleaved temp buffers
        # that get freed — this is what breaks 1GB alignment.
        rng = api.rng
        grown = 0
        target = int(total * 0.40)
        temps: list[int] = []
        i = 0
        while grown < target:
            size = int(geometry_large * float(rng.uniform(0.3, 1.4)))
            size = min(size, target - grown) or 4096
            self._alloc(api, f"work_{i}", size)
            self.first_touch(api, f"work_{i}")
            grown += size
            if i % 5 == 4:
                # Temp gradient buffers live across several iterations, so
                # their eventual frees leave persistent VA holes between the
                # working-set chunks - the Figure 3b mappability gap.
                temps.append(api.mmap(int(geometry_large * 0.25)))
            i += 1
        for tmp in temps:
            api.munmap(tmp)
        api.phase("train-setup")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        parts = []
        for label, (base, size) in self.regions.items():
            weight = size * (2.5 if label.startswith("work") else 1.0)
            parts.append(
                (weight, access.zipf(api.rng, base, size, n // 4 + 1, alpha=1.15))
            )
        return access.mixture(api.rng, parts, n)
