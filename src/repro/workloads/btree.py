"""Btree — random lookups in a B+tree (25GB of nodes).

Nodes are allocated incrementally from pools as the tree grows, so the
fault handler never sees a 1GB-mappable range (Table 4: "NA" for page-fault
1GB attempts); only promotion can install 1GB pages.  Lookups are dependent
pointer chases across the whole tree — very TLB-hostile.

This is also the one workload where static 1GB-Hugetlbfs beats Trident
(Section 7): hugetlbfs backs the pool with 1GB pages from the first byte at
the cost of bloat, while Trident must wait for khugepaged.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec

SPEC = WorkloadSpec(
    name="Btree",
    paper_footprint_gb=25.0,
    threads=1,
    description="Random lookups in a B+tree",
    cpi_base=170.0,
    walk_exposure=0.42,  # dependent chain: walks sit on the critical path
    touches_per_page=60_000,
    shaded=True,
)


class Btree(Workload):
    spec = SPEC

    #: fraction of node pools that are pre-grown reserve capacity the tree
    #: never splits into (Table 2 lists Btree's live tree at 10.5GB while
    #: its allocation reaches 25GB): THP never maps them, Trident's 1GB
    #: promotions cover them - the +13GB bloat of Section 7.
    reserve_pool_fraction = 0.45

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        rng = api.rng
        # Node pools grow one slab at a time as keys are inserted; slabs are
        # a fraction of a large page, and only ~75% of a live pool is
        # touched during the build (interior split slack).
        slab = max(4096, (1 << 22) // 3)  # ~1/3 of a scaled large page
        grown = 0
        i = 0
        while grown < total:
            size = min(slab, total - grown)
            reserve = float(rng.uniform(0, 1)) < self.reserve_pool_fraction
            label = f"reserve_{i}" if reserve else f"pool_{i}"
            self._alloc(api, label, max(size, 4096))
            if not reserve:
                self.first_touch(api, label, fraction=0.75)
            grown += size
            i += 1
        api.phase("build")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        parts = [
            (size, access.pointer_chase(api.rng, base, size, n // 4 + 1, node=256))
            for label, (base, size) in self.regions.items()
            if label.startswith("pool")
        ]
        return access.mixture(api.rng, parts, n)
