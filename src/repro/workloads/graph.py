"""Graph workloads: Graph500 (BFS/SSSP) and GAPBS CC / BC / PR.

Graph500 (63.5GB) is one of the paper's 1GB-sensitive applications and the
Figure 3a/4a case study: construction allocates the edge list up front,
builds the CSR incrementally, then frees the edge list — leaving the address
space fragmented, with a hot ~800MB region that is 2MB- but not 1GB-mappable
(the circled spike in Figure 4a).

The GAPBS kernels CC, BC and PR (72GB) pre-allocate and then stream with
good locality; 2MB pages already remove most walk cycles, so 1GB adds
little (they are the unshaded applications in Figures 1-2; BC becomes
slightly 1GB-sensitive only under virtualization).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec


class Graph500(Workload):
    spec = WorkloadSpec(
        name="Graph500",
        paper_footprint_gb=63.5,
        threads=36,
        description="BFS and SSSP over undirected graphs",
        cpi_base=120.0,
        walk_exposure=0.33,
        touches_per_page=25_000,
        shaded=True,
    )

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        # Phase 1: the edge list is generated into one big allocation.
        self._alloc(api, "edges", int(total * 0.44))
        self.first_touch(api, "edges")
        api.phase("edge-gen")
        # Phase 2: the CSR arrays are sized after the degree count and
        # allocated in a few big chunks (Graph500 pre-allocates; Table 3:
        # the fault handler alone maps 59 of 63.5GB with 1GB pages).  A
        # couple of small helper arrays land between them, so the CSR
        # extent boundaries are odd - some of it is only 2MB-mappable.
        csr_target = int(total * 0.53)
        self._alloc(api, "csr_index", int(csr_target * 0.3))
        self._alloc(api, "helper", max(4096, int(total * 0.004)))
        self._alloc(api, "csr_edges", int(csr_target * 0.7))
        self.first_touch(api, "csr_index")
        self.first_touch(api, "helper")
        self.first_touch(api, "csr_edges")
        api.phase("csr-build")
        # Phase 3: BFS state: a hot ~800MB (paper scale) region allocated
        # late at an unaligned size - the 1GB-unmappable spike of Figure 4a.
        # A guard mapping (thread stack) separates it from the CSR extent so
        # it cannot merge into a 1GB-mappable range.
        self._alloc(api, "guard", 4096, kind="stack")
        hot_size = max(4096, int(0.8 * (1 << 30)) // self.scale_factor)
        self._alloc(api, "frontier", hot_size)
        self.first_touch(api, "frontier")
        api.phase("bfs-init")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        rng = api.rng
        csr_parts = []
        for label, (base, size) in self.regions.items():
            if label.startswith("csr"):
                csr_parts.append((size, access.uniform(rng, base, size, n // 4 + 1)))
        fbase, fsize = self._region("frontier")
        parts = csr_parts + [
            # The 1GB-unmappable frontier is disproportionately hot
            # (Figure 4a's circled spike).
            (sum(w for w, _ in csr_parts) * 0.8, access.uniform(rng, fbase, fsize, n // 2 + 1)),
        ]
        return access.mixture(rng, parts, n)


class _GAPBSKernel(Workload):
    """Shared shape for CC / BC / PR: pre-allocated, streaming-friendly."""

    #: weight of the random (irregular) component of the access mix
    random_weight = 0.25

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        self._alloc(api, "graph", int(total * 0.75))
        self._alloc(api, "scores", int(total * 0.25))
        api.phase("alloc")
        self.first_touch(api, "graph")
        self.first_touch(api, "scores")
        api.phase("init")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        gbase, gsize = self._region("graph")
        sbase, ssize = self._region("scores")
        # Streaming sweeps dominate; the irregular component is heavily
        # skewed (frontier vertices are revisited), so a couple hundred 2MB
        # entries already cover the hot set - 1GB pages add almost nothing.
        parts = [
            (1.0 - self.random_weight, access.sequential(gbase, gsize, n, stride=64)),
            (
                self.random_weight * 0.7,
                access.zipf(api.rng, sbase, ssize, n // 2 + 1, alpha=1.6),
            ),
            (
                self.random_weight * 0.3,
                access.zipf(api.rng, gbase, gsize, n // 2 + 1, alpha=1.5),
            ),
        ]
        return access.mixture(api.rng, parts, n)


class CC(_GAPBSKernel):
    spec = WorkloadSpec(
        name="CC",
        paper_footprint_gb=72.0,
        threads=36,
        description="GAPBS connected components",
        cpi_base=55.0,
        walk_exposure=0.5,
        touches_per_page=60_000,
        shaded=False,
    )
    random_weight = 0.22


class BC(_GAPBSKernel):
    spec = WorkloadSpec(
        name="BC",
        paper_footprint_gb=72.0,
        threads=36,
        description="GAPBS betweenness centrality",
        cpi_base=60.0,
        walk_exposure=0.5,
        touches_per_page=60_000,
        shaded=False,
    )
    random_weight = 0.3  # slightly more irregular: 1GB-sensitive under virt


class PR(_GAPBSKernel):
    spec = WorkloadSpec(
        name="PR",
        paper_footprint_gb=72.0,
        threads=36,
        description="GAPBS PageRank",
        cpi_base=50.0,
        walk_exposure=0.5,
        touches_per_page=60_000,
        shaded=False,
    )
    random_weight = 0.18
