"""GUPS — the HPCC RandomAccess microbenchmark.

One pre-allocated 32GB table, uniformly random read-modify-write updates.
The paper's biggest Trident winner (+47% over THP under no fragmentation,
+50% under fragmentation): the working set is the whole table, every update
misses the caches *and* the 2MB TLB, and the table is fully 1GB-mappable
from the very first fault.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec

SPEC = WorkloadSpec(
    name="GUPS",
    paper_footprint_gb=32.0,
    threads=1,
    description="Irregular, memory-intensive microbenchmark (random updates)",
    cpi_base=135.0,  # every update is a DRAM-latency dependent access
    walk_exposure=1.0,  # almost nothing else to overlap the walk with
    touches_per_page=60_000,
    shaded=True,
)


class GUPS(Workload):
    spec = SPEC

    #: fraction of accesses to the stack (index arrays, RNG state); the
    #: paper notes GUPS is sensitive to TLB misses on the stack, which
    #: libhugetlbfs cannot back (Section 7).
    stack_weight = 0.06

    def setup(self, api: WorkloadAPI) -> None:
        stack_size = max(4096, int(self.footprint_bytes * 0.04))
        self._alloc(api, "stack", stack_size, kind="stack")
        self.first_touch(api, "stack")
        self._alloc(api, "table", self.footprint_bytes)
        api.phase("alloc")
        self.first_touch(api, "table")
        api.phase("init")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        base, size = self._region("table")
        sbase, ssize = self._region("stack")
        parts = [
            (1.0 - self.stack_weight, access.uniform(api.rng, base, size, n)),
            (self.stack_weight, access.uniform(api.rng, sbase, ssize, n // 2 + 1)),
        ]
        return access.mixture(api.rng, parts, n)
