"""Trace export/replay: capture a workload's behaviour for reuse.

A recorded trace freezes both sides of a workload — its allocation script
(the mmap/munmap sequence with sizes and kinds) and an access stream — so a
run can be replayed exactly on any policy without re-generating randomness,
shared with others as an ``.npz`` file, or hand-edited to build targeted
microbenchmarks.

    from repro.workloads.trace import record_trace, TraceWorkload

    trace = record_trace("GUPS", n_accesses=100_000)
    trace.save("gups.npz")
    ...
    workload = TraceWorkload(Trace.load("gups.npz"))
    metrics = NativeRunner(RunConfig(...)).run()  # via a registry hook
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.vm.addrspace import AddressSpace
from repro.workloads.base import Workload, WorkloadAPI
from repro.workloads.registry import get_workload


@dataclass
class Trace:
    """One frozen workload run: allocation ops + access stream."""

    workload: str
    #: (op, arg1, arg2): ("mmap", size, kind_index) / ("munmap", addr_index, 0)
    #: / ("phase", label_index, 0).  Addresses are referenced by the index of
    #: the mmap that created them, so replay is layout-independent.
    ops: list[tuple[str, int, int]]
    kinds: list[str]
    labels: list[str]
    accesses: np.ndarray  # offsets are absolute VAs from the recording run
    #: base address of the recording's first mmap, to rebase accesses
    base_va: int

    def save(self, path: str) -> None:
        np.savez_compressed(
            path,
            workload=np.array([self.workload]),
            op_names=np.array([op for op, _, _ in self.ops]),
            op_a=np.array([a for _, a, _ in self.ops], dtype=np.int64),
            op_b=np.array([b for _, _, b in self.ops], dtype=np.int64),
            kinds=np.array(self.kinds),
            labels=np.array(self.labels if self.labels else [""]),
            accesses=self.accesses,
            base_va=np.array([self.base_va], dtype=np.int64),
        )

    @classmethod
    def load(cls, path: str) -> "Trace":
        data = np.load(path, allow_pickle=False)
        ops = [
            (str(op), int(a), int(b))
            for op, a, b in zip(data["op_names"], data["op_a"], data["op_b"])
        ]
        labels = [str(x) for x in data["labels"]]
        if labels == [""]:
            labels = []
        return cls(
            workload=str(data["workload"][0]),
            ops=ops,
            kinds=[str(k) for k in data["kinds"]],
            labels=labels,
            accesses=data["accesses"],
            base_va=int(data["base_va"][0]),
        )


class _RecordingAPI:
    """WorkloadAPI that records every operation without simulating."""

    def __init__(self, seed: int, geometry) -> None:
        self.rng = np.random.default_rng(seed)
        self.aspace = AddressSpace(geometry)
        self.ops: list[tuple[str, int, int]] = []
        self.kinds: list[str] = []
        self.labels: list[str] = []
        self._mmap_index_of_addr: dict[int, int] = {}
        self._mmap_count = 0
        self.touched: list[np.ndarray] = []

    def _kind_index(self, kind: str) -> int:
        if kind not in self.kinds:
            self.kinds.append(kind)
        return self.kinds.index(kind)

    def mmap(self, nbytes: int, kind: str = "heap") -> int:
        addr = self.aspace.mmap(nbytes, name=kind).start
        self.ops.append(("mmap", nbytes, self._kind_index(kind)))
        self._mmap_index_of_addr[addr] = self._mmap_count
        self._mmap_count += 1
        return addr

    def munmap(self, addr: int) -> None:
        index = self._mmap_index_of_addr[addr]
        self.ops.append(("munmap", index, 0))
        self.aspace.munmap(addr)

    def touch(self, addresses: np.ndarray) -> None:
        self.touched.append(np.asarray(addresses, dtype=np.int64))

    def phase(self, label: str) -> None:
        self.labels.append(label)
        self.ops.append(("phase", len(self.labels) - 1, 0))


def record_trace(
    workload_name: str, n_accesses: int = 50_000, seed: int = 7
) -> Trace:
    """Run a workload's setup + stream against a recorder; return the trace."""
    from repro.config import SCALED_GEOMETRY

    workload = get_workload(workload_name)
    api = _RecordingAPI(seed, SCALED_GEOMETRY)
    workload.setup(api)
    stream = workload.access_stream(api, n_accesses)
    setup_touches = (
        np.concatenate(api.touched) if api.touched else np.empty(0, np.int64)
    )
    accesses = np.concatenate([setup_touches, np.asarray(stream, np.int64)])
    base_va = AddressSpace.MMAP_BASE
    return Trace(
        workload=workload_name,
        ops=api.ops,
        kinds=api.kinds,
        labels=api.labels,
        accesses=accesses,
        base_va=base_va,
    )


class TraceWorkload(Workload):
    """A Workload that replays a recorded trace deterministically.

    Replay re-issues the recorded mmap/munmap sequence; because the
    first-fit allocator is deterministic, addresses land where they did at
    record time and the absolute access stream stays valid.
    """

    def __init__(self, trace: Trace, scale_factor: int = 1) -> None:
        source = get_workload(trace.workload)
        self.spec = source.spec
        super().__init__(source.scale_factor)
        self.trace = trace
        self._addrs: list[int] = []

    @property
    def footprint_bytes(self) -> int:
        return sum(size for op, size, _ in self.trace.ops if op == "mmap")

    def setup(self, api: WorkloadAPI) -> None:
        for op, a, b in self.trace.ops:
            if op == "mmap":
                self._addrs.append(api.mmap(a, self.trace.kinds[b]))
            elif op == "munmap":
                api.munmap(self._addrs[a])
            elif op == "phase":
                api.phase(self.trace.labels[a])

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        stream = self.trace.accesses
        if n >= len(stream):
            return stream
        return stream[-n:]  # the steady-state tail
