"""Redis and Memcached — in-memory key-value stores.

Both grow their heaps *incrementally* while inserting key-value pairs, so
the page-fault handler can map almost nothing with 1GB pages (Table 3:
Redis 0GB fault-only); khugepaged promotion over the merged heap extent is
what eventually installs them (39GB for Redis).

Redis additionally has a TLB-sensitive stack/metadata segment that
libhugetlbfs cannot back (only heap/data segments are eligible), which is
why THP and Trident beat 2MB-Hugetlbfs on Redis in Figure 1.  At simulation
scale the real stack would be TLB-invisible, so the ``stack`` region here
aggregates all non-hugetlbfs-backable hot segments (documented substitution,
see DESIGN.md).

Both serve *requests*; the experiment runner samples per-request latencies
from these workloads for Table 5's p99.
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec


class _KVStore(Workload):
    """Shared shape: incremental heap growth + request-driven access."""

    #: zipf skew of the key popularity distribution
    key_alpha = 1.2
    #: fraction of accesses hitting the stack/metadata segment
    stack_weight = 0.12
    #: fraction of each live heap slab actually filled with live values
    fill_fraction = 1.0
    #: fraction of slabs that are pure arena slack: allocated by the slab
    #: allocator but never holding a live item.  THP never maps them (no
    #: faults land there); Trident's 1GB promotions cover them - the
    #: granularity mismatch behind the paper's Section 7 bloat numbers.
    arena_slack_fraction = 0.0
    #: accesses per request (descriptor lookup + value read)
    accesses_per_request = 4

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        stack_size = max(4096, int(total * 0.06))
        self._alloc(api, "stack", stack_size, kind="stack")
        self.first_touch(api, "stack")
        rng = api.rng
        # Insert phase: the heap grows one smallish slab at a time; slabs
        # merge into one extent but individual faults only ever see a small
        # mapped range, so large pages never apply at fault time.
        heap_target = total - stack_size
        slab = max(4096, (1 << 22) // 4)  # quarter of a scaled large page
        grown = 0
        i = 0
        while grown < heap_target:
            size = min(int(slab * float(rng.uniform(0.8, 1.2))), heap_target - grown)
            size = max(size, 4096)
            label = f"heap_{i}"
            dead = float(rng.uniform(0, 1)) < self.arena_slack_fraction
            if dead:
                label = f"slack_{i}"
            self._alloc(api, label, size)
            if not dead:
                self.first_touch(api, label, fraction=self.fill_fraction)
            grown += size
            i += 1
        api.phase("insert")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        rng = api.rng
        heap_parts = []
        for label, (base, size) in self.regions.items():
            if label.startswith("heap"):
                heap_parts.append(
                    (size, access.zipf(rng, base, size, n // 8 + 1, alpha=self.key_alpha))
                )
        sbase, ssize = self._region("stack")
        total_heap_weight = sum(w for w, _ in heap_parts)
        stack_w = total_heap_weight * self.stack_weight / (1 - self.stack_weight)
        parts = heap_parts + [(stack_w, access.zipf(rng, sbase, ssize, n // 4 + 1, alpha=1.4))]
        return access.mixture(rng, parts, n)


class Redis(_KVStore):
    spec = WorkloadSpec(
        name="Redis",
        paper_footprint_gb=43.6,
        threads=1,
        description="In-memory key-value store",
        cpi_base=210.0,  # per-access cost including request processing
        walk_exposure=0.38,
        touches_per_page=30_000,
        shaded=True,
    )
    key_alpha = 1.25
    stack_weight = 0.15


class Memcached(_KVStore):
    spec = WorkloadSpec(
        name="Memcached",
        paper_footprint_gb=137.0,  # Table 3 footprint (79GB dataset + slabs)
        threads=36,
        description="In-memory key-value caching store",
        cpi_base=190.0,
        walk_exposure=0.40,
        touches_per_page=15_000,
        shaded=True,
    )
    key_alpha = 1.08  # caching tier: much flatter popularity
    stack_weight = 0.05
    #: slab allocator rounds up aggressively: ~70% of live-slab bytes hold
    #: items, and ~28% of slabs are pure arena slack - together the origin
    #: of Trident's 38GB Memcached bloat (Section 7).
    fill_fraction = 0.70
    arena_slack_fraction = 0.28
