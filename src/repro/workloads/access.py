"""Virtual-address stream generators.

All generators return numpy int64 arrays of byte addresses.  They model the
locality classes the benchmarks exhibit:

* ``uniform`` — GUPS-style random updates: every access a fresh page.
* ``zipf`` — key-value-store skew: hot keys dominate, long cold tail.
* ``sequential`` — streaming scans (GAPBS top-down passes, CG row sweeps).
* ``strided`` — fixed-stride gathers (sparse matvec column accesses).
* ``pointer_chase`` — dependent random walks (B+tree descents, Canneal's
  netlist hops): like uniform in TLB terms but generated as a chain.
* ``mixture`` — weighted combination over labelled regions, for workloads
  with hot/cold structure (Graph500's hot frontier, Redis's stack).
"""

from __future__ import annotations

import numpy as np


def uniform(rng: np.random.Generator, base: int, size: int, n: int) -> np.ndarray:
    """n addresses uniformly random in [base, base+size)."""
    if size <= 0 or n < 0:
        raise ValueError(f"bad uniform params size={size} n={n}")
    return base + rng.integers(0, size, n, dtype=np.int64)


def zipf(
    rng: np.random.Generator,
    base: int,
    size: int,
    n: int,
    alpha: float = 1.2,
    granule: int = 4096,
) -> np.ndarray:
    """n addresses with Zipf-distributed popularity over ``granule`` blocks.

    Block ranks are randomly permuted across the region so hot blocks are
    scattered (real key-value stores hash keys), which is what defeats
    naive hot-range heuristics.
    """
    if alpha <= 1.0:
        raise ValueError(f"zipf alpha must be > 1, got {alpha}")
    blocks = max(1, size // granule)
    ranks = rng.zipf(alpha, n).astype(np.int64) - 1
    ranks %= blocks
    perm = rng.permutation(blocks)
    offsets = rng.integers(0, granule, n, dtype=np.int64)
    return base + perm[ranks] * granule + offsets


def sequential(base: int, size: int, n: int, stride: int = 64) -> np.ndarray:
    """n addresses walking the region with ``stride``, wrapping around."""
    if stride <= 0:
        raise ValueError(f"stride must be positive, got {stride}")
    idx = (np.arange(n, dtype=np.int64) * stride) % max(size, 1)
    return base + idx


def strided(
    rng: np.random.Generator, base: int, size: int, n: int, stride: int
) -> np.ndarray:
    """n addresses at random multiples of ``stride`` (sparse column gathers)."""
    slots = max(1, size // stride)
    return base + rng.integers(0, slots, n, dtype=np.int64) * stride


def pointer_chase(
    rng: np.random.Generator, base: int, size: int, n: int, node: int = 64
) -> np.ndarray:
    """n dependent accesses hopping between ``node``-sized slots."""
    slots = max(1, size // node)
    hops = rng.integers(0, slots, n, dtype=np.int64)
    return base + hops * node


def mixture(
    rng: np.random.Generator,
    parts: list[tuple[float, np.ndarray]],
    n: int,
) -> np.ndarray:
    """Interleave streams with given weights into one n-access stream.

    ``parts`` is [(weight, address_pool), ...]; each access draws its source
    stream by weight and consumes that stream round-robin.
    """
    weights = np.array([w for w, _ in parts], dtype=np.float64)
    if (weights < 0).any() or weights.sum() <= 0:
        raise ValueError("mixture weights must be non-negative and sum > 0")
    weights = weights / weights.sum()
    choice = rng.choice(len(parts), size=n, p=weights)
    out = np.empty(n, dtype=np.int64)
    cursors = [0] * len(parts)
    pools = [pool for _, pool in parts]
    for i, c in enumerate(choice):
        pool = pools[c]
        out[i] = pool[cursors[c] % len(pool)]
        cursors[c] += 1
    return out
