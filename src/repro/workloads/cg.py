"""CG.D — the NAS Parallel Benchmarks conjugate-gradient kernel (50GB).

Sparse matrix-vector products: long sequential row sweeps with strided
column gathers.  2MB pages remove most walk cycles; 1GB pages add little
(one of the paper's unshaded applications).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec

SPEC = WorkloadSpec(
    name="CG",
    paper_footprint_gb=50.0,
    threads=36,
    description="Conjugate Gradient from NAS Parallel Benchmarks (class D)",
    cpi_base=45.0,
    walk_exposure=0.5,
    touches_per_page=60_000,
    shaded=False,
)


class CG(Workload):
    spec = SPEC

    def setup(self, api: WorkloadAPI) -> None:
        total = self.footprint_bytes
        self._alloc(api, "matrix", int(total * 0.8))
        self._alloc(api, "vectors", int(total * 0.2))
        api.phase("alloc")
        self.first_touch(api, "matrix")
        self.first_touch(api, "vectors")
        api.phase("init")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        mbase, msize = self._region("matrix")
        vbase, vsize = self._region("vectors")
        # Row sweeps stream; column gathers are skewed toward dense rows,
        # so the hot vector pages fit the 2MB TLB (CG barely gains from 1GB).
        parts = [
            (0.65, access.sequential(mbase, msize, n, stride=64)),
            (0.35, access.zipf(api.rng, vbase, vsize, n // 2 + 1, alpha=1.55)),
        ]
        return access.mixture(api.rng, parts, n)
