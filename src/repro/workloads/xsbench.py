"""XSBench — Monte Carlo neutron-transport cross-section lookups.

Pre-allocates three big arrays (unionized energy grid, nuclide grids,
concentration data) totalling 117GB and performs random lookups into them.
Highly TLB-sensitive but also compute/cache-heavy per lookup, so walk-cycle
reductions translate into modest speedups (the paper: +4.1% over THP).
Pre-allocation in huge chunks means the fault handler alone maps nearly
everything with 1GB pages (Table 3: 114 of 117GB).
"""

from __future__ import annotations

import numpy as np

from repro.workloads import access
from repro.workloads.base import Workload, WorkloadAPI, WorkloadSpec

SPEC = WorkloadSpec(
    name="XSBench",
    paper_footprint_gb=117.0,
    threads=36,
    description="Monte Carlo particle transport for nuclear reactors",
    cpi_base=420.0,  # each lookup does real FLOP work + cache misses
    walk_exposure=0.30,  # lookups are independent; OoO overlaps walks well
    touches_per_page=12_000,
    shaded=True,
)


class XSBench(Workload):
    spec = SPEC

    # Array split mirrors XSBench's main allocations.
    _FRACTIONS = (("unionized_grid", 0.58), ("nuclide_grids", 0.36), ("index", 0.06))

    def setup(self, api: WorkloadAPI) -> None:
        for label, fraction in self._FRACTIONS:
            self._alloc(api, label, max(4096, int(self.footprint_bytes * fraction)))
        api.phase("alloc")
        for label, _ in self._FRACTIONS:
            self.first_touch(api, label)
        api.phase("init")

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        parts = []
        for (label, fraction), weight in zip(self._FRACTIONS, (0.55, 0.4, 0.05)):
            base, size = self._region(label)
            parts.append((weight, access.uniform(api.rng, base, size, n)))
        return access.mixture(api.rng, parts, n)
