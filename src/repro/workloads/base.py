"""Workload abstraction and the API workloads drive the system through.

A workload runs in two phases matching how the paper measures:

1. :meth:`Workload.setup` — allocate (and first-touch) memory following the
   benchmark's allocation pattern.  This is where pre-allocating and
   incremental workloads diverge, and where the runner lets promotion
   daemons catch up before measuring.
2. :meth:`Workload.access_stream` — generate the steady-state address
   stream the runner plays through the TLB.

Workloads never import the simulator; they see only :class:`WorkloadAPI`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.config import SCALE_FACTOR


class WorkloadAPI(Protocol):
    """What the experiment runner exposes to a workload."""

    rng: np.random.Generator

    def mmap(self, nbytes: int, kind: str = "heap") -> int:
        """Allocate virtual memory; returns the start address."""
        ...

    def munmap(self, addr: int) -> None: ...

    def touch(self, addresses: np.ndarray) -> None:
        """Issue a batch of loads/stores (faults + TLB simulation)."""
        ...

    def phase(self, label: str) -> None:
        """Mark an execution-phase boundary (mappability sampling hook)."""
        ...


@dataclass(frozen=True)
class WorkloadSpec:
    """Static facts (Table 2) and calibration constants for one benchmark.

    Calibration constants are documented per workload in ``registry.py``:

    * ``cpi_base`` — cycles per simulated access excluding translation
      (compute + cache-hierarchy stalls; memory-bound apps are high);
    * ``walk_exposure`` — the fraction of translation cycles an OoO core
      cannot hide (Section 4.1: reduction in walk cycles does not translate
      proportionally into speedup);
    * ``touches_per_page`` — how many times the real run touches each page,
      scaling one-time OS costs against steady-state compute.
    """

    name: str
    paper_footprint_gb: float
    threads: int
    description: str
    cpi_base: float
    walk_exposure: float
    touches_per_page: int
    shaded: bool  # one of the paper's eight 1GB-sensitive applications


class Workload:
    """Base class; subclasses define allocation and access behaviour."""

    spec: WorkloadSpec

    def __init__(self, scale_factor: int = SCALE_FACTOR) -> None:
        self.scale_factor = scale_factor
        self.regions: dict[str, tuple[int, int]] = {}  # label -> (addr, size)

    @property
    def footprint_bytes(self) -> int:
        """Paper footprint scaled into simulator bytes."""
        return int(self.spec.paper_footprint_gb * (1 << 30)) // self.scale_factor

    @property
    def represented_accesses(self) -> int:
        """Accesses the steady-state sample stands for (perf-model R)."""
        pages = self.footprint_bytes // 4096
        return max(1, pages * self.spec.touches_per_page)

    # -- to be implemented -----------------------------------------------
    def setup(self, api: WorkloadAPI) -> None:
        """Allocate memory (and perform any construction-phase touches)."""
        raise NotImplementedError

    def access_stream(self, api: WorkloadAPI, n: int) -> np.ndarray:
        """The steady-state address stream (n accesses)."""
        raise NotImplementedError

    def iter_batches(
        self, api: WorkloadAPI, n: int, batch: int = 65536
    ):
        """Yield the steady-state stream as contiguous int64 batches.

        The single streaming protocol the runner consumes: every batch
        is an ``np.int64`` array ready for ``System.touch_batch``.  The
        default adapter chunks :meth:`access_stream`; workloads whose
        streams are generated (rather than materialized) can override it
        to produce batches lazily without holding ``n`` addresses at
        once.
        """
        stream = np.ascontiguousarray(
            np.asarray(self.access_stream(api, n), dtype=np.int64)
        )
        for i in range(0, len(stream), batch):
            yield stream[i : i + batch]

    # -- helpers -----------------------------------------------------------
    def _alloc(self, api: WorkloadAPI, label: str, nbytes: int, kind: str = "heap") -> int:
        addr = api.mmap(nbytes, kind)
        self.regions[label] = (addr, nbytes)
        return addr

    def _region(self, label: str) -> tuple[int, int]:
        return self.regions[label]

    def first_touch(self, api: WorkloadAPI, label: str, fraction: float = 1.0) -> None:
        """Touch one address per base page over ``fraction`` of a region.

        Models initialization passes; drives the fault handler over the
        region so page-size decisions happen exactly as on first use.
        """
        addr, size = self.regions[label]
        limit = int(size * fraction)
        if limit <= 0:
            return
        pages = np.arange(0, limit, 4096, dtype=np.int64)
        api.touch(addr + pages)
