"""Workload models for the paper's 12 benchmarks (Table 2).

Each workload model captures the three properties the paper's effects hinge
on: the *allocation pattern* (pre-allocated vs incremental, which determines
1GB-mappability at fault vs promotion time — Table 3), the *access pattern*
(locality vs TLB reach, which determines page-walk pressure), and the
*calibration constants* (compute intensity and walk exposure, which
determine how walk-cycle savings translate into speedup).
"""

from repro.workloads.base import Workload, WorkloadAPI
from repro.workloads.trace import Trace, TraceWorkload, record_trace
from repro.workloads.registry import (
    REGISTRY,
    SHADED_EIGHT,
    ALL_WORKLOADS,
    get_workload,
)

__all__ = [
    "Workload",
    "WorkloadAPI",
    "Trace",
    "TraceWorkload",
    "record_trace",
    "REGISTRY",
    "SHADED_EIGHT",
    "ALL_WORKLOADS",
    "get_workload",
]
