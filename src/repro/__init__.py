"""Trident (MICRO 2021) reproduction: transparent allocation of all x86
page sizes over a from-scratch simulated memory subsystem.

Public API tour
---------------

Configuration::

    from repro import PageGeometry, PageSize, MachineConfig, default_machine

Build a system and run a workload::

    from repro import System, TridentPolicy
    from repro.workloads import get_workload

    system = System(default_machine(192), TridentPolicy)
    process = system.create_process("app")
    addr = system.sys_mmap(process, 64 << 20)
    system.touch(process, addr)

Or use the experiment harness (what the figures are built from)::

    from repro.experiments import NativeRunner, RunConfig

    metrics = NativeRunner(RunConfig("GUPS", "Trident")).run()
    print(metrics.walk_cycle_fraction, metrics.runtime_ns)

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

from repro.config import (
    SCALE_FACTOR,
    SCALED_GEOMETRY,
    X86_GEOMETRY,
    CostModel,
    MachineConfig,
    PageGeometry,
    PageSize,
    TLBConfig,
    TLBHierarchyConfig,
    WalkConfig,
    default_machine,
)
from repro.core import (
    Baseline4KPolicy,
    HawkEyePolicy,
    HugetlbfsPolicy,
    MemoryPolicy,
    THPPolicy,
    TridentPolicy,
)
from repro.sim import PerfModel, Process, RunMetrics, System

__version__ = "1.0.0"

__all__ = [
    "PageGeometry",
    "PageSize",
    "MachineConfig",
    "CostModel",
    "WalkConfig",
    "TLBConfig",
    "TLBHierarchyConfig",
    "default_machine",
    "X86_GEOMETRY",
    "SCALED_GEOMETRY",
    "SCALE_FACTOR",
    "MemoryPolicy",
    "Baseline4KPolicy",
    "THPPolicy",
    "HugetlbfsPolicy",
    "HawkEyePolicy",
    "TridentPolicy",
    "System",
    "Process",
    "PerfModel",
    "RunMetrics",
    "__version__",
]
