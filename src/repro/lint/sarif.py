"""Minimal SARIF 2.1.0 exporter for ``repro lint --format sarif``.

Emits the small, stable subset that code-scanning UIs (GitHub, VS Code
SARIF viewers) actually read: one run, the rule catalog under
``tool.driver.rules``, and one ``result`` per finding with a physical
location.  Paths are emitted package-relative (``repro/mem/buddy.py``)
so the artifact is stable across checkouts and CI workspaces.
"""

from __future__ import annotations

from typing import Sequence

from repro.lint.engine import Finding, Rule, _package_path

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def to_sarif(
    findings: Sequence[Finding], rules: Sequence[Rule]
) -> dict[str, object]:
    """A SARIF log object ready for ``json.dump``."""
    catalog = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.description},
            **(
                {"fullDescription": {"text": rule.rationale}}
                if rule.rationale
                else {}
            ),
        }
        for rule in rules
    ]
    results = [
        {
            "ruleId": finding.rule,
            "level": "error",
            "message": {"text": finding.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _package_path(finding.path)
                        },
                        "region": {"startLine": finding.line},
                    }
                }
            ],
        }
        for finding in findings
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": "docs/linting.md",
                        "rules": catalog,
                    }
                },
                "results": results,
            }
        ],
    }
