"""Runtime invariant auditing for the simulator core (``--audit``).

The static rules in :mod:`repro.lint.rules` catch convention drift; this
module machine-checks the *dynamic* contracts the simulator's results rest
on, the way ``CONFIG_DEBUG_VM`` turns on ``VM_BUG_ON`` sanity checks in
Linux:

* **buddy free lists** (:func:`check_buddy`) — free blocks aligned,
  in-bounds and non-overlapping; every mergeable buddy pair actually
  merged (eager coalescing); frame states consistent with both free lists
  and live allocations; full coverage of physical memory; and the O(1)
  free-frame gauge equal to the sum over the free lists.
* **region counters** (:func:`check_regions`) — the per-large-region
  free/unmovable counters smart compaction selects by match a ground-truth
  scan of the frame-state array.
* **gPA -> hPA mapping bijectivity** (:func:`check_pv_mappings`) — after
  Trident-pv exchange hypercalls, no host frame backs two guest-physical
  ranges, no mapping points at free host frames, and the host rmap owner
  records still invert every mapping.
* **NUMA pools** (:func:`check_numa_pools`, :func:`check_node_residency`,
  :func:`check_replica_accounting`) — on multi-node machines, each
  node's buddy pool passes the full flat-allocator check over its slice
  of physical memory, per-node totals sum to the facade's, page-table
  residency counters match a ground-truth mapping scan, and replica
  maintenance accounting matches the fault count.

Checks raise :class:`InvariantViolation` (an ``AssertionError`` subclass,
so existing tests that assert on the old inline checks keep passing) and
return the number of elementary checks performed, which the
:class:`InvariantAuditor` feeds into the ``audit_*`` metrics so an audited
sweep can prove the checks ran (``audit_checks > 0`` in
``sweep_metrics.json``).

Audits are *sampled*: the auditor counts buddy alloc/free events from the
listener hooks, but defers the actual audit to a safe checkpoint (fault
boundaries, daemon ticks, the runner's final audit) because listener
callbacks fire mid-update, when the free lists are legitimately
mid-transition.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from repro.mem.frames import FrameState

if TYPE_CHECKING:
    from repro.mem.buddy import BuddyAllocator
    from repro.mem.numa import NumaBuddyPools
    from repro.mem.regions import RegionTracker
    from repro.sim.system import System
    from repro.virt.hypervisor import Hypervisor
    from repro.vm.pagetable import PageTable


class InvariantViolation(AssertionError):
    """A machine-checked simulator invariant does not hold."""


def _fail(message: str) -> None:
    raise InvariantViolation(message)


def check_buddy(buddy: BuddyAllocator) -> int:
    """Audit the buddy allocator's free lists; O(total_frames).

    Returns the number of elementary checks performed; raises
    :class:`InvariantViolation` on the first violation.
    """
    checks = 0
    seen = np.zeros(buddy.total_frames, dtype=bool)
    state = buddy.frame_state
    free_total = 0
    for order in range(buddy.max_order + 1):
        n = 1 << order
        starts = set(buddy.free_block_starts(order))
        for start in sorted(starts):
            checks += 1
            end = start + n
            if start % n:
                _fail(f"free block {start} misaligned for order {order}")
            if end > buddy.total_frames:
                _fail(f"free block [{start}, {end}) out of bounds")
            if seen[start:end].any():
                _fail(f"free block [{start}, {end}) overlaps another chunk")
            seen[start:end] = True
            if (state[start:end] != FrameState.FREE).any():
                _fail(
                    f"free-list block [{start}, {end}) contains frames not "
                    "marked FREE"
                )
            free_total += n
            if order < buddy.max_order:
                checks += 1
                if (start ^ n) in starts:
                    _fail(
                        f"mergeable buddies {min(start, start ^ n)} and "
                        f"{max(start, start ^ n)} both free at order {order} "
                        "were not coalesced"
                    )
    for start, order, movable in buddy.iter_allocations():
        checks += 1
        n = 1 << order
        end = start + n
        if start % n:
            _fail(f"allocation {start} misaligned for order {order}")
        if seen[start:end].any():
            _fail(f"allocation [{start}, {end}) overlaps a free chunk")
        seen[start:end] = True
        want = FrameState.MOVABLE if movable else FrameState.UNMOVABLE
        if (state[start:end] != want).any():
            _fail(
                f"allocated block [{start}, {end}) has frame states "
                f"inconsistent with movable={movable}"
            )
    checks += 2
    if not seen.all():
        orphan = int(np.flatnonzero(~seen)[0])
        _fail(f"frame {orphan} is in neither a free list nor an allocation")
    if free_total != buddy.free_frames:
        _fail(
            f"free-frame gauge {buddy.free_frames} != sum of free lists "
            f"{free_total}"
        )
    return checks


def check_regions(regions: RegionTracker, frame_state: np.ndarray) -> int:
    """Audit the per-region counters against a ground-truth frame scan."""
    per_region = np.asarray(frame_state).reshape(
        regions.n_regions, regions.frames_per_region
    )
    truth_free = (per_region == FrameState.FREE).sum(axis=1)
    truth_unmovable = (per_region == FrameState.UNMOVABLE).sum(axis=1)
    for label, counter, truth in (
        ("free", regions.free_frames, truth_free),
        ("unmovable", regions.unmovable_frames, truth_unmovable),
    ):
        bad = np.flatnonzero(counter != truth)
        if bad.size:
            region = int(bad[0])
            _fail(
                f"region {region}: {label} counter {int(counter[region])} "
                f"!= ground truth {int(truth[region])}"
            )
    return 2 * regions.n_regions


def check_numa_pools(pools: NumaBuddyPools) -> int:
    """Audit the per-node pools behind a :class:`NumaBuddyPools` facade.

    Each node's allocator is checked in full (same invariant set as the
    flat machine, over its local pfn space and its slice of the shared
    frame-state array), then the cross-node accounting: node bounds
    partition physical memory exactly, and the facade's totals equal the
    sum over nodes — the drift the ``--audit`` layer must reject when a
    frame's bookkeeping migrates without its block.
    """
    checks = 0
    per = pools.frames_per_node
    free_total = 0
    frames_total = 0
    for node, pool in enumerate(pools.pools):
        lo, hi = pools.node_bounds(node)
        checks += 1
        if pool.pfn_base != lo or pool.total_frames != hi - lo:
            _fail(
                f"node {node} pool covers [{pool.pfn_base}, "
                f"{pool.pfn_base + pool.total_frames}), expected [{lo}, {hi})"
            )
        checks += 1
        if pool.total_frames != per:
            _fail(
                f"node {node} holds {pool.total_frames} frames, expected "
                f"{per} (capacity must split evenly)"
            )
        checks += check_buddy(pool)
        free_total += pool.free_frames
        frames_total += pool.total_frames
    checks += 2
    if frames_total != pools.total_frames:
        _fail(
            f"per-node capacities sum to {frames_total}, facade says "
            f"{pools.total_frames}"
        )
    if free_total != pools.free_frames:
        _fail(
            f"per-node free frames sum to {free_total}, facade says "
            f"{pools.free_frames}"
        )
    return checks


def check_node_residency(
    pagetable: PageTable, node_of, nodes: int
) -> int:
    """Audit a page table's incremental per-node residency counters.

    Recomputes the per-node resident-frame counts from the live mappings
    (ground truth) and compares them to the O(1)-maintained counters the
    NUMA data-access penalty is priced from.  Catches cross-node
    accounting drift — a migration or repoint that moved frames without
    moving their bookkeeping.
    """
    recorded = pagetable.node_resident_frames()
    if recorded is None:
        return 0
    truth = [0] * nodes
    total = 0
    for mapping in pagetable.iter_mappings():
        frames = pagetable.geometry.frames_for(mapping.page_size)
        truth[node_of(mapping.pfn)] += frames
        total += frames
    checks = nodes + 1
    for node in range(nodes):
        if truth[node] != recorded[node]:
            _fail(
                f"node {node} residency counter {recorded[node]} != ground "
                f"truth {truth[node]}: cross-node accounting drift"
            )
    if total != pagetable.resident_frames_total:
        _fail(
            f"total residency counter {pagetable.resident_frames_total} != "
            f"ground truth {total}"
        )
    return checks


def check_replica_accounting(system: System) -> int:
    """Audit page-table-replica maintenance accounting (Mitosis model).

    With replication on, every handled fault writes the new leaf entry
    into each of the ``nodes - 1`` remote replicas; with it off, no
    replica update may ever have been charged.
    """
    expected = (
        (system.numa.nodes - 1) * system.faults_handled
        if system.pt_replication
        else 0
    )
    if system.replica_updates != expected:
        _fail(
            f"replica update count {system.replica_updates} != expected "
            f"{expected} (pt_replication={system.pt_replication}, "
            f"faults={system.faults_handled})"
        )
    return 1


def check_pv_mappings(hypervisor: Hypervisor) -> int:
    """Audit gPA -> hPA bijectivity of the VM's EPT-equivalent mappings.

    Each guest-physical page must be backed by a distinct, allocated host
    frame range (injectivity — the exchange hypercall swaps pfns, it must
    never alias them), and the host-side rmap owner record for each frame
    must invert the mapping (so compaction can still re-point it).
    """
    geometry = hypervisor.host.geometry
    buddy = hypervisor.host.buddy
    owner = hypervisor.vm_process.frame_owner
    used = np.zeros(buddy.total_frames, dtype=bool)
    checks = 0
    for mapping in hypervisor.host_table.iter_mappings():
        checks += 1
        frames = geometry.frames_for(mapping.page_size)
        lo, hi = mapping.pfn, mapping.pfn + frames
        if lo % frames:
            _fail(
                f"EPT mapping at hVA {mapping.va:#x} has host pfn {lo} "
                "misaligned for its page size"
            )
        if hi > buddy.total_frames:
            _fail(f"EPT mapping at hVA {mapping.va:#x} points out of bounds")
        if used[lo:hi].any():
            _fail(
                f"gPA -> hPA map not injective: host frames [{lo}, {hi}) "
                f"back two guest ranges (second at hVA {mapping.va:#x})"
            )
        used[lo:hi] = True
        if (buddy.frame_state[lo:hi] == FrameState.FREE).any():
            _fail(
                f"EPT mapping at hVA {mapping.va:#x} points at free host "
                "frames"
            )
        record = owner.lookup(lo)
        if record != (mapping.va, mapping.page_size):
            _fail(
                f"host rmap owner record for pfn {lo} is {record}, expected "
                f"({mapping.va:#x}, {mapping.page_size}): exchange left the "
                "owner table inconsistent"
            )
    return checks


def audit_system(system: System, hypervisor: Hypervisor | None = None) -> int:
    """Run the full check suite over one system; returns checks performed."""
    checks = check_buddy(system.buddy)
    checks += check_regions(system.regions, system.buddy.frame_state)
    if getattr(system.buddy, "pools", None) is not None:
        # NUMA machine: per-node pools, residency accounting, replicas.
        checks += check_numa_pools(system.buddy)
        for process in system.processes:
            checks += check_node_residency(
                process.pagetable, system.buddy.node_of, system.buddy.nodes
            )
        checks += check_replica_accounting(system)
    if hypervisor is not None:
        checks += check_pv_mappings(hypervisor)
    return checks


class InvariantAuditor:
    """Samples full invariant audits as one simulated machine runs.

    Registers as a buddy :class:`~repro.mem.buddy.AllocationListener` to
    count mutation events; every ``every`` events the next safe checkpoint
    (``System.touch`` after a fault, ``System.run_daemons``) runs a full
    audit.  The runner triggers one final audit at the end of every run so
    even tiny runs get at least one.
    """

    def __init__(
        self,
        system: System,
        every: int = 4096,
        hypervisor: Hypervisor | None = None,
        obs=None,
    ) -> None:
        self.system = system
        self.every = max(1, int(every))
        self.hypervisor = hypervisor
        self.audits = 0
        self.checks = 0
        self.violations = 0
        self._events = 0
        self._due = False
        metrics = (obs or system.obs).metrics
        self._c_runs = metrics.counter("audit_runs_total")
        self._c_checks = metrics.counter("audit_checks_total")
        self._c_violations = metrics.counter("audit_violations_total")
        system.buddy.add_listener(self)

    # -- buddy listener: only count; never audit mid-update ----------------
    def on_alloc(self, pfn: int, order: int, movable: bool) -> None:
        self._tick()

    def on_free(self, pfn: int, order: int, movable: bool) -> None:
        self._tick()

    def _tick(self) -> None:
        self._events += 1
        if self._events % self.every == 0:
            self._due = True

    # -- checkpoints --------------------------------------------------------
    def maybe_audit(self) -> None:
        """Run a pending sampled audit (called from safe checkpoints)."""
        if self._due:
            self._due = False
            self.audit()

    def audit(self) -> int:
        """Run the full check suite now; raises on any violation."""
        self.audits += 1
        self._c_runs.inc()
        checks = 0
        try:
            if os.environ.get("REPRO_AUDIT_SELFTEST") == "1":
                _fail(
                    "audit self-test failure injected via "
                    "REPRO_AUDIT_SELFTEST"
                )
            checks = audit_system(self.system, self.hypervisor)
        except InvariantViolation:
            self.violations += 1
            self._c_violations.inc()
            raise
        finally:
            self.checks += checks
            self._c_checks.inc(checks)
        return checks

    def audit_exchange(self) -> None:
        """Post-hypercall bijectivity check (cheaper than a full audit).

        The exchange hypercall's precise postcondition: called by the
        hypervisor after every ``exchange_ranges`` when auditing is on.
        """
        if self.hypervisor is None:
            return
        self.audits += 1
        self._c_runs.inc()
        try:
            checks = check_pv_mappings(self.hypervisor)
        except InvariantViolation:
            self.violations += 1
            self._c_violations.inc()
            raise
        self.checks += checks
        self._c_checks.inc(checks)


def attach_auditor(
    system: System,
    every: int = 4096,
    hypervisor: Hypervisor | None = None,
    obs=None,
) -> InvariantAuditor:
    """Create an auditor for ``system`` and hook it into the checkpoints.

    ``obs`` routes the audit counters into a registry other than the
    system's own (the VirtRunner points the bare host system's auditor at
    the run's guest registry).
    """
    auditor = InvariantAuditor(
        system, every=every, hypervisor=hypervisor, obs=obs
    )
    system.auditor = auditor
    return auditor
