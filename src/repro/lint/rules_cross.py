"""Cross-module rules TRD006 — TRD008.

These rules sit on the project call graph (:mod:`repro.lint.callgraph`)
and the intraprocedural CFG/taint walkers (:mod:`repro.lint.dataflow`)
to check the three properties the repo otherwise only enforces
dynamically:

* **TRD006 clock-discipline** — simulated costs are charged to the
  SimClock exactly once: every computed ``*_ns``/``*_cycles`` value that
  is charged at all is charged on every path, never twice on one path,
  and never re-charged at an aggregation point when a callee already
  advanced for it (residual charges — expressions written against
  ``clock.now_ns`` — are the sanctioned aggregation idiom).
* **TRD007 determinism-hazard** — nothing nondeterministic flows into a
  deterministic output surface: wall-clock reads into exports/metrics,
  unordered ``set``/``os.listdir``/``glob`` iteration into
  order-sensitive sinks or float accumulation, ``hash()``/``id()`` as
  keys or sort keys.
* **TRD008 scalar-fallback** — the designated hot-path modules never
  silently degrade to per-element Python loops over numpy-derived data;
  deliberate fallbacks are declared with ``# trd: scalar-fallback[...]``
  on the enclosing function.

All three degrade conservatively: a call the graph cannot resolve, or a
value laundered through a container, simply produces no finding.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.callgraph import (
    CallGraph,
    FunctionInfo,
    FunctionKey,
    get_callgraph,
)
from repro.lint.dataflow import CFG, TaintState, taint_names
from repro.lint.engine import Finding, LintContext, Rule, SourceModule
from repro.lint.rules import _dotted, _identifiers

_COST_SUFFIXES = ("_ns", "_cycles")
_COST_BARE = frozenset({"ns", "cycles"})


def _is_cost_name(name: str) -> bool:
    return name.endswith(_COST_SUFFIXES) or name in _COST_BARE


def _never_seed(expr: ast.expr) -> bool:
    return False


def _is_clock_advance(call: ast.Call) -> bool:
    """``<something clock-ish>.advance(...)``."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "advance":
        return False
    return any("clock" in ident.lower() for ident in _identifiers(func.value))


def _advance_arg(call: ast.Call) -> ast.expr | None:
    if call.args:
        return call.args[0]
    if call.keywords and call.keywords[0].arg is not None:
        return call.keywords[0].value
    return None


def _own_statements(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.stmt]:
    """Statements of ``func`` at every depth, excluding nested def/class
    bodies (those are analyzed as their own functions)."""
    stack: list[ast.stmt] = list(func.body)
    while stack:
        stmt = stack.pop()
        yield stmt
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field in ("body", "orelse", "finalbody"):
            stack.extend(getattr(stmt, field, []))
        for handler in getattr(stmt, "handlers", []):
            stack.extend(handler.body)
        for case in getattr(stmt, "cases", []):
            stack.extend(case.body)


def _walk_own(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> Iterator[ast.AST]:
    """Every node of ``func``'s own body, stopping at nested defs."""
    for stmt in _own_statements(func):
        if isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        yield stmt
        for field_name, value in ast.iter_fields(stmt):
            if field_name in (
                "body",
                "orelse",
                "finalbody",
                "handlers",
                "cases",
            ):
                continue
            if isinstance(value, ast.AST):
                yield from ast.walk(value)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        yield from ast.walk(item)


def _stmt_parents(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> dict[ast.stmt, ast.stmt | None]:
    """Child statement -> enclosing compound statement (None at top)."""
    parents: dict[ast.stmt, ast.stmt | None] = {}
    for stmt in func.body:
        parents[stmt] = None
    for node in ast.walk(func):
        if not isinstance(node, ast.stmt):
            continue
        for field in ("body", "orelse", "finalbody"):
            for child in getattr(node, field, []):
                if isinstance(child, ast.stmt) and child not in parents:
                    parents[child] = node
        for handler in getattr(node, "handlers", []):
            for child in handler.body:
                if child not in parents:
                    parents[child] = node
        for case in getattr(node, "cases", []):
            for child in case.body:
                if child not in parents:
                    parents[child] = node
    return parents


class ClockDiscipline(Rule):
    """TRD006: every computed simulated cost is charged exactly once.

    The SimClock contract (``repro/obs/clock.py``) is leaf-charges plus
    residual charges at aggregation points.  Dynamically this is only
    checked when a test happens to cross the offending path; statically
    we can demand it of every function in the cost-bearing packages.
    """

    code = "TRD006"
    name = "clock-discipline"
    description = (
        "computed *_ns/*_cycles costs are clock.advance'd on every "
        "path exactly once; aggregation points charge residuals, "
        "not callee-charged totals; now_ns is written only by SimClock"
    )
    rationale = (
        "Latency attribution (PR 4) holds only if every cost-bearing "
        "operation advances the SimClock exactly once. A skipped charge "
        "under-reports latency on one branch; charging a value a callee "
        "already advanced for double-counts it. Aggregation points must "
        "charge the residual — `total - (clock.now_ns - start)` — and "
        "only SimClock itself may write now_ns."
    )
    example_bad = (
        "def access(self, clock, hit):\n"
        "    cost_ns = self.hit_ns if hit else self.miss_ns\n"
        "    if hit:\n"
        "        clock.advance(cost_ns)   # miss path never charged\n"
        "    return cost_ns * 2           # and cost re-derived\n"
    )
    example_good = (
        "def access(self, clock, hit):\n"
        "    cost_ns = self.hit_ns if hit else self.miss_ns\n"
        "    clock.advance(cost_ns)       # charged on every path\n"
        "    return cost_ns\n"
    )

    SCOPES = (
        "repro/sim/",
        "repro/mem/",
        "repro/tlb/",
        "repro/virt/",
        "repro/service/",
        "repro/core/",
    )
    #: the one module allowed to assign ``<x>.now_ns``
    CLOCK_MODULE = "repro/obs/clock.py"
    #: identifier fragments that mark a residual-shaped expression
    RESIDUAL_MARKERS = ("now_ns", "residual")

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        graph = get_callgraph(ctx)
        advancing = self._advancing_functions(graph)
        in_scope = {
            module.path
            for scope in self.SCOPES
            for module in ctx.under(scope)
        }
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if info.module.path not in in_scope:
                continue
            findings.extend(self._check_function(info, graph, advancing))
        findings.extend(self._check_now_ns_writes(ctx))
        return findings

    # -- (d) now_ns is SimClock-private -------------------------------------
    def _check_now_ns_writes(self, ctx: LintContext) -> Iterator[Finding]:
        for module in ctx.under("repro/"):
            if module.package_path == self.CLOCK_MODULE:
                continue
            for node in ast.walk(module.tree):
                targets: list[ast.expr] = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr == "now_ns"
                    ):
                        yield self.finding(
                            module,
                            node.lineno,
                            "direct write to <clock>.now_ns outside "
                            "repro/obs/clock.py; charge costs via "
                            "clock.advance so listeners and spans observe "
                            "them",
                        )

    # -- shared machinery ---------------------------------------------------
    @staticmethod
    def _advancing_functions(graph: CallGraph) -> set[FunctionKey]:
        """Functions that (transitively, via unique edges) advance a clock."""
        direct = {
            key
            for key, info in graph.functions.items()
            if any(
                isinstance(node, ast.Call) and _is_clock_advance(node)
                for node in _walk_own(info.node)
            )
        }
        return graph.transitive_closure(direct)

    def _charge_sites(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> list[tuple[ast.stmt, ast.Call]]:
        sites: list[tuple[ast.stmt, ast.Call]] = []
        for stmt in _own_statements(func):
            if isinstance(
                stmt,
                (
                    ast.If,
                    ast.For,
                    ast.AsyncFor,
                    ast.While,
                    ast.With,
                    ast.AsyncWith,
                    ast.Try,
                    ast.Match,
                    ast.FunctionDef,
                    ast.AsyncFunctionDef,
                    ast.ClassDef,
                ),
            ):
                continue
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call) and _is_clock_advance(node):
                    sites.append((stmt, node))
        return sites

    def _lift_through_guards(
        self,
        stmt: ast.stmt,
        var: str,
        parents: dict[ast.stmt, ast.stmt | None],
    ) -> ast.stmt:
        """A charge under ``if <var-or-clock-guard>:`` counts as charging
        at the guard itself — the untaken branch is "cost is zero" or
        "no clock attached", both sanctioned skips."""
        node: ast.stmt = stmt
        while True:
            parent = parents.get(node)
            if not isinstance(parent, ast.If):
                return node
            mentioned = set(_identifiers(parent.test))
            if var in mentioned or any(
                "clock" in ident.lower() for ident in mentioned
            ):
                node = parent
                continue
            return node

    @staticmethod
    def _assignments_of(
        func: ast.FunctionDef | ast.AsyncFunctionDef, var: str
    ) -> list[ast.stmt]:
        """Own statements that (re)bind ``var`` to a fresh value."""
        out: list[ast.stmt] = []
        for stmt in _own_statements(func):
            if isinstance(stmt, ast.Assign):
                names = {
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                }
                if var in names:
                    out.append(stmt)
            elif isinstance(stmt, ast.AnnAssign):
                if (
                    isinstance(stmt.target, ast.Name)
                    and stmt.target.id == var
                    and stmt.value is not None
                ):
                    out.append(stmt)
        return out

    @staticmethod
    def _escapes(
        func: ast.FunctionDef | ast.AsyncFunctionDef, var: str
    ) -> bool:
        """``var`` is returned, yielded, or stored on an object — its
        charging is someone else's contract."""
        for node in _walk_own(func):
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                value = node.value
                if value is not None and var in set(_identifiers(value)):
                    return True
        for stmt in _own_statements(func):
            if isinstance(stmt, ast.Assign) and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in stmt.targets
            ):
                if var in set(_identifiers(stmt.value)):
                    return True
        return False

    # -- per-function checks (a)-(c) ----------------------------------------
    def _check_function(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        advancing: set[FunctionKey],
    ) -> Iterator[Finding]:
        func = info.node
        sites = self._charge_sites(func)
        if not sites:
            return
        cfg = CFG(func)
        parents = _stmt_parents(func)

        charged_vars: dict[str, list[ast.stmt]] = {}
        for stmt, call in sites:
            arg = _advance_arg(call)
            if arg is None:
                continue
            for name in set(_identifiers(arg)):
                if _is_cost_name(name) and self._assignments_of(func, name):
                    charged_vars.setdefault(name, []).append(stmt)

        # (a) a charged cost must be charged on every path onward
        for var in sorted(charged_vars):
            if self._escapes(func, var):
                continue
            assigns = self._assignments_of(func, var)
            first = min(assigns, key=lambda s: (s.lineno, s.col_offset))
            lifted = {
                self._lift_through_guards(stmt, var, parents)
                for stmt in charged_vars[var]
            }
            if not cfg.every_path_hits(first, lifted):
                yield self.finding(
                    info.module,
                    first.lineno,
                    f"cost {var!r} is clock.advance'd on some paths but "
                    "not all: a return path skips the charge, "
                    "under-reporting simulated latency (guard with the "
                    "cost/clock test or charge unconditionally)",
                )

        # (b) no path charges the same cost twice without a re-bind
        for var in sorted(charged_vars):
            stmts = charged_vars[var]
            rebinds = set(self._assignments_of(func, var))
            for src in stmts:
                for dst in stmts:
                    if cfg.reaches(src, dst, forbid=rebinds):
                        yield self.finding(
                            info.module,
                            dst.lineno,
                            f"cost {var!r} can be clock.advance'd twice on "
                            "one path (charged at line "
                            f"{src.lineno} and again here) without being "
                            "recomputed; double-counts simulated latency",
                        )
                        break
                else:
                    continue
                break

        # (c) aggregation points re-charging a callee-charged total
        advancing_calls = {
            site.node
            for site in graph.calls_in(info.key)
            if site.unique and site.callees[0] in advancing
        }
        if not advancing_calls:
            return
        # "Already charged" taint flows through arithmetic on the callee's
        # return, but NOT through other calls: passing a charged value to
        # a function yields a fresh (unknown) value, not a charged one.
        state = taint_names(
            func,
            seed=lambda e: isinstance(e, ast.Call) and e in advancing_calls,
            sanitizer=lambda e: isinstance(e, ast.Call)
            and e not in advancing_calls,
        )
        for stmt, call in sites:
            arg = _advance_arg(call)
            if arg is None or not state.expr_tainted(arg):
                continue
            if self._residual_shaped(func, arg):
                continue
            yield self.finding(
                info.module,
                call.lineno,
                "re-charging a cost whose callee already advanced the "
                "clock; aggregation points must charge the residual "
                "(total - (clock.now_ns - start)), not the callee-"
                "charged total",
            )

    def _residual_shaped(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef, arg: ast.expr
    ) -> bool:
        idents = {ident.lower() for ident in _identifiers(arg)}
        if any(
            marker in ident
            for ident in idents
            for marker in self.RESIDUAL_MARKERS
        ):
            return True
        if isinstance(arg, ast.Name):
            for stmt in self._assignments_of(func, arg.id):
                value = (
                    stmt.value
                    if isinstance(stmt, (ast.Assign, ast.AnnAssign))
                    else None
                )
                if value is None:
                    continue
                mentioned = {ident.lower() for ident in _identifiers(value)}
                if any(
                    marker in ident
                    for ident in mentioned
                    for marker in self.RESIDUAL_MARKERS
                ):
                    return True
        return False


class DeterminismHazard(Rule):
    """TRD007: nondeterminism must not flow into deterministic outputs.

    Byte-identical sweeps at any ``--jobs`` (PRs 2/6/7) die from exactly
    four leaks: wall-clock values in exported artifacts, iteration over
    unordered collections feeding order-sensitive sinks, interpreter-
    dependent ``hash()``/``id()`` used as keys, and float accumulation
    in nondeterministic order.  Each is flagged where the tainted value
    meets the sink, so one reasoned suppression documents one leak.
    """

    code = "TRD007"
    name = "determinism-hazard"
    description = (
        "no wall-clock reads, unordered iteration, or hash()/id() keys "
        "flowing into exports, metrics, or merge/accumulation paths"
    )
    rationale = (
        "Sweep results must be byte-identical at any --jobs. Wall-clock "
        "reads differ per run; set/os.listdir/glob order differs per "
        "process; hash()/id() differ per interpreter (PYTHONHASHSEED); "
        "float addition is not associative, so accumulation order "
        "changes low bits. Any of these reaching an export, metric, or "
        "merge silently breaks reproducibility."
    )
    example_bad = (
        "started = time.time()\n"
        "for shard in shard_set:          # set order varies\n"
        "    total_ns += shard.cost_ns    # order-dependent float sum\n"
        'json.dump({"wall": time.time() - started, "ns": total_ns}, f)\n'
    )
    example_good = (
        "for shard in sorted(shard_set, key=lambda s: s.shard_id):\n"
        "    total_ns += shard.cost_ns    # canonical order\n"
        'json.dump({"ns": total_ns}, f)   # no wall-clock in artifact\n'
    )

    WALLCLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
        }
    )
    WALLCLOCK_METHODS = ("datetime.now", "datetime.utcnow", "date.today")
    UNORDERED_CALLS = frozenset(
        {"set", "frozenset", "os.listdir", "os.scandir", "glob.glob",
         "glob.iglob"}
    )
    #: calls that launder unordered-ness out of a value
    ORDER_SANITIZERS = frozenset(
        {"sorted", "len", "min", "max", "any", "all", "bool"}
    )
    SINK_DOTTED = frozenset({"json.dump", "json.dumps"})
    SINK_METHODS = frozenset(
        {"writerow", "writerows", "write", "observe", "inc", "emit"}
    )
    #: name suffixes marking an order-sensitive float accumulator
    ACCUM_SUFFIXES = (
        "_ns", "_s", "_ms", "_us", "_sum", "_total", "_cycles", "_seconds",
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        graph = get_callgraph(ctx)
        wall_returning = self._wall_returning(graph)
        sink_params = self._sink_params(graph)
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if not info.module.package_path.startswith("repro/"):
                continue
            findings.extend(
                self._check_wallclock(info, graph, wall_returning, sink_params)
            )
            findings.extend(self._check_unordered(info))
        for module in ctx.under("repro/"):
            findings.extend(self._check_hash_id(module))
        return findings

    # -- wall clock ---------------------------------------------------------
    def _is_wallclock_call(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = _dotted(expr.func)
        if dotted in self.WALLCLOCK:
            return True
        return any(
            dotted == method or dotted.endswith("." + method)
            for method in self.WALLCLOCK_METHODS
        )

    def _wall_returning(self, graph: CallGraph) -> set[FunctionKey]:
        """Functions whose return value carries wall-clock taint,
        propagated to fixpoint over uniquely-resolved call edges."""
        wall: set[FunctionKey] = set()
        changed = True
        while changed:
            changed = False
            for key, info in graph.functions.items():
                if key in wall:
                    continue
                tainted_calls = {
                    site.node
                    for site in graph.calls_in(key)
                    if site.unique and site.callees[0] in wall
                }
                if not tainted_calls and not any(
                    self._is_wallclock_call(node)
                    for node in _walk_own(info.node)
                    if isinstance(node, ast.Call)
                ):
                    continue
                state = taint_names(
                    info.node,
                    seed=lambda e: self._is_wallclock_call(e)
                    or e in tainted_calls,
                )
                for node in _walk_own(info.node):
                    if (
                        isinstance(node, ast.Return)
                        and node.value is not None
                        and state.expr_tainted(node.value)
                    ):
                        wall.add(key)
                        changed = True
                        break
        return wall

    @staticmethod
    def _param_names(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> list[str]:
        args = func.args
        return [a.arg for a in (*args.posonlyargs, *args.args)]

    def _tainted_args_into(
        self,
        site_call: ast.Call,
        callee: FunctionInfo,
        state: TaintState,
        sink_params: dict[FunctionKey, set[str]],
    ) -> bool:
        """Does this call pass a tainted value into a parameter the
        callee (transitively) forwards to a sink?"""
        hot = sink_params.get(callee.key)
        if not hot:
            return False
        params = self._param_names(callee.node)
        # method receivers consume the leading ``self``/``cls`` slot
        offset = (
            1
            if callee.class_name is not None
            and isinstance(site_call.func, ast.Attribute)
            else 0
        )
        for index, arg in enumerate(site_call.args):
            slot = index + offset
            if slot < len(params) and params[slot] in hot:
                if state.expr_tainted(arg):
                    return True
        for keyword in site_call.keywords:
            if keyword.arg in hot and state.expr_tainted(keyword.value):
                return True
        return False

    def _sink_params(
        self, graph: CallGraph
    ) -> dict[FunctionKey, set[str]]:
        """Parameters that flow into a sink inside their function —
        propagated to fixpoint, so a helper that hands its argument to
        ``write_manifest`` is itself sink-reaching."""
        result: dict[FunctionKey, set[str]] = {}
        changed = True
        while changed:
            changed = False
            for key, info in graph.functions.items():
                known = result.get(key, set())
                candidates = [
                    name
                    for name in self._param_names(info.node)
                    if name not in known and name not in ("self", "cls")
                ]
                if not candidates:
                    continue
                has_sink = any(
                    self._sink_kind(node) is not None
                    for node in _walk_own(info.node)
                    if isinstance(node, ast.Call)
                )
                forwards = has_sink or any(
                    site.unique and result.get(site.callees[0])
                    for site in graph.calls_in(key)
                )
                if not forwards:
                    continue
                for name in candidates:
                    state = taint_names(info.node, _never_seed, initial={name})
                    hit = False
                    for node in _walk_own(info.node):
                        if not isinstance(node, ast.Call):
                            continue
                        values = [
                            *node.args,
                            *(kw.value for kw in node.keywords),
                        ]
                        if self._sink_kind(node) is not None and any(
                            state.expr_tainted(v) for v in values
                        ):
                            hit = True
                            break
                    if not hit:
                        for site in graph.calls_in(key):
                            if not site.unique:
                                continue
                            callee = graph.functions.get(site.callees[0])
                            if callee is not None and self._tainted_args_into(
                                site.node, callee, state, result
                            ):
                                hit = True
                                break
                    if hit:
                        result.setdefault(key, set()).add(name)
                        changed = True
        return result

    def _check_wallclock(
        self,
        info: FunctionInfo,
        graph: CallGraph,
        wall_returning: set[FunctionKey],
        sink_params: dict[FunctionKey, set[str]],
    ) -> Iterator[Finding]:
        tainted_calls = {
            site.node
            for site in graph.calls_in(info.key)
            if site.unique and site.callees[0] in wall_returning
        }
        if not tainted_calls and not any(
            self._is_wallclock_call(node)
            for node in _walk_own(info.node)
            if isinstance(node, ast.Call)
        ):
            return
        state = taint_names(
            info.node,
            seed=lambda e: self._is_wallclock_call(e) or e in tainted_calls,
        )
        sites_by_node = {
            site.node: site
            for site in graph.calls_in(info.key)
            if site.unique
        }
        for node in _walk_own(info.node):
            if not isinstance(node, ast.Call):
                continue
            sink = self._sink_kind(node)
            if sink is not None:
                values = [*node.args, *(kw.value for kw in node.keywords)]
                if any(state.expr_tainted(value) for value in values):
                    yield self.finding(
                        info.module,
                        node.lineno,
                        f"wall-clock-derived value flows into {sink}; host "
                        "timing varies per run and breaks byte-identical "
                        "artifacts — use the SimClock, or keep host timing "
                        "out of deterministic outputs",
                    )
                continue
            site = sites_by_node.get(node)
            if site is None:
                continue
            callee = graph.functions.get(site.callees[0])
            if callee is not None and self._tainted_args_into(
                node, callee, state, sink_params
            ):
                yield self.finding(
                    info.module,
                    node.lineno,
                    "wall-clock-derived value flows into a deterministic "
                    f"export via {callee.name}(); host timing varies per "
                    "run and breaks byte-identical artifacts — keep it "
                    "out of exported payloads",
                )

    def _sink_kind(self, call: ast.Call) -> str | None:
        dotted = _dotted(call.func)
        if dotted in self.SINK_DOTTED or any(
            dotted.endswith("." + s) for s in self.SINK_DOTTED
        ):
            return f"{dotted} export"
        if isinstance(call.func, ast.Attribute):
            attr = call.func.attr
            if attr in ("writerow", "writerows"):
                return "a CSV export"
            if attr == "write":
                return "a file write"
            if attr in ("observe", "inc", "emit"):
                return "a metric emission"
        return None

    # -- unordered iteration ------------------------------------------------
    def _is_unordered_source(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Call):
            dotted = _dotted(expr.func)
            if dotted in self.UNORDERED_CALLS:
                return True
            return any(
                dotted.endswith("." + c)
                for c in ("listdir", "scandir", "iglob")
            ) or dotted.endswith(".glob")
        return False

    def _is_order_sanitizer(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and _dotted(expr.func) in self.ORDER_SANITIZERS
        )

    def _check_unordered(self, info: FunctionInfo) -> Iterator[Finding]:
        func = info.node
        if not any(
            self._is_unordered_source(node)
            for node in _walk_own(func)
            if isinstance(node, ast.expr)
        ):
            return
        state = taint_names(
            func,
            seed=self._is_unordered_source,
            sanitizer=self._is_order_sanitizer,
        )
        for node in _walk_own(func):
            if isinstance(node, ast.Call):
                dotted = _dotted(node.func)
                reducer = (
                    dotted == "sum"
                    or (
                        isinstance(node.func, ast.Attribute)
                        and node.func.attr == "join"
                    )
                )
                if reducer and node.args and state.expr_tainted(node.args[0]):
                    yield self.finding(
                        info.module,
                        node.lineno,
                        "order-sensitive reduction over an unordered "
                        "collection (set/listdir/glob); iterate "
                        "sorted(...) so results are byte-stable",
                    )
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if not state.expr_tainted(node.iter):
                    continue
                hazard = self._loop_hazard(node)
                if hazard is not None:
                    yield self.finding(
                        info.module,
                        node.lineno,
                        "iteration over an unordered collection "
                        f"(set/listdir/glob) feeds {hazard}; wrap the "
                        "iterable in sorted(...) to fix the order",
                    )

    def _loop_hazard(self, loop: ast.For | ast.AsyncFor) -> str | None:
        for stmt in loop.body:
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    sink = self._sink_kind(node)
                    if sink is not None:
                        return sink
                elif isinstance(node, ast.AugAssign) and isinstance(
                    node.op, ast.Add
                ):
                    target = node.target
                    name = ""
                    if isinstance(target, ast.Name):
                        name = target.id
                    elif isinstance(target, ast.Attribute):
                        name = target.attr
                    if name.endswith(self.ACCUM_SUFFIXES):
                        return (
                            f"float accumulation into {name!r} "
                            "(addition order changes low bits)"
                        )
        return None

    # -- hash()/id() keys ---------------------------------------------------
    def _check_hash_id(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Subscript):
                culprit = self._hash_id_in(node.slice)
                if culprit is not None:
                    yield self._hash_id_finding(module, culprit, "a key")
            elif isinstance(node, ast.Dict):
                for key in node.keys:
                    if key is None:
                        continue
                    culprit = self._hash_id_in(key)
                    if culprit is not None:
                        yield self._hash_id_finding(
                            module, culprit, "a dict key"
                        )
            elif isinstance(node, ast.Call):
                if (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("setdefault", "get")
                    and node.args
                ):
                    culprit = self._hash_id_in(node.args[0])
                    if culprit is not None:
                        yield self._hash_id_finding(
                            module, culprit, "a lookup key"
                        )
                for keyword in node.keywords:
                    if keyword.arg == "key":
                        culprit = self._hash_id_in(keyword.value)
                        if culprit is not None:
                            yield self._hash_id_finding(
                                module, culprit, "a sort key"
                            )

    @staticmethod
    def _hash_id_in(expr: ast.expr) -> ast.Call | None:
        for node in ast.walk(expr):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in ("hash", "id")
            ):
                return node
        return None

    def _hash_id_finding(
        self, module: SourceModule, call: ast.Call, where: str
    ) -> Finding:
        func_name = call.func.id if isinstance(call.func, ast.Name) else "?"
        return self.finding(
            module,
            call.lineno,
            f"{func_name}() used as {where}: values differ per "
            "interpreter run (PYTHONHASHSEED/allocation), so any "
            "ordering or export derived from them is nondeterministic; "
            "key on a stable field instead",
        )


class ScalarFallback(Rule):
    """TRD008: hot-path modules stay vectorized.

    PR 5's 6.8-8.4x came from keeping ``touch_batch`` and the TLB replay
    kernel in numpy; a per-element Python loop over array data anywhere
    in the designated hot modules silently gives that back.  Deliberate,
    budget-gated fallbacks declare themselves with
    ``# trd: scalar-fallback[reason]`` on (or directly above) the
    ``def`` line.
    """

    code = "TRD008"
    name = "scalar-fallback"
    description = (
        "no per-element Python loops over numpy-derived data in "
        "sim/batch.py, tlb/batch.py, service/fleet.py outside marked "
        "scalar-fallback functions"
    )
    rationale = (
        "The batch engine's speedup (BENCH_hotpath.json: 6.8-8.4x) "
        "exists because the hot path never iterates array elements in "
        "Python. A stray `for x in arr.tolist()` reintroduces "
        "interpreter cost per element and erodes the speedup without "
        "failing any correctness test. Fallbacks that must exist "
        "(bounded tails, trace-mode replay) are declared with "
        "`# trd: scalar-fallback[reason]` and covered by the bench "
        "budget gates."
    )
    example_bad = (
        "def charge(self, costs):           # in a hot-path module\n"
        "    for c in costs.tolist():       # per-element Python loop\n"
        "        self.total += c\n"
    )
    example_good = (
        "def charge(self, costs):\n"
        "    self.total += float(costs.sum())   # stays vectorized\n"
        "\n"
        "# trd: scalar-fallback[trace mode replays per-event, budget-gated]\n"
        "def charge_traced(self, costs): ...\n"
    )

    HOT_MODULES = (
        "repro/sim/batch.py",
        "repro/tlb/batch.py",
        "repro/service/fleet.py",
    )
    _MARKER_RE = re.compile(r"#\s*trd:\s*scalar-fallback\[(?P<reason>[^\]]+)\]")
    _NUMPY_ROOTS = frozenset({"np", "numpy"})
    #: calls that pass array-ness through to their result; every other
    #: call is a taint barrier — ``wl.iter_batches(api, ...)`` yields
    #: batches (the hot path's unit of work), not per-element data
    _TRANSPARENT = frozenset(
        {"enumerate", "zip", "reversed", "sorted", "list", "tuple", "iter"}
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        graph = get_callgraph(ctx)
        hot = {
            module.path
            for module in ctx.modules
            if module.package_path in self.HOT_MODULES
        }
        if not hot:
            return findings
        for key in sorted(graph.functions):
            info = graph.functions[key]
            if info.module.path not in hot:
                continue
            if self._marked_fallback(info):
                continue
            findings.extend(self._check_function(info))
        return findings

    def _marked_fallback(self, info: FunctionInfo) -> bool:
        lines = info.module.source.splitlines()
        candidates = range(
            max(0, info.node.lineno - 2), min(len(lines), info.node.lineno)
        )
        return any(
            self._MARKER_RE.search(lines[i]) for i in candidates
        )

    def _is_numpy_source(self, expr: ast.expr) -> bool:
        if not isinstance(expr, ast.Call):
            return False
        dotted = _dotted(expr.func)
        if dotted.split(".")[0] in self._NUMPY_ROOTS:
            return True
        return (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "tolist"
        )

    @staticmethod
    def _array_params(
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> set[str]:
        names: set[str] = set()
        args = func.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            annotation = arg.annotation
            if annotation is None:
                continue
            idents = set(_identifiers(annotation))
            if isinstance(annotation, ast.Constant) and isinstance(
                annotation.value, str
            ):
                idents.update(annotation.value.replace(".", " ").split())
            if idents & {"ndarray", "NDArray"} or idents & {"np", "numpy"}:
                names.add(arg.arg)
        return names

    def _is_barrier(self, expr: ast.expr) -> bool:
        return (
            isinstance(expr, ast.Call)
            and not self._is_numpy_source(expr)
            and _dotted(expr.func) not in self._TRANSPARENT
        )

    def _check_function(self, info: FunctionInfo) -> Iterator[Finding]:
        func = info.node
        state = taint_names(
            func,
            seed=self._is_numpy_source,
            sanitizer=self._is_barrier,
            initial=self._array_params(func),
        )
        if not state.names and not any(
            self._is_numpy_source(node)
            for node in _walk_own(func)
            if isinstance(node, ast.expr)
        ):
            return
        for node in _walk_own(func):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            if state.expr_tainted(node.iter):
                yield self.finding(
                    info.module,
                    node.lineno,
                    "per-element Python loop over numpy-derived data in a "
                    "hot-path module; vectorize it, or mark the enclosing "
                    "function with `# trd: scalar-fallback[reason]` if "
                    "this is a deliberate budget-gated fallback",
                )


CROSS_RULES: tuple[Rule, ...] = (
    ClockDiscipline(),
    DeterminismHazard(),
    ScalarFallback(),
)
