"""Project symbol table + call graph over the parsed module batch.

This is the cross-module half of the analysis layer behind TRD006–TRD008
(see ``docs/linting.md``): a :class:`CallGraph` resolves every call site
in the batch to the project function(s) it can name statically, so rules
can ask graph questions — "does anything this function (transitively)
calls advance the clock?" — instead of reasoning one file at a time.

Resolution is deliberately conservative.  Python calls are dynamic; the
graph only records edges it can justify from imports, module-level
definitions, class bodies and base classes, and it distinguishes
*unique* resolutions (exactly one candidate — safe to reason about) from
*ambiguous* ones (several classes define a method of that name).  A call
it cannot resolve at all — ``getattr(obj, name)()``, calls through
containers, lambdas — simply contributes no edge, which makes every
downstream rule degrade to "no finding" rather than guess.

The graph is built once per lint run and cached on the
:class:`~repro.lint.engine.LintContext` (see :func:`get_callgraph`), so
TRD006 and TRD007 share one symbol table.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.lint.engine import LintContext, SourceModule

#: (dotted module name, function qualname) — the identity of one project
#: function; methods use ``Class.method`` qualnames, nested functions
#: ``outer.inner``
FunctionKey = tuple[str, str]


def module_dotted_name(module: SourceModule) -> str:
    """``repro/mem/buddy.py`` → ``repro.mem.buddy`` (packages drop __init__)."""
    path = module.package_path
    if path.endswith(".py"):
        path = path[: -len(".py")]
    parts = [p for p in path.split("/") if p]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


@dataclass
class FunctionInfo:
    """One function or method definition in the batch."""

    key: FunctionKey
    module: SourceModule
    node: ast.FunctionDef | ast.AsyncFunctionDef
    #: enclosing class name for methods, None for module-level functions
    class_name: str | None = None

    @property
    def name(self) -> str:
        return self.node.name

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class CallSite:
    """One call expression inside a function, with its resolutions."""

    node: ast.Call
    #: project functions this call may target (empty = unresolvable)
    callees: tuple[FunctionKey, ...]

    @property
    def unique(self) -> bool:
        """True when the call resolves to exactly one project function."""
        return len(self.callees) == 1


@dataclass
class _ClassInfo:
    """A class definition: its methods and syntactic base-class names."""

    module: SourceModule
    name: str
    methods: dict[str, FunctionKey] = field(default_factory=dict)
    #: base expressions as written (resolved lazily through imports)
    bases: list[ast.expr] = field(default_factory=list)


def _dotted(node: ast.AST) -> str:
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


class _DefCollector(ast.NodeVisitor):
    """Collects function/class definitions with qualified names."""

    def __init__(self, graph: CallGraph, module: SourceModule) -> None:
        self.graph = graph
        self.module = module
        self.mod_name = module_dotted_name(module)
        self.stack: list[str] = []
        self.class_stack: list[_ClassInfo] = []

    def _qualname(self, name: str) -> str:
        return ".".join((*self.stack, name))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        info = _ClassInfo(module=self.module, name=node.name)
        info.bases = list(node.bases)
        self.graph._classes.setdefault(
            (self.mod_name, node.name), info
        )
        self.stack.append(node.name)
        self.class_stack.append(info)
        self.generic_visit(node)
        self.class_stack.pop()
        self.stack.pop()

    def _visit_function(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        key: FunctionKey = (self.mod_name, self._qualname(node.name))
        info = FunctionInfo(
            key=key,
            module=self.module,
            node=node,
            class_name=(
                self.class_stack[-1].name if self.class_stack else None
            ),
        )
        self.graph.functions[key] = info
        if self.class_stack:
            self.class_stack[-1].methods[node.name] = key
            self.graph._methods.setdefault(node.name, []).append(key)
        elif not self.stack:
            # module-level function: addressable as <module>.<name>
            self.graph._symbols[f"{self.mod_name}.{node.name}"] = key
        self.stack.append(node.name)
        self.generic_visit(node)
        self.stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


class CallGraph:
    """Symbol table + resolved call edges over one module batch."""

    def __init__(self) -> None:
        #: every function definition in the batch
        self.functions: dict[FunctionKey, FunctionInfo] = {}
        #: full dotted path of module-level functions -> key
        self._symbols: dict[str, FunctionKey] = {}
        #: method name -> every class method of that name (for attribute
        #: calls that cannot be typed statically)
        self._methods: dict[str, list[FunctionKey]] = {}
        self._classes: dict[tuple[str, str], _ClassInfo] = {}
        #: per-module import alias tables: alias -> full dotted target
        self._imports: dict[str, dict[str, str]] = {}
        #: re-exports: importable dotted name -> canonical dotted name
        self._aliases: dict[str, str] = {}
        #: call sites per function, resolved
        self._calls: dict[FunctionKey, list[CallSite]] = {}
        self._enclosing: dict[ast.AST, FunctionKey] = {}

    # -- construction -------------------------------------------------------
    @classmethod
    def build(cls, ctx: LintContext) -> "CallGraph":
        graph = cls()
        for module in ctx.modules:
            graph._collect_imports(module)
            _DefCollector(graph, module).visit(module.tree)
        for module in ctx.modules:
            graph._collect_reexports(module)
        for key, info in graph.functions.items():
            graph._calls[key] = list(graph._resolve_calls(info))
        return graph

    def _collect_imports(self, module: SourceModule) -> None:
        table: dict[str, str] = {}
        mod_name = module_dotted_name(module)
        package = mod_name.rsplit(".", 1)[0] if "." in mod_name else mod_name
        if module.package_path.endswith("__init__.py"):
            package = mod_name
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    table[alias.asname or alias.name.split(".")[0]] = (
                        alias.name
                        if alias.asname
                        else alias.name.split(".")[0]
                    )
                    if alias.asname:
                        table[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    parts = mod_name.split(".")
                    # level 1 = current package, each extra level pops one
                    drop = node.level
                    if not module.package_path.endswith("__init__.py"):
                        parts = parts[:-1]
                        drop -= 1
                    if drop:
                        parts = parts[: -drop if drop else None]
                    base = ".".join((*parts, base)) if base else ".".join(parts)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    table[alias.asname or alias.name] = f"{base}.{alias.name}"
        self._imports[mod_name] = table

    def _collect_reexports(self, module: SourceModule) -> None:
        """``from repro.x.y import f`` in a package ``__init__`` makes
        ``repro.x.f`` an alias of ``repro.x.y.f``."""
        mod_name = module_dotted_name(module)
        for alias, target in self._imports.get(mod_name, {}).items():
            exported = f"{mod_name}.{alias}"
            if exported not in self._symbols and target in self._symbols:
                self._aliases[exported] = target

    # -- name resolution ----------------------------------------------------
    def _resolve_symbol(self, dotted: str) -> FunctionKey | None:
        seen: set[str] = set()
        while dotted in self._aliases and dotted not in seen:
            seen.add(dotted)
            dotted = self._aliases[dotted]
        return self._symbols.get(dotted)

    def _class_of(self, mod_name: str, name: str) -> _ClassInfo | None:
        info = self._classes.get((mod_name, name))
        if info is not None:
            return info
        # imported class: follow the module's import table
        target = self._imports.get(mod_name, {}).get(name)
        if target and "." in target:
            owner, cls_name = target.rsplit(".", 1)
            return self._classes.get((owner, cls_name))
        return None

    def _method_in_hierarchy(
        self, cls: _ClassInfo, method: str, seen: set[tuple[str, str]] | None = None
    ) -> FunctionKey | None:
        """First definition of ``method`` in ``cls`` or its bases (DFS)."""
        if seen is None:
            seen = set()
        mod_name = module_dotted_name(cls.module)
        if (mod_name, cls.name) in seen:
            return None
        seen.add((mod_name, cls.name))
        if method in cls.methods:
            return cls.methods[method]
        for base in cls.bases:
            base_name = _dotted(base)
            if not base_name:
                continue
            base_cls = self._class_of(mod_name, base_name.split(".")[-1])
            if base_cls is None:
                continue
            found = self._method_in_hierarchy(base_cls, method, seen)
            if found is not None:
                return found
        return None

    def _resolve_calls(self, info: FunctionInfo) -> Iterator[CallSite]:
        mod_name = info.key[0]
        imports = self._imports.get(mod_name, {})
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            yield CallSite(
                node=node,
                callees=tuple(
                    self._resolve_target(node.func, info, mod_name, imports)
                ),
            )

    def _resolve_target(
        self,
        func: ast.expr,
        info: FunctionInfo,
        mod_name: str,
        imports: dict[str, str],
    ) -> list[FunctionKey]:
        if isinstance(func, ast.Name):
            # same-module function (module level), or imported symbol
            key = self._symbols.get(f"{mod_name}.{func.id}")
            if key is not None:
                return [key]
            target = imports.get(func.id)
            if target is not None:
                key = self._resolve_symbol(target)
                if key is not None:
                    return [key]
            return []
        if isinstance(func, ast.Attribute):
            dotted = _dotted(func)
            if not dotted:
                return []  # call on a call/subscript: unresolvable
            root, *rest = dotted.split(".")
            # self.method() / cls.method(): resolve through the class
            if root in ("self", "cls") and len(rest) == 1 and info.class_name:
                cls = self._classes.get((mod_name, info.class_name))
                if cls is not None:
                    found = self._method_in_hierarchy(cls, rest[0])
                    if found is not None:
                        return [found]
                return sorted(set(self._methods.get(rest[0], [])))
            # module attribute through an import alias: mod.func(...)
            target = imports.get(root)
            if target is not None:
                key = self._resolve_symbol(".".join((target, *rest)))
                if key is not None:
                    return [key]
                # Class.method through an imported class
                if len(rest) == 2:
                    cls = self._class_of(mod_name, rest[0])
                    if cls is not None:
                        found = self._method_in_hierarchy(cls, rest[1])
                        if found is not None:
                            return [found]
            # ClassName.method(...) in the same module
            if len(rest) == 1:
                cls = self._classes.get((mod_name, root))
                if cls is not None:
                    found = self._method_in_hierarchy(cls, rest[0])
                    if found is not None:
                        return [found]
            # untyped attribute call: every class method of that name
            return sorted(set(self._methods.get(func.attr, [])))
        return []

    # -- queries ------------------------------------------------------------
    def calls_in(self, key: FunctionKey) -> list[CallSite]:
        return self._calls.get(key, [])

    def function_at(
        self, module: SourceModule, node: ast.AST
    ) -> FunctionInfo | None:
        """The FunctionInfo whose body contains ``node`` (innermost)."""
        if not self._enclosing:
            for info in self.functions.values():
                for child in ast.walk(info.node):
                    self._enclosing.setdefault(child, info.key)
        found = self._enclosing.get(node)
        return self.functions.get(found) if found is not None else None

    def transitive_closure(
        self,
        seeds: set[FunctionKey],
        unique_only: bool = True,
    ) -> set[FunctionKey]:
        """Every function that (transitively) calls into ``seeds``.

        Cycle-safe reverse reachability over the resolved edges; with
        ``unique_only`` (the default for rules that must not guess) only
        uniquely-resolved call sites contribute edges.
        """
        callers: dict[FunctionKey, set[FunctionKey]] = {}
        for key in self.functions:
            for site in self.calls_in(key):
                if unique_only and not site.unique:
                    continue
                for callee in site.callees:
                    callers.setdefault(callee, set()).add(key)
        closed = set(seeds)
        frontier = list(seeds)
        while frontier:
            target = frontier.pop()
            for caller in callers.get(target, ()):
                if caller not in closed:
                    closed.add(caller)
                    frontier.append(caller)
        return closed

    def propagate_property(
        self,
        has_property: Callable[[FunctionInfo], bool],
        via_call: Callable[[FunctionInfo, CallSite], bool],
    ) -> set[FunctionKey]:
        """Fixpoint of a function property flowing up the call graph.

        A function is in the result if ``has_property`` holds directly,
        or if ``via_call`` says one of its call sites into a
        property-holding callee transmits it (e.g. "the tainted callee's
        return value is itself returned").  Cycles converge because the
        set only grows.
        """
        result = {
            key for key, info in self.functions.items() if has_property(info)
        }
        changed = True
        while changed:
            changed = False
            for key, info in self.functions.items():
                if key in result:
                    continue
                for site in self.calls_in(key):
                    if not site.unique or site.callees[0] not in result:
                        continue
                    if via_call(info, site):
                        result.add(key)
                        changed = True
                        break
        return result


def get_callgraph(ctx: LintContext) -> CallGraph:
    """The batch's call graph, built once and cached on the context."""
    cached = getattr(ctx, "_callgraph", None)
    if cached is None:
        cached = CallGraph.build(ctx)
        ctx._callgraph = cached  # type: ignore[attr-defined]
    return cached
