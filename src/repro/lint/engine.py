"""AST-based rule engine for the project linter (``repro lint``).

The engine is deliberately small: it loads every Python file under the
given paths, parses each into an :mod:`ast` tree plus a per-line
suppression table, and hands the whole batch to each registered
:class:`Rule`.  Rules are cross-file by design — TRD004, for example,
compares every emitted metric name against the catalog module — which is
why rules receive a :class:`LintContext` over all modules rather than one
file at a time.

Suppressions are line-scoped, ``noqa``-style::

    pfn = frames / 2  # trd: ignore[TRD003]
    anything_goes()   # trd: ignore

A finding is suppressed when a matching comment sits on the finding's
reported line.  Module-level findings (a missing protocol constant, say)
report at line 1, so a file-wide waiver is a line-1 comment.

See ``docs/linting.md`` for the rule catalogue and how to add a rule.
"""

from __future__ import annotations

import ast
import os
import re
import time
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

#: rule code reported for files the engine cannot parse at all
SYNTAX_RULE = "TRD000"

_SUPPRESS_RE = re.compile(r"#\s*trd:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]*)\])?")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }


@dataclass
class SourceModule:
    """One parsed Python file plus its suppression table."""

    path: str
    #: path from the last ``repro`` package component on, ``/``-separated
    #: (``repro/mem/buddy.py``); rules scope themselves by this prefix so
    #: linting works identically from any working directory
    package_path: str
    source: str
    tree: ast.Module
    #: line -> suppressed codes, or None for a bare (suppress-all) ignore
    suppressions: dict[int, frozenset[str] | None]

    @property
    def name(self) -> str:
        return os.path.basename(self.path)


class LintContext:
    """Everything a rule gets to look at: the full batch of modules."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)

    def under(self, prefix: str) -> Iterator[SourceModule]:
        """Modules whose package path starts with e.g. ``repro/mem/``."""
        for module in self.modules:
            if module.package_path.startswith(prefix):
                yield module


class Rule:
    """Base class for one lint rule; subclasses implement :meth:`check`."""

    code: str = ""
    name: str = ""
    description: str = ""
    #: prose for ``repro lint --explain CODE``: why the rule exists …
    rationale: str = ""
    #: … and a minimal pair showing the convention kept and broken
    example_good: str = ""
    example_bad: str = ""

    def check(self, ctx: LintContext) -> list[Finding]:
        raise NotImplementedError

    def finding(self, module: SourceModule, line: int, message: str) -> Finding:
        return Finding(rule=self.code, path=module.path, line=line, message=message)


def _parse_suppressions(source: str) -> dict[int, frozenset[str] | None]:
    table: dict[int, frozenset[str] | None] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if not match:
            continue
        codes = match.group("codes")
        if codes is None or not codes.strip():
            table[lineno] = None
        else:
            table[lineno] = frozenset(
                code.strip() for code in codes.split(",") if code.strip()
            )
    return table


def _package_path(path: str) -> str:
    parts = os.path.normpath(os.path.abspath(path)).split(os.sep)
    if "repro" in parts:
        index = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[index:])
    return parts[-1]


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    files: list[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d
                    for d in dirnames
                    if not d.startswith(".") and d != "__pycache__"
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(dirpath, filename))
        elif os.path.isfile(path):
            files.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen: set[str] = set()
    unique: list[str] = []
    for path in files:
        key = os.path.abspath(path)
        if key not in seen:
            seen.add(key)
            unique.append(path)
    return unique


def load_modules(
    files: Iterable[str],
) -> tuple[list[SourceModule], list[Finding]]:
    """Parse every file; unparsable files become TRD000 findings."""
    modules: list[SourceModule] = []
    errors: list[Finding] = []
    for path in files:
        with open(path, encoding="utf-8") as f:
            source = f.read()
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            errors.append(
                Finding(
                    rule=SYNTAX_RULE,
                    path=path,
                    line=exc.lineno or 1,
                    message=f"syntax error: {exc.msg}",
                )
            )
            continue
        modules.append(
            SourceModule(
                path=path,
                package_path=_package_path(path),
                source=source,
                tree=tree,
                suppressions=_parse_suppressions(source),
            )
        )
    return modules, errors


def _suppressed(module: SourceModule, finding: Finding) -> bool:
    codes = module.suppressions.get(finding.line, frozenset())
    if codes is None:  # bare "# trd: ignore"
        return True
    return finding.rule in codes


@dataclass
class LintReport:
    """A full lint run: surviving findings plus per-rule wall timings."""

    findings: list[Finding]
    #: rule code -> milliseconds spent in that rule's check()
    rule_timings_ms: dict[str, float] = field(default_factory=dict)
    #: number of files loaded (parsed or TRD000-failed)
    files: int = 0


def run_lint_detailed(
    paths: Iterable[str], rules: Sequence[Rule]
) -> LintReport:
    """Lint ``paths`` with ``rules``, timing each rule as it runs."""
    files = iter_python_files(paths)
    modules, findings = load_modules(files)
    ctx = LintContext(modules)
    by_path = {module.path: module for module in modules}
    timings: dict[str, float] = {}
    for rule in rules:
        started = time.perf_counter()
        for finding in rule.check(ctx):
            module = by_path.get(finding.path)
            if module is not None and _suppressed(module, finding):
                continue
            findings.append(finding)
        timings[rule.code] = (time.perf_counter() - started) * 1e3
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return LintReport(
        findings=findings, rule_timings_ms=timings, files=len(files)
    )


def run_lint(paths: Iterable[str], rules: Sequence[Rule]) -> list[Finding]:
    """Lint ``paths`` with ``rules``; returns surviving findings, sorted."""
    return run_lint_detailed(paths, rules).findings
