"""Project-specific static analysis + runtime invariant auditing.

Two halves, one subsystem (see ``docs/linting.md``):

* ``repro lint`` — an AST rule engine (:mod:`repro.lint.engine`) running
  the TRD rule catalogue (:mod:`repro.lint.rules`) over the source tree.
* ``--audit`` — sampled runtime invariant checks
  (:mod:`repro.lint.invariants`) over the live simulator: buddy free
  lists, region counters, and Trident-pv mapping bijectivity.
"""

from __future__ import annotations

from repro.lint.engine import (
    SYNTAX_RULE,
    Finding,
    LintContext,
    Rule,
    SourceModule,
    iter_python_files,
    load_modules,
    run_lint,
)
from repro.lint.rules import (
    ALL_RULES,
    ExperimentProtocol,
    FrameArithmetic,
    MetricRegistryHygiene,
    NoGlobalRng,
)

__all__ = [
    "ALL_RULES",
    "SYNTAX_RULE",
    "Finding",
    "LintContext",
    "Rule",
    "SourceModule",
    "ExperimentProtocol",
    "FrameArithmetic",
    "MetricRegistryHygiene",
    "NoGlobalRng",
    "iter_python_files",
    "load_modules",
    "run_lint",
]
