"""Project-specific static analysis + runtime invariant auditing.

Two halves, one subsystem (see ``docs/linting.md``):

* ``repro lint`` — an AST rule engine (:mod:`repro.lint.engine`) running
  the TRD rule catalogue (:mod:`repro.lint.rules`) over the source tree.
* ``--audit`` — sampled runtime invariant checks
  (:mod:`repro.lint.invariants`) over the live simulator: buddy free
  lists, region counters, and Trident-pv mapping bijectivity.
"""

from __future__ import annotations

from repro.lint.baseline import (
    BaselineResult,
    apply_baseline,
    load_baseline,
    render_baseline,
    write_baseline,
)
from repro.lint.callgraph import CallGraph, get_callgraph
from repro.lint.dataflow import CFG, taint_names
from repro.lint.engine import (
    SYNTAX_RULE,
    Finding,
    LintContext,
    LintReport,
    Rule,
    SourceModule,
    iter_python_files,
    load_modules,
    run_lint,
    run_lint_detailed,
)
from repro.lint.rules import (
    ALL_RULES,
    ExperimentProtocol,
    FrameArithmetic,
    MetricRegistryHygiene,
    NoGlobalRng,
)
from repro.lint.rules_cross import (
    CROSS_RULES,
    ClockDiscipline,
    DeterminismHazard,
    ScalarFallback,
)
from repro.lint.sarif import to_sarif

__all__ = [
    "ALL_RULES",
    "CROSS_RULES",
    "SYNTAX_RULE",
    "BaselineResult",
    "CFG",
    "CallGraph",
    "ClockDiscipline",
    "DeterminismHazard",
    "Finding",
    "LintContext",
    "LintReport",
    "Rule",
    "ScalarFallback",
    "SourceModule",
    "ExperimentProtocol",
    "FrameArithmetic",
    "MetricRegistryHygiene",
    "NoGlobalRng",
    "apply_baseline",
    "get_callgraph",
    "iter_python_files",
    "load_baseline",
    "load_modules",
    "render_baseline",
    "run_lint",
    "run_lint_detailed",
    "taint_names",
    "to_sarif",
    "write_baseline",
]
