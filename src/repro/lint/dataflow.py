"""Intraprocedural CFG + dataflow queries for cross-module rules.

Two small analyses back TRD006–TRD008 (see ``docs/linting.md``):

* a statement-granularity control-flow graph (:class:`CFG`) answering
  path questions — "does every path from this cost computation to the
  function exit pass a ``clock.advance``?", "can control reach a second
  charge of the same value?";
* a flow-insensitive name-taint fixpoint (:func:`taint_names`) answering
  value questions — "does anything derived from ``time.time()`` flow
  into this JSON export?".

Both are approximations chosen to fail safe: the CFG over-approximates
reachability (``try`` bodies may jump to any handler, loop bodies may be
skipped), and taint only propagates through assignments it can see, so a
value laundered through a container index or dynamic attribute silently
drops out — a missed finding, never a false one.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, Union

Stmt = ast.stmt


class _Exit:
    """Unique sentinel: the single synthetic exit node of a CFG."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<EXIT>"


Node = Union[Stmt, _Exit]


class CFG:
    """Forward control-flow graph over one function body.

    Nodes are the function's statements (at every nesting depth) plus a
    synthetic :attr:`exit` node.  Edges over-approximate control flow:
    conditionals branch both ways, loop bodies may run zero times,
    ``try`` statements may transfer to any handler.  ``raise``
    statements edge to exit but are remembered in :attr:`raising`, so
    path queries can ignore error exits — a function that aborts without
    charging the clock is not a discipline violation.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.exit: _Exit = _Exit()
        self.succ: dict[Node, list[Node]] = {self.exit: []}
        self.raising: set[Stmt] = set()
        self._loops: list[tuple[Node, Node]] = []  # (head, after) stack
        entry = self._build_block(func.body, self.exit)
        self.entry: Node = entry

    # -- construction -------------------------------------------------------
    def _edge(self, src: Node, dst: Node) -> None:
        self.succ.setdefault(src, [])
        if dst not in self.succ[src]:
            self.succ[src].append(dst)
        self.succ.setdefault(dst, [])

    def _build_block(self, body: list[Stmt], follow: Node) -> Node:
        """Wire ``body`` so its last statement falls through to ``follow``;
        returns the block's entry node (``follow`` for an empty block)."""
        entry: Node = follow
        for stmt in reversed(body):
            entry = self._build_stmt(stmt, entry)
        return entry

    def _build_stmt(self, stmt: Stmt, follow: Node) -> Node:
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self._edge(stmt, self.exit)
            if isinstance(stmt, ast.Raise):
                self.raising.add(stmt)
            return stmt
        if isinstance(stmt, ast.Break):
            target = self._loops[-1][1] if self._loops else self.exit
            self._edge(stmt, target)
            return stmt
        if isinstance(stmt, ast.Continue):
            target = self._loops[-1][0] if self._loops else self.exit
            self._edge(stmt, target)
            return stmt
        if isinstance(stmt, ast.If):
            body_entry = self._build_block(stmt.body, follow)
            self._edge(stmt, body_entry)
            if stmt.orelse:
                self._edge(stmt, self._build_block(stmt.orelse, follow))
            else:
                self._edge(stmt, follow)
            return stmt
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            after: Node = follow
            if stmt.orelse:
                after = self._build_block(stmt.orelse, follow)
            self._loops.append((stmt, follow))
            body_entry = self._build_block(stmt.body, stmt)
            self._loops.pop()
            self._edge(stmt, body_entry)  # loop taken
            self._edge(stmt, after)  # zero iterations / loop done
            return stmt
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._edge(stmt, self._build_block(stmt.body, follow))
            return stmt
        if isinstance(stmt, ast.Try):
            final_entry: Node = follow
            if stmt.finalbody:
                final_entry = self._build_block(stmt.finalbody, follow)
            handler_entries = [
                self._build_block(handler.body, final_entry)
                for handler in stmt.handlers
            ]
            else_entry: Node = final_entry
            if stmt.orelse:
                else_entry = self._build_block(stmt.orelse, final_entry)
            body_entry = self._build_block(stmt.body, else_entry)
            self._edge(stmt, body_entry)
            # any statement in the body may raise into any handler
            for handler_entry in handler_entries:
                self._edge(stmt, handler_entry)
                for inner in stmt.body:
                    self._edge(inner, handler_entry)
            return stmt
        if isinstance(stmt, ast.Match):
            matched = False
            for case in stmt.cases:
                self._edge(stmt, self._build_block(case.body, follow))
                matched = True
            if not matched:
                self._edge(stmt, follow)
            self._edge(stmt, follow)  # no case may match
            return stmt
        # simple statement (expr, assign, assert, nested def, ...)
        self._edge(stmt, follow)
        return stmt

    # -- queries ------------------------------------------------------------
    def statements(self) -> Iterator[Stmt]:
        for node in self.succ:
            if not isinstance(node, _Exit):
                yield node

    def every_path_hits(
        self,
        start: Node,
        targets: set[Stmt],
        ignore_raises: bool = True,
    ) -> bool:
        """True iff every path from ``start`` to exit passes a target.

        DFS that refuses to step *through* a target; if the exit is still
        reachable, some path escapes uncharged.  With ``ignore_raises``
        (the default) paths that leave via ``raise`` don't count as
        escapes.
        """
        if start in targets:
            return True
        seen: set[Node] = set()
        stack: list[Node] = [start]
        while stack:
            node = stack.pop()
            if node in seen:
                continue
            seen.add(node)
            for nxt in self.succ.get(node, []):
                if isinstance(nxt, _Exit):
                    if (
                        ignore_raises
                        and isinstance(node, ast.Raise)
                        and node in self.raising
                    ):
                        continue
                    return False
                if nxt in targets:
                    continue
                stack.append(nxt)
        return True

    def reaches(
        self,
        start: Node,
        goal: Stmt,
        forbid: set[Stmt] | None = None,
    ) -> bool:
        """True iff some path leads from ``start`` to ``goal`` without
        passing through a ``forbid`` node (``start`` itself excluded)."""
        forbid = forbid or set()
        seen: set[Node] = set()
        stack: list[Node] = list(self.succ.get(start, []))
        while stack:
            node = stack.pop()
            if node is goal:
                return True
            if node in seen or isinstance(node, _Exit) or node in forbid:
                continue
            seen.add(node)
            stack.extend(self.succ.get(node, []))
        return False


# ---------------------------------------------------------------------------
# name taint


SeedPredicate = Callable[[ast.expr], bool]
SanitizerPredicate = Callable[[ast.expr], bool]


def _never(expr: ast.expr) -> bool:
    return False


class TaintState:
    """Result of a taint fixpoint: the set of tainted local names, plus
    an expression oracle that honors the same seeds/sanitizers."""

    def __init__(
        self,
        names: set[str],
        seed: SeedPredicate,
        sanitizer: SanitizerPredicate,
    ) -> None:
        self.names = names
        self._seed = seed
        self._sanitizer = sanitizer

    def expr_tainted(self, expr: ast.expr) -> bool:
        """Does ``expr`` carry taint (seeded directly or via a name)?"""
        if self._sanitizer(expr):
            return False
        if self._seed(expr):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in self.names
        if isinstance(expr, (ast.Lambda, ast.GeneratorExp)):
            return False  # deferred evaluation: out of scope
        return any(
            self.expr_tainted(child)
            for child in ast.iter_child_nodes(expr)
            if isinstance(child, ast.expr)
        )


def _target_names(target: ast.expr) -> Iterator[str]:
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)
    elif isinstance(target, ast.Subscript):
        # ``d[k] = tainted`` taints the container (but ``obj.attr = x``
        # does not taint ``obj`` — that would drown ``self``)
        if isinstance(target.value, ast.Name):
            yield target.value.id


#: mutating container methods through which taint enters the receiver
_CONTAINER_MUTATORS = frozenset(
    {"append", "extend", "add", "insert", "update", "setdefault"}
)


def taint_names(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    seed: SeedPredicate,
    sanitizer: SanitizerPredicate = _never,
    initial: set[str] | None = None,
) -> TaintState:
    """Flow-insensitive taint over the function's local names.

    A name becomes tainted when it is assigned an expression that is
    seeded (per ``seed``), mentions an already-tainted name, or is the
    loop variable of a ``for`` over a tainted iterable.  ``sanitizer``
    stops descent: ``sorted(tainted_set)`` is clean when ``sorted`` is
    the sanitizer.  Iterates to fixpoint, so chains and loops converge.
    """
    state = TaintState(set(initial or ()), seed, sanitizer)
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AugAssign):
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                targets, value = [node.target], node.iter
            elif isinstance(node, ast.NamedExpr):
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if item.optional_vars is not None and state.expr_tainted(
                        item.context_expr
                    ):
                        for name in _target_names(item.optional_vars):
                            if name not in state.names:
                                state.names.add(name)
                                changed = True
                continue
            elif isinstance(node, ast.Call):
                # ``results.append(tainted)`` taints ``results``
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and func_expr.attr in _CONTAINER_MUTATORS
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id not in state.names
                    and any(
                        state.expr_tainted(arg)
                        for arg in (
                            *node.args,
                            *(kw.value for kw in node.keywords),
                        )
                    )
                ):
                    state.names.add(func_expr.value.id)
                    changed = True
                continue
            if value is None or not state.expr_tainted(value):
                continue
            for target in targets:
                for name in _target_names(target):
                    if name not in state.names:
                        state.names.add(name)
                        changed = True
    return state
