"""Baseline workflow for ``repro lint``.

A baseline is a committed JSON snapshot of accepted findings
(``lint-baseline.json``).  CI gates on *new* findings only: anything
matching a baseline entry is filtered out, anything else fails the run.
This lets a new rule land with its pre-existing debt recorded instead of
blocking, while ratcheting — fixing a baselined finding and refreshing
the file shrinks the debt monotonically.

Entries are matched as a multiset on ``(rule, package_path, message)``,
deliberately ignoring line numbers so unrelated edits to a file don't
invalidate the baseline; two identical findings in one file need two
entries.  ``package_path`` (``repro/mem/buddy.py``-style) rather than
the filesystem path keeps the file stable across checkouts.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass

from repro.lint.engine import Finding, _package_path

#: schema marker so future shape changes can migrate old files
BASELINE_VERSION = 1

_Key = tuple[str, str, str]


def _key(finding: Finding) -> _Key:
    return (finding.rule, _package_path(finding.path), finding.message)


@dataclass
class BaselineResult:
    """Outcome of filtering a run against a baseline."""

    #: findings not covered by the baseline — these fail the run
    new: list[Finding]
    #: baselined findings that matched (suppressed from output)
    matched: list[Finding]
    #: baseline entries no finding matched — stale, the debt was paid
    stale: list[_Key]


def load_baseline(path: str) -> list[_Key]:
    """Read a baseline file into match keys; raises ValueError on shape
    problems so the CLI can exit 2 with a real message."""
    with open(path, encoding="utf-8") as f:
        payload = json.load(f)
    if not isinstance(payload, dict) or "entries" not in payload:
        raise ValueError(
            f"{path}: not a lint baseline (expected an object with "
            "'entries')"
        )
    keys: list[_Key] = []
    for entry in payload["entries"]:
        try:
            keys.append(
                (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry["message"]),
                )
            )
        except (TypeError, KeyError) as exc:
            raise ValueError(
                f"{path}: malformed baseline entry {entry!r}"
            ) from exc
    return keys


def apply_baseline(
    findings: list[Finding], baseline: list[_Key]
) -> BaselineResult:
    """Split findings into new-vs-baselined, multiset semantics."""
    budget = Counter(baseline)
    new: list[Finding] = []
    matched: list[Finding] = []
    for finding in findings:
        key = _key(finding)
        if budget[key] > 0:
            budget[key] -= 1
            matched.append(finding)
        else:
            new.append(finding)
    stale = sorted(budget.elements())
    return BaselineResult(new=new, matched=matched, stale=stale)


def render_baseline(findings: list[Finding]) -> str:
    """The canonical baseline file contents for a set of findings."""
    entries = sorted(_key(finding) for finding in findings)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {"rule": rule, "path": path, "message": message}
            for rule, path, message in entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def write_baseline(findings: list[Finding], path: str) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(render_baseline(findings))
