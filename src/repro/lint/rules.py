"""The project rule catalogue: TRD001 — TRD005.

Each rule encodes one load-bearing convention of this reproduction (see
``docs/linting.md`` for the rationale and examples):

* **TRD001** — no global/nondeterministic RNG anywhere in ``src``.
* **TRD002** — experiment modules conform to the ``run_all`` protocol.
* **TRD003** — frame/order arithmetic in ``mem/`` + ``experiments/`` stays
  integral and uses the named geometry constants from ``config.py``.
* **TRD004** — every emitted metric name is declared in the obs catalog,
  and the catalog stays free of near-duplicate names.
* **TRD005** — ``touch()`` results are consumed through the typed
  ``TouchResult`` fields, not as bare floats via the deprecation shim.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import Finding, LintContext, Rule, SourceModule


def _dotted(node: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name, else ''."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _identifiers(node: ast.AST) -> Iterator[str]:
    """Every Name id and Attribute attr in a subtree."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            yield child.id
        elif isinstance(child, ast.Attribute):
            yield child.attr


class NoGlobalRng(Rule):
    """TRD001: all randomness flows through seeded generators.

    Byte-determinism of sweeps rests on every RNG being a
    ``np.random.Generator`` seeded from the run config (or a literal).  The
    stdlib ``random`` module is process-global state; ``np.random.seed``
    mutates the legacy global generator; ``default_rng()`` without a seed
    pulls OS entropy.  All three break replay.
    """

    code = "TRD001"
    name = "no-global-rng"
    description = (
        "no stdlib random module, np.random.seed, or unseeded default_rng()"
    )
    rationale = (
        "Sweeps replay byte-identically only if every random draw comes "
        "from a generator seeded from the run config. The stdlib random "
        "module and numpy's legacy global generator are process-global "
        "state shared across units; an unseeded default_rng() pulls OS "
        "entropy. All three make reruns diverge."
    )
    example_bad = (
        "import random\n"
        "jitter = random.random()        # process-global, unseeded\n"
    )
    example_good = (
        "rng = np.random.default_rng(derive_seed(seed, 'jitter'))\n"
        "jitter = rng.random()           # replayable per unit\n"
    )

    #: package paths allowed to construct global RNGs (none today)
    ALLOWLIST: frozenset[str] = frozenset()

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for module in ctx.modules:
            if module.package_path in self.ALLOWLIST:
                continue
            for node in ast.walk(module.tree):
                findings.extend(self._check_node(module, node))
        return findings

    def _check_node(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root == "random":
                    yield self.finding(
                        module,
                        node.lineno,
                        "import of the global stdlib `random` module; use a "
                        "seeded np.random.Generator threaded from the run "
                        "config",
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0 and (node.module or "").split(".")[0] == "random":
                yield self.finding(
                    module,
                    node.lineno,
                    "import from the global stdlib `random` module; use a "
                    "seeded np.random.Generator threaded from the run config",
                )
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted == "np.random.seed" or dotted.endswith("numpy.random.seed"):
                yield self.finding(
                    module,
                    node.lineno,
                    "np.random.seed mutates numpy's process-global generator; "
                    "construct a local np.random.default_rng(seed) instead",
                )
            elif (
                dotted == "default_rng" or dotted.endswith(".default_rng")
            ) and not node.args and not node.keywords:
                yield self.finding(
                    module,
                    node.lineno,
                    "default_rng() without a seed draws OS entropy and breaks "
                    "replay; pass a seed threaded from the run config",
                )


#: experiments-package files that are sweep infrastructure, not experiment
#: modules, and therefore exempt from the module protocol
EXPERIMENT_INFRA = frozenset(
    {
        "__init__.py",
        "faults.py",
        "run_all.py",
        "runner.py",
        "orchestrator.py",
        "report.py",
        "configs.py",
    }
)


class ExperimentProtocol(Rule):
    """TRD002: the uniform experiment-module protocol, checked statically.

    ``run_all`` and the sweep orchestrator assume every experiment module
    exposes ``CSV_NAME``, ``TITLE``, ``QUICK_KWARGS`` and a
    ``main(quick=..., seed=...)`` entry point, and that ``QUICK_KWARGS``
    only names parameters ``run()`` actually accepts.  The runtime check
    (``validate_quick_support``) fires only when a sweep reaches the
    module; this rule fires on every lint run, from the AST alone.
    """

    code = "TRD002"
    name = "experiment-protocol"
    description = (
        "experiment modules define CSV_NAME/TITLE/QUICK_KWARGS, "
        "main(quick, seed), and QUICK_KWARGS keys subset of run() params"
    )
    rationale = (
        "run_all and the sweep orchestrator discover experiment modules "
        "by protocol, not registration: each must expose CSV_NAME, "
        "TITLE, QUICK_KWARGS and main(quick=..., seed=...). A module "
        "that drifts from the protocol only fails when a sweep reaches "
        "it at runtime; this rule fails it at lint time."
    )
    example_bad = (
        "TITLE = 'fig 7'\n"
        "def main():                     # missing quick/seed kwargs,\n"
        "    ...                         # missing CSV_NAME/QUICK_KWARGS\n"
    )
    example_good = (
        "CSV_NAME = 'fig7.csv'\n"
        "TITLE = 'fig 7'\n"
        "QUICK_KWARGS = {'accesses': 10_000}\n"
        "def main(quick=False, seed=0): ...\n"
    )

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for module in ctx.under("repro/experiments/"):
            if module.name in EXPERIMENT_INFRA:
                continue
            findings.extend(self._check_module(module))
        return findings

    def _check_module(self, module: SourceModule) -> list[Finding]:
        out: list[Finding] = []
        assigns: dict[str, ast.expr] = {}
        functions: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        for node in module.tree.body:
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        assigns[target.id] = node.value
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name) and node.value is not None:
                    assigns[node.target.id] = node.value
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                functions[node.name] = node

        for name, expectation in (
            ("CSV_NAME", "a str or tuple of str"),
            ("TITLE", "a str"),
            ("QUICK_KWARGS", "a dict"),
        ):
            if name not in assigns:
                out.append(
                    self.finding(
                        module,
                        1,
                        f"experiment module is missing module-level {name} "
                        f"({expectation})",
                    )
                )
        csv_name = assigns.get("CSV_NAME")
        if csv_name is not None and not self._is_str_or_str_tuple(csv_name):
            out.append(
                self.finding(
                    module,
                    csv_name.lineno,
                    "CSV_NAME must be a string literal or a tuple of string "
                    "literals (the orchestrator resolves output CSVs from it "
                    "without importing the module's dependencies)",
                )
            )
        quick_kwargs = assigns.get("QUICK_KWARGS")
        if quick_kwargs is not None and not self._is_dict_literal(quick_kwargs):
            out.append(
                self.finding(
                    module,
                    quick_kwargs.lineno,
                    "QUICK_KWARGS must be a dict literal of run() keyword "
                    "overrides",
                )
            )

        main = functions.get("main")
        if main is None:
            out.append(
                self.finding(
                    module,
                    1,
                    "experiment module is missing the main(quick=..., "
                    "seed=...) entry point",
                )
            )
        else:
            params = self._param_names(main)
            for required in ("quick", "seed"):
                if required not in params:
                    out.append(
                        self.finding(
                            module,
                            main.lineno,
                            f"main() must accept a `{required}` keyword (the "
                            "orchestrator calls main(quick=..., seed=...))",
                        )
                    )

        run = functions.get("run")
        if (
            run is not None
            and isinstance(quick_kwargs, ast.Dict)
            and run.args.kwarg is None
        ):
            params = self._param_names(run)
            for key in quick_kwargs.keys:
                if (
                    isinstance(key, ast.Constant)
                    and isinstance(key.value, str)
                    and key.value not in params
                ):
                    out.append(
                        self.finding(
                            module,
                            key.lineno,
                            f"QUICK_KWARGS key {key.value!r} is not a "
                            "parameter of run()",
                        )
                    )
        return out

    @staticmethod
    def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        args = func.args
        return {
            a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        }

    @staticmethod
    def _is_str_or_str_tuple(node: ast.expr) -> bool:
        if isinstance(node, ast.Constant):
            return isinstance(node.value, str)
        if isinstance(node, (ast.Tuple, ast.List)):
            return all(
                isinstance(e, ast.Constant) and isinstance(e.value, str)
                for e in node.elts
            )
        return False

    @staticmethod
    def _is_dict_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.Dict):
            return True
        return isinstance(node, ast.Call) and _dotted(node.func) == "dict"


class FrameArithmetic(Rule):
    """TRD003: frame/order arithmetic hygiene and three-tier hygiene.

    Frame counts, PFNs and orders are exact integers; a single true
    division silently floats an entire downstream computation (the zero-fill
    accounting bug fixed in PR 1 started exactly this way).  Geometry
    numbers (order 9/18, 512 frames per 2MB, 262144 per 1GB, the 256x paper
    scale) must come from ``config.py`` so scaled and full geometries stay
    interchangeable.

    Since the N-level :class:`~repro.config.PageGeometry` redesign, the
    rule additionally polices the three-tier assumption itself, across the
    whole ``repro`` package (``config.py`` excepted, where the shim lives):
    reads of the deprecated ``PageSize.BASE/MID/LARGE`` aliases, and magic
    x86 order literals (``1 << 9``-style shifts), both of which silently
    pin code to a geometry shape that SVNAPOT and ARM granule configs do
    not have.  Pre-existing findings ratchet via ``lint-baseline.json``.
    """

    code = "TRD003"
    name = "frame-arithmetic"
    description = (
        "no float creep into frame/order arithmetic; no magic geometry "
        "numbers or deprecated three-tier PageSize aliases"
    )
    rationale = (
        "Frame counts, PFNs and orders are exact integers; one true "
        "division floats everything downstream (the PR 1 zero-fill "
        "accounting bug started exactly this way). Geometry numbers "
        "(512 frames per 2MB, order 9/18, the 256x scale) must come "
        "from the active geometry so scaled, full, and N-level "
        "geometries interchange. PageSize.BASE/MID/LARGE reads go "
        "through a deprecation shim that hardcodes the three-tier "
        "shape; 4-level SVNAPOT configs break such call sites."
    )
    example_bad = (
        "mid_frames = frames / 512        # float, magic number\n"
        "mapped = by_size[PageSize.MID]   # deprecated three-tier alias\n"
    )
    example_good = (
        "mid_frames = frames // geometry.frames_for(geometry.thp_level)\n"
        "mapped = by_size[geometry.thp_level]\n"
    )

    SCOPES = ("repro/mem/", "repro/experiments/")
    #: identifier fragments that mark a value as frame/order-typed
    FRAMEISH = frozenset({"frame", "frames", "pfn", "pfns", "order", "orders"})
    #: geometry literals that must be spelled via the active PageGeometry
    MAGIC_GEOMETRY = {
        9: "geometry.order_for(geometry.thp_level)",
        18: "geometry.order_for(geometry.top_level)",
        512: "geometry.frames_per_mid",
        262144: "geometry.frames_per_large",
    }
    SCALE = 256  # config.SCALE_FACTOR
    #: deprecated three-tier aliases served by the config.PageSize shim;
    #: each read warns at runtime — lint catches them statically
    DEPRECATED_PAGESIZE = frozenset(
        {"BASE", "MID", "LARGE", "ALL", "NAMES", "X86_NAMES"}
    )
    #: the shim's home (and the only place allowed to spell it)
    SHIM_HOME = "repro/config.py"

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for scope in self.SCOPES:
            for module in ctx.under(scope):
                findings.extend(self._check_module(module))
        for module in ctx.under("repro/"):
            if module.package_path == self.SHIM_HOME:
                continue
            findings.extend(self._check_three_tier(module))
        return findings

    def _check_three_tier(self, module: SourceModule) -> Iterator[Finding]:
        """Package-wide three-tier hygiene (outside mem/ + experiments/).

        PageSize alias reads are flagged everywhere; magic order shifts
        are flagged here only for modules the frame-arithmetic scope does
        not already cover, so each site reports once.
        """
        in_scope = any(module.package_path.startswith(s) for s in self.SCOPES)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                yield from self._check_pagesize_alias(module, node)
            elif (
                not in_scope
                and isinstance(node, ast.BinOp)
                and isinstance(node.op, (ast.LShift, ast.RShift))
            ):
                yield from self._check_shift(module, node)

    def _check_pagesize_alias(
        self, module: SourceModule, node: ast.Attribute
    ) -> Iterator[Finding]:
        if node.attr not in self.DEPRECATED_PAGESIZE:
            return
        parts = _dotted(node).split(".")
        if len(parts) >= 2 and parts[-2] == "PageSize":
            yield self.finding(
                module,
                node.lineno,
                f"deprecated PageSize.{node.attr} resolves through the "
                "three-tier runtime shim; use the active geometry's level "
                "indices instead (0, geometry.thp_level, "
                "geometry.top_level, geometry.all_levels)",
            )

    def _check_module(self, module: SourceModule) -> Iterator[Finding]:
        container_lines = self._container_literal_ids(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                yield from self._check_division(module, node)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.LShift, ast.RShift)
            ):
                yield from self._check_shift(module, node)
            elif isinstance(node, ast.Subscript):
                yield from self._check_subscript(module, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(module, node)
            elif isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
                yield from self._check_mult(module, node, container_lines)

    @staticmethod
    def _container_literal_ids(tree: ast.Module) -> set[int]:
        """ids of Constant nodes that sit inside display literals.

        Tuples/lists/sets/dicts of numbers are sweep axes and lookup
        tables, not inline arithmetic; their elements are exempt.
        """
        exempt: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
                for element in node.elts:
                    if isinstance(element, ast.Constant):
                        exempt.add(id(element))
            elif isinstance(node, ast.Dict):
                for element in (*node.keys, *node.values):
                    if isinstance(element, ast.Constant):
                        exempt.add(id(element))
        return exempt

    def _frameish(self, node: ast.AST) -> bool:
        for ident in _identifiers(node):
            if self.FRAMEISH & set(ident.lower().split("_")):
                return True
        return False

    def _check_division(
        self, module: SourceModule, node: ast.BinOp
    ) -> Iterator[Finding]:
        if self._frameish(node.left) or self._frameish(node.right):
            yield self.finding(
                module,
                node.lineno,
                "true division on frame/order-typed values produces floats; "
                "use // (or convert to bytes first) to keep frame arithmetic "
                "exact",
            )

    def _check_call(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Finding]:
        dotted = _dotted(node.func)
        if dotted == "float" and node.args and self._frameish(node.args[0]):
            yield self.finding(
                module,
                node.lineno,
                "float() over a frame/order-typed value; frame counts must "
                "stay integral",
            )
        for keyword in node.keywords:
            if (
                keyword.arg in ("order", "max_order")
                and isinstance(keyword.value, ast.Constant)
                and keyword.value.value in self.MAGIC_GEOMETRY
            ):
                hint = self.MAGIC_GEOMETRY[keyword.value.value]
                yield self.finding(
                    module,
                    keyword.value.lineno,
                    f"magic geometry number {keyword.value.value} as an "
                    f"order; use {hint}",
                )
        # page-size table lookups: `...by_size[2]` / `...by_size.get(2)`
        # hard-code the PageSize encoding
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and node.args
        ):
            first = node.args[0]
            receiver = node.func.value
            if (
                isinstance(first, ast.Constant)
                and isinstance(first.value, int)
                and self._by_size(receiver)
            ):
                yield self.finding(
                    module,
                    first.lineno,
                    f"magic page-size index {first.value}; use geometry "
                    "level indices (0, geometry.thp_level, "
                    "geometry.top_level)",
                )

    def _check_subscript(
        self, module: SourceModule, node: ast.Subscript
    ) -> Iterator[Finding]:
        index = node.slice
        if (
            isinstance(index, ast.Constant)
            and isinstance(index.value, int)
            and not isinstance(index.value, bool)
            and self._by_size(node.value)
        ):
            yield self.finding(
                module,
                node.lineno,
                f"magic page-size index {index.value}; use geometry "
                "level indices (0, geometry.thp_level, "
                "geometry.top_level)",
            )

    def _check_shift(
        self, module: SourceModule, node: ast.BinOp
    ) -> Iterator[Finding]:
        right = node.right
        if isinstance(right, ast.Constant) and right.value in self.MAGIC_GEOMETRY:
            hint = self.MAGIC_GEOMETRY[right.value]
            yield self.finding(
                module,
                node.lineno,
                f"magic geometry number {right.value} as a shift amount; "
                f"use {hint}",
            )

    def _check_compare(
        self, module: SourceModule, node: ast.Compare
    ) -> Iterator[Finding]:
        operands = (node.left, *node.comparators)
        if not any(self._frameish(op) for op in operands):
            return
        for operand in operands:
            if (
                isinstance(operand, ast.Constant)
                and operand.value in self.MAGIC_GEOMETRY
            ):
                hint = self.MAGIC_GEOMETRY[operand.value]
                yield self.finding(
                    module,
                    operand.lineno,
                    f"magic geometry number {operand.value} compared against "
                    f"a frame/order value; use {hint}",
                )

    def _check_mult(
        self,
        module: SourceModule,
        node: ast.BinOp,
        container_lines: set[int],
    ) -> Iterator[Finding]:
        for constant, other in (
            (node.left, node.right),
            (node.right, node.left),
        ):
            if not isinstance(constant, ast.Constant):
                continue
            if id(constant) in container_lines:
                continue
            if constant.value in self.MAGIC_GEOMETRY and self._frameish(other):
                hint = self.MAGIC_GEOMETRY[constant.value]
                yield self.finding(
                    module,
                    node.lineno,
                    f"magic geometry number {constant.value} multiplied into "
                    f"frame arithmetic; use {hint}",
                )
            elif constant.value == self.SCALE and self._bytesish(other):
                yield self.finding(
                    module,
                    node.lineno,
                    "magic 256 scaling a byte quantity to paper scale; use "
                    "config.SCALE_FACTOR",
                )

    @staticmethod
    def _by_size(node: ast.AST) -> bool:
        return any("by_size" in ident for ident in _identifiers(node))

    @staticmethod
    def _bytesish(node: ast.AST) -> bool:
        for ident in _identifiers(node):
            parts = set(ident.lower().split("_"))
            if parts & {"bytes", "gb", "footprint"}:
                return True
        return False


class MetricRegistryHygiene(Rule):
    """TRD004: emitted metric names match the obs catalog.

    ``docs/observability.md`` promises the catalog (``repro metrics``) is
    exhaustive: every ``metrics.counter/gauge/histogram("name", ...)`` call
    site must name a cataloged metric, and the catalog itself must not
    accumulate near-duplicates (``foo_total`` next to ``foo``, or
    singular/plural pairs) that would split one statistic across two keys.
    """

    code = "TRD004"
    name = "metric-registry"
    description = (
        "every emitted metrics.* name is declared in METRIC_CATALOG; "
        "no near-duplicate metric names"
    )
    rationale = (
        "docs/observability.md promises the catalog (repro metrics) is "
        "exhaustive. An undeclared emission is invisible to dashboards "
        "and docs; near-duplicate names (foo next to foo_total) split "
        "one statistic across two keys."
    )
    example_bad = "metrics.counter('tlb_miss')      # not in METRIC_CATALOG\n"
    example_good = (
        "# obs/catalog: ('tlb_misses_total', 'counter', ...)\n"
        "metrics.counter('tlb_misses_total')\n"
    )

    EMIT_METHODS = frozenset({"counter", "gauge", "histogram"})
    #: modules whose counter/gauge/histogram calls are registry internals
    #: or generic re-exports, not emissions of concrete metric names
    EXEMPT = frozenset({"repro/obs/metrics.py"})

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        catalog, catalog_module = self._find_catalog(ctx)
        emitted: dict[str, tuple[str, int]] = {}
        for module in ctx.under("repro/"):
            if module.package_path in self.EXEMPT:
                continue
            for node in ast.walk(module.tree):
                name_node = self._emitted_name(node)
                if name_node is None:
                    continue
                name = name_node.value
                emitted.setdefault(name, (module.path, name_node.lineno))
                if catalog is not None and name not in catalog:
                    findings.append(
                        self.finding(
                            module,
                            name_node.lineno,
                            f"metric {name!r} is not declared in the obs "
                            "METRIC_CATALOG; add it (with kind, labels and "
                            "description) or fix the name",
                        )
                    )
        findings.extend(
            self._near_duplicates(catalog or {}, emitted, catalog_module)
        )
        return findings

    def _emitted_name(self, node: ast.AST) -> ast.Constant | None:
        if not isinstance(node, ast.Call):
            return None
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr not in self.EMIT_METHODS:
            return None
        if not node.args:
            return None
        first = node.args[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first
        return None

    @staticmethod
    def _find_catalog(
        ctx: LintContext,
    ) -> tuple[dict[str, int] | None, SourceModule | None]:
        """name -> catalog line, from the module defining METRIC_CATALOG.

        Falls back to importing ``repro.obs`` when the catalog module is
        outside the linted path set (e.g. linting a single file), so the
        membership check still runs.
        """
        for module in ctx.modules:
            for node in module.tree.body:
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AnnAssign)
                    else []
                )
                if not any(
                    isinstance(t, ast.Name) and t.id == "METRIC_CATALOG"
                    for t in targets
                ):
                    continue
                value = node.value
                names: dict[str, int] = {}
                if isinstance(value, (ast.Tuple, ast.List)):
                    for entry in value.elts:
                        if (
                            isinstance(entry, (ast.Tuple, ast.List))
                            and entry.elts
                            and isinstance(entry.elts[0], ast.Constant)
                            and isinstance(entry.elts[0].value, str)
                        ):
                            names[entry.elts[0].value] = entry.elts[0].lineno
                return names, module
        try:
            from repro.obs import METRIC_CATALOG
        except Exception:  # pragma: no cover - catalog import always works
            return None, None
        return {entry[0]: 1 for entry in METRIC_CATALOG}, None

    def _near_duplicates(
        self,
        catalog: dict[str, int],
        emitted: dict[str, tuple[str, int]],
        catalog_module: SourceModule | None,
    ) -> list[Finding]:
        known = sorted(set(catalog) | set(emitted))
        by_canonical: dict[str, list[str]] = {}
        for name in known:
            by_canonical.setdefault(self._canonical(name), []).append(name)
        findings: list[Finding] = []
        for group in by_canonical.values():
            if len(group) < 2:
                continue
            for name in group[1:]:
                others = ", ".join(n for n in group if n != name)
                path, line = self._locate(name, catalog, emitted, catalog_module)
                findings.append(
                    Finding(
                        rule=self.code,
                        path=path,
                        line=line,
                        message=(
                            f"metric name {name!r} is a near-duplicate of "
                            f"{others} (same name modulo _total/plural/"
                            "underscores); one statistic must have one key"
                        ),
                    )
                )
        return findings

    @staticmethod
    def _canonical(name: str) -> str:
        if name.endswith("_total"):
            name = name[: -len("_total")]
        if name.endswith("s"):
            name = name[:-1]
        return name.replace("_", "")

    @staticmethod
    def _locate(
        name: str,
        catalog: dict[str, int],
        emitted: dict[str, tuple[str, int]],
        catalog_module: SourceModule | None,
    ) -> tuple[str, int]:
        if name in emitted:
            return emitted[name]
        if catalog_module is not None and name in catalog:
            return catalog_module.path, catalog[name]
        return "<catalog>", catalog.get(name, 1)


class TouchResultContract(Rule):
    """TRD005: typed touch results are consumed through their fields.

    ``System.touch`` returns a :class:`repro.sim.batch.TouchResult` —
    a ``float`` subclass carrying ``cycles``, ``faulted`` and
    ``page_size``.  The float inheritance is a deprecation shim: bare
    arithmetic on the result keeps working today but silently reads
    "translation cycles" with no record of which field the call site
    meant, and breaks outright when the shim is dropped.  New code reads
    the named fields; this rule flags raw-float consumption of a
    ``.touch(...)`` call (arithmetic, comparisons, numeric coercion).
    """

    code = "TRD005"
    name = "touch-result-contract"
    description = (
        "touch() results are read via .cycles/.faulted/.page_size, "
        "not as bare floats"
    )
    rationale = (
        "System.touch returns a TouchResult whose float inheritance is "
        "a deprecation shim. Bare arithmetic on it compiles today but "
        "records nothing about which field the call site meant, and "
        "breaks outright when the shim is dropped."
    )
    example_bad = "total += system.touch(process, va) * 2\n"
    example_good = "total += system.touch(process, va).cycles * 2\n"

    _COERCIONS = frozenset({"float", "int", "round", "sum", "min", "max"})

    def check(self, ctx: LintContext) -> list[Finding]:
        findings: list[Finding] = []
        for module in ctx.modules:
            for node in ast.walk(module.tree):
                findings.extend(self._check_node(module, node))
        return findings

    @staticmethod
    def _is_touch_call(node: ast.AST) -> bool:
        # ``<obj>.touch(process, va)`` — two-plus positional arguments
        # distinguishes the System/GuestSystem access API from the
        # single-argument ``WorkloadAPI.touch(addresses)`` batch helper,
        # which returns None and has no cycles to misread.
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "touch"
            and len(node.args) >= 2
        )

    def _check_node(
        self, module: SourceModule, node: ast.AST
    ) -> Iterator[Finding]:
        operands: list[ast.AST] = []
        if isinstance(node, ast.BinOp):
            operands = [node.left, node.right]
        elif isinstance(node, ast.AugAssign):
            operands = [node.value]
        elif isinstance(node, ast.UnaryOp):
            operands = [node.operand]
        elif isinstance(node, ast.Compare):
            operands = [node.left, *node.comparators]
        elif isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            if dotted in self._COERCIONS:
                operands = list(node.args)
        for operand in operands:
            if self._is_touch_call(operand):
                yield self.finding(
                    module,
                    operand.lineno,
                    "raw-float use of a touch() result; TouchResult is "
                    "typed — read .cycles (or .faulted / .page_size) "
                    "instead of relying on the float deprecation shim",
                )


# The cross-module rules live in rules_cross (they need the call graph /
# dataflow layer); imported at the bottom so they can reuse this module's
# AST helpers without a cycle at import time.
from repro.lint.rules_cross import CROSS_RULES  # noqa: E402

ALL_RULES: tuple[Rule, ...] = (
    NoGlobalRng(),
    ExperimentProtocol(),
    FrameArithmetic(),
    MetricRegistryHygiene(),
    TouchResultContract(),
    *CROSS_RULES,
)
