"""Arrival processes for the service layer: when requests hit a tenant.

Open-loop load generation is the whole point of the service mode: the
arrival process is fixed *a priori* (a Poisson process at the offered
rate, or a recorded trace), so a slow server cannot push back on the
client — requests keep arriving and queueing delay compounds, which is
exactly the saturation behaviour closed-loop harnesses hide (see
docs/service.md).  Arrivals are generated before the replay starts, from
a seeded generator (TRD001), so a cell's schedule is a pure function of
its derived seed and never of simulation progress.

All offsets are simulated nanoseconds relative to the cell's epoch (the
clock position when the measured phase starts).
"""

from __future__ import annotations

import numpy as np


def poisson_arrivals(
    seed: int, rate_rps: float, duration_s: float
) -> np.ndarray:
    """Open-loop Poisson arrival offsets (ns, sorted) over ``duration_s``.

    Inter-arrival gaps are exponential with mean ``1/rate_rps`` seconds;
    the schedule is truncated at the duration.  Drawing happens in chunks
    whose sizes depend only on (rate, duration), so the resulting stream
    is byte-deterministic for a given seed.
    """
    if rate_rps <= 0.0:
        raise ValueError(f"rate_rps must be positive, got {rate_rps}")
    if duration_s <= 0.0:
        raise ValueError(f"duration_s must be positive, got {duration_s}")
    rng = np.random.default_rng(seed)
    duration_ns = duration_s * 1e9
    mean_gap_ns = 1e9 / rate_rps
    chunk = max(64, int(rate_rps * duration_s * 1.2) + 1)
    offsets = np.cumsum(rng.exponential(mean_gap_ns, size=chunk))
    # Rarely the first chunk undershoots the window; extend until the
    # schedule crosses the end so truncation below is exact.
    while offsets[-1] < duration_ns:
        more = np.cumsum(rng.exponential(mean_gap_ns, size=chunk))
        offsets = np.concatenate([offsets, offsets[-1] + more])
    return offsets[offsets < duration_ns]


def trace_arrivals(path: str, duration_s: float | None = None) -> np.ndarray:
    """Trace-driven arrival offsets (ns, sorted) from a text file.

    One arrival per line, as a simulated-seconds offset from the start of
    the trace (floats; blank lines and ``#`` comments ignored).  Offsets
    must be non-negative; the stream is sorted so recorded traces do not
    need to be.  ``duration_s`` truncates the tail when given.
    """
    seconds: list[float] = []
    with open(path) as f:
        for lineno, raw in enumerate(f, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            try:
                value = float(line)
            except ValueError:
                raise ValueError(
                    f"{path}:{lineno}: not a number: {line!r}"
                ) from None
            if value < 0.0:
                raise ValueError(
                    f"{path}:{lineno}: negative arrival offset {value}"
                )
            seconds.append(value)
    if not seconds:
        raise ValueError(f"{path}: arrival trace is empty")
    offsets = np.sort(np.asarray(seconds, dtype=np.float64)) * 1e9
    if duration_s is not None:
        offsets = offsets[offsets < duration_s * 1e9]
        if len(offsets) == 0:
            raise ValueError(
                f"{path}: no arrivals inside the {duration_s}s window"
            )
    return offsets


def closed_loop_count(rate_rps: float, duration_s: float) -> int:
    """Request count a closed-loop run issues for a fair comparison.

    Closed-loop mode has no arrival schedule (the next request is issued
    the instant the previous one completes), so the open-loop *expected*
    count at the same offered load keeps the two modes comparable.
    """
    if rate_rps <= 0.0 or duration_s <= 0.0:
        raise ValueError("rate_rps and duration_s must be positive")
    return max(1, int(round(rate_rps * duration_s)))
