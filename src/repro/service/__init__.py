"""Service mode: open-loop traffic against the simulated memory fleet.

Closed-loop measurement (the ``repro run`` / ``repro experiment`` path)
issues the next request only after the previous one completes, so a slow
policy quietly sheds load and its tail latency looks flatter than any
real service would see.  This package drives the opposite discipline:
arrivals are fixed in advance — Poisson at an offered rate, or a recorded
trace — and queueing delay compounds against the simulated clock when the
tenant cannot keep up, which is the regime where Trident's translation
savings actually move SLOs.

Layout:

* :mod:`repro.service.arrivals` — seeded arrival processes.
* :mod:`repro.service.fleet` — tenant cells, request replay, the fleet
  runner on the sweep orchestrator's process pool.
* :mod:`repro.service.report` — histogram merging, percentile tables,
  saturation curves.

Entry points: ``repro loadgen`` (homogeneous fleet from flags) and
``repro serve --config`` (heterogeneous fleet from a JSON spec).
"""

from repro.service.arrivals import (
    closed_loop_count,
    poisson_arrivals,
    trace_arrivals,
)
from repro.service.fleet import (
    ServiceConfig,
    TenantSpec,
    run_fleet,
    run_service_cell,
)
from repro.service.report import (
    build_service_report,
    merge_histogram_exports,
    render_service_table,
)

__all__ = [
    "ServiceConfig",
    "TenantSpec",
    "build_service_report",
    "closed_loop_count",
    "merge_histogram_exports",
    "poisson_arrivals",
    "render_service_table",
    "run_fleet",
    "run_service_cell",
    "trace_arrivals",
]
