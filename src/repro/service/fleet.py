"""The simulated memory fleet: tenant cells, request replay, orchestration.

One *cell* is the unit of service simulation: a tenant ``System`` booted
under one policy, loaded by one arrival schedule.  Each request maps to
one ``Workload.iter_batches`` slice executed through the vectorized
``touch_batch`` hot path; its service time mirrors the request model of
``NativeRunner._run_requests`` (base service time + the unhidden fraction
of the request's own translation cycles + its fault latency), and both
the queueing gap and the service time are charged against the tenant's
``SimClock``, so spans, timeline samples and Chrome traces line up with
request latency on one simulated-time axis.

Request latency composes the single-server FIFO recursion::

    start_i      = max(arrival_i, completion_{i-1})
    completion_i = start_i + service_i
    latency_i    = completion_i - arrival_i

Cells are embarrassingly parallel and run on the sweep orchestrator's
process-pool engine (:func:`repro.experiments.orchestrator.execute_units`)
with seeds derived per cell id (:func:`derive_seed`), so fleet output is
byte-identical at any ``--jobs`` count: every cell's result is a pure
function of (root seed, cell id), and cells are merged in canonical
order, never completion order.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import FREQ_GHZ, default_machine
from repro.experiments.configs import policy_factory, resolve_policy
from repro.experiments.orchestrator import UnitSpec, derive_seed, execute_units
from repro.experiments.runner import _WorkloadAPI
from repro.mem.numa import NumaTopology
from repro.obs import Observability
from repro.service.arrivals import (
    closed_loop_count,
    poisson_arrivals,
    trace_arrivals,
)
from repro.sim.system import System
from repro.workloads.registry import get_workload

#: worker target resolved by the orchestrator's process pool
CELL_TARGET = "repro.service.fleet:run_service_cell_unit"

#: latency histogram bounds: a 1-2-5 ladder from 1us to 5s in ns, wide
#: enough for sub-SLO request latencies and deep-saturation queueing alike
LATENCY_BUCKETS_NS = tuple(
    m * 10**d for d in range(3, 10) for m in (1, 2, 5)
)

#: smallest tenant machine, in large regions — headroom for the stack
#: segment and the policy's reserves even for tiny smoke footprints
MIN_TENANT_REGIONS = 48


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of the fleet: a workload driven at a rate under a policy."""

    workload: str
    policy: str
    rate_rps: float


@dataclass
class ServiceConfig:
    """Knobs shared by ``repro loadgen`` and ``repro serve``."""

    tenants: tuple = ()  # TenantSpec per tenant
    duration_s: float = 0.02
    accesses_per_request: int = 16
    request_base_service_ns: float = 20_000.0
    slo_ms: float = 1.0
    #: "open" (Poisson or trace arrivals) or "closed" (next request is
    #: issued on completion of the previous — the comparison baseline)
    mode: str = "open"
    #: trace file overriding Poisson arrivals (open mode only)
    arrivals_path: str | None = None
    seed: int = 7
    jobs: int = 1
    out_dir: str = "report/service"
    #: record the simulated-time timeline + spans and export one
    #: Perfetto-loadable Chrome trace per cell under ``out_dir/traces``
    timeline: bool = False
    #: shrink workload footprints further for smoke runs (paper GB are
    #: divided by this on top of the project-wide SCALE_FACTOR)
    scale_factor: int | None = None
    settle_ticks: int = 120
    timeout_s: float = 900.0
    #: NUMA shape of every tenant machine; cells pin round-robin to nodes
    #: (cell index mod nodes).  1 keeps the flat pre-NUMA machine.
    numa_nodes: int = 1
    numa_remote_multiplier: float = 1.4
    #: replicate page tables per node (Mitosis): local walks, fault-time
    #: replica maintenance — see docs/numa.md
    pt_replication: bool = False
    #: directory receiving one ``<cell>.prom`` scrape stream per cell
    #: (None disables the telemetry pipeline entirely)
    telemetry_out: str | None = None
    #: simulated milliseconds between scrape frames
    telemetry_interval_ms: float = 1.0
    #: alert rule file (JSON/TOML) evaluated per frame in every cell;
    #: cell exports merge into ``out_dir/alerts.json``
    alerts_path: str | None = None
    extra_cell_kwargs: dict = field(default_factory=dict)


def cell_id(tenant: TenantSpec, index: int) -> str:
    """Stable cell identity — the seed-derivation key."""
    return (
        f"service:{tenant.workload}:{tenant.policy}"
        f":rate{tenant.rate_rps:g}:tenant{index}"
    )


def _cell_slug(unit_id: str) -> str:
    return unit_id.replace(":", "__").replace("/", "_")


def run_service_cell(
    workload: str,
    policy: str,
    tenant: int,
    rate_rps: float,
    duration_s: float,
    seed: int,
    accesses_per_request: int = 16,
    request_base_service_ns: float = 20_000.0,
    slo_ms: float = 1.0,
    mode: str = "open",
    arrivals_path: str | None = None,
    scale_factor: int | None = None,
    settle_ticks: int = 120,
    timeline: bool = False,
    trace_out: str | None = None,
    numa_nodes: int = 1,
    numa_remote_multiplier: float = 1.4,
    pt_replication: bool = False,
    home_node: int = 0,
    telemetry_out: str | None = None,
    telemetry_interval_ms: float = 1.0,
    alerts_path: str | None = None,
) -> dict:
    """Simulate one tenant cell; returns its JSON-able result record.

    The record is a pure function of the arguments: seeded generators
    only, no wall clock, no filesystem state — the property every
    byte-determinism guarantee downstream rests on.
    """
    if mode not in ("open", "closed"):
        raise ValueError(f"mode must be 'open' or 'closed', got {mode!r}")
    policy = resolve_policy(policy)
    wl = get_workload(workload, scale_factor)
    geometry_large = default_machine(1).geometry.large_size
    regions = max(
        MIN_TENANT_REGIONS,
        int(wl.footprint_bytes * 1.15) // geometry_large + 1,
    )
    numa = None
    if numa_nodes > 1:
        numa = NumaTopology(
            nodes=numa_nodes, remote_multiplier=numa_remote_multiplier
        )
        regions += (-regions) % numa_nodes  # whole regions per node
    obs = Observability(timeline=timeline)
    system = System(
        default_machine(regions),
        policy_factory(policy),
        seed=seed,
        obs=obs,
        numa=numa,
        pt_replication=pt_replication,
    )
    process = system.create_process(workload, home_node=home_node)
    api = _WorkloadAPI(
        system, process, np.random.default_rng(derive_seed(seed, "setup"))
    )
    with obs.spans.span("service_setup"):
        wl.setup(api)
    with obs.spans.span("service_settle"):
        system.settle_until_quiet(max_ticks=settle_ticks, budget_ns=2e9)
    process.tlb.reset_stats()

    # -- the arrival schedule (fixed before any request executes) ----------
    if mode == "closed":
        n_requests = closed_loop_count(rate_rps, duration_s)
        offsets = None
    elif arrivals_path:
        offsets = trace_arrivals(arrivals_path, duration_s)
        n_requests = len(offsets)
    else:
        offsets = poisson_arrivals(
            derive_seed(seed, "arrivals"), rate_rps, duration_s
        )
        n_requests = len(offsets)

    # -- metrics + timeline instrumentation --------------------------------
    # Service series carry (workload, policy) labels so fleet-level
    # consumers — the scrape endpoint, ``repro watch`` — can group cells
    # without a side channel.
    metrics = obs.metrics
    tags = {"workload": workload, "policy": policy}
    h_latency = metrics.histogram(
        "service_request_latency_ns", buckets=LATENCY_BUCKETS_NS, **tags
    )
    h_queue = metrics.histogram(
        "service_queue_delay_ns", buckets=LATENCY_BUCKETS_NS, **tags
    )
    c_requests = metrics.counter("service_requests_total", **tags)
    c_violations = metrics.counter("service_slo_violations_total", **tags)
    g_depth = metrics.gauge("service_queue_depth", **tags)
    g_completed = metrics.gauge("service_completed_requests", **tags)
    progress = {"completed": 0, "depth": 0.0}
    if obs.timeline is not None:
        obs.timeline.add_series(
            "service_queue_depth", lambda: progress["depth"], unit="requests"
        )
        obs.timeline.add_series(
            "service_completed_requests",
            lambda: float(progress["completed"]),
            unit="requests",
        )

    # -- telemetry: scrape frames + per-frame alert evaluation --------------
    scraper = None
    engine = None
    if telemetry_out:
        from repro.obs.telemetry import (
            AlertEngine,
            ScrapeFileSink,
            TelemetryScraper,
            load_alert_rules,
        )

        if alerts_path:
            engine = AlertEngine(
                load_alert_rules(alerts_path),
                tracer=obs.tracer,
                metrics=metrics,
            )
        scraper = TelemetryScraper(
            obs.clock,
            metrics,
            ScrapeFileSink(telemetry_out),
            interval_ms=telemetry_interval_ms,
            alert_engine=engine,
        )

    # -- request replay: FIFO queue over the simulated clock ----------------
    clock = obs.clock
    spec = wl.spec
    slo_ns = slo_ms * 1e6
    k = accesses_per_request
    epoch_ns = clock.now_ns
    prev_completion = epoch_ns
    slo_violations = 0
    queue_delay_sum = 0.0
    api.rng = np.random.default_rng(derive_seed(seed, "stream"))
    batches = wl.iter_batches(api, n_requests * k, batch=k)
    for i, batch in enumerate(batches):
        if i >= n_requests:
            break
        arrival = (
            prev_completion if offsets is None else epoch_ns + offsets[i]
        )
        start = max(arrival, prev_completion)
        if start > clock.now_ns:
            # The queueing / idle gap: simulated time passes while the
            # request waits (or the server sits idle), daemons included.
            clock.advance(start - clock.now_ns)
        with obs.spans.span("service_request") as span:
            numa_pen_before = system.numa_penalty_ns_total
            br = system.touch_batch(process, batch)
            cycles = br.translation_cycles * spec.walk_exposure
            cycles += k * spec.cpi_base
            service_ns = (
                request_base_service_ns + cycles / FREQ_GHZ + br.fault_ns
            )
            # Interconnect cost this request incurred (remote walks, remote
            # data, replica maintenance) is service time too.  Zero on flat
            # machines, so pre-NUMA latencies are byte-identical.
            service_ns += system.numa_penalty_ns_total - numa_pen_before
            # touch_batch already charged its leaf costs; top the clock up
            # to the modeled completion so time never runs backwards.
            completion = max(start + service_ns, clock.now_ns)
            clock.advance(completion - clock.now_ns)
            span.set(tenant=tenant)
        latency = completion - arrival
        queue_delay = start - arrival
        queue_delay_sum += queue_delay
        h_latency.observe(latency)
        h_queue.observe(queue_delay)
        c_requests.inc()
        if latency > slo_ns:
            slo_violations += 1
            c_violations.inc()
        prev_completion = completion
        progress["completed"] = i + 1
        if offsets is not None:
            arrived = float(
                np.searchsorted(offsets, clock.now_ns - epoch_ns, side="right")
            )
            progress["depth"] = max(0.0, arrived - progress["completed"])
        g_completed.value = float(progress["completed"])
        g_depth.value = progress["depth"]
    if obs.timeline is not None:
        obs.timeline.sample()  # closing sample at end-of-run state
    if scraper is not None:
        scraper.close()  # final frame at end-of-run state
    if trace_out:
        from repro.obs.export import write_chrome_trace

        parent = os.path.dirname(trace_out)
        if parent:
            os.makedirs(parent, exist_ok=True)
        write_chrome_trace(
            trace_out, tracer=obs.tracer, timeline=obs.timeline, clock=clock
        )

    busy_ns = prev_completion - epoch_ns
    numa_section = None
    if numa is not None:
        snap = metrics.snapshot()
        numa_section = {
            "nodes": numa.nodes,
            "remote_multiplier": numa.remote_multiplier,
            "home_node": home_node,
            "pt_replication": pt_replication,
            "node_free_frames": [
                system.buddy.node_free_frames(n) for n in range(numa.nodes)
            ],
            "node_fmfi": [
                system.buddy.node_fmfi(n) for n in range(numa.nodes)
            ],
            "counters": {
                name: value
                for name, value in sorted(snap["counters"].items())
                if name.startswith("numa_")
            },
        }
    return {
        "workload": workload,
        "policy": policy,
        "tenant": tenant,
        "mode": mode,
        **({"numa": numa_section} if numa_section is not None else {}),
        **({"alerts": engine.export()} if engine is not None else {}),
        **(
            {"telemetry_frames": scraper.frames}
            if scraper is not None
            else {}
        ),
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "accesses_per_request": k,
        "requests": n_requests,
        "slo_ms": slo_ms,
        "slo_violations": slo_violations,
        "queue_delay_mean_ns": (
            queue_delay_sum / n_requests if n_requests else 0.0
        ),
        "completed_rps": n_requests / (busy_ns / 1e9) if busy_ns else 0.0,
        "span_clock_ns": busy_ns,
        "latency": h_latency.export(),
        "queue_delay": h_queue.export(),
    }


def run_service_cell_unit(out_path: str, **kwargs) -> dict:
    """Worker target: run one cell, persist its record, report outputs."""
    record = run_service_cell(**kwargs)
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    return {"outputs": [out_path]}


def build_cell_specs(config: ServiceConfig) -> list:
    """One :class:`UnitSpec` per (tenant, cell), seeds derived per cell id."""
    specs: list[UnitSpec] = []
    for index, tenant in enumerate(config.tenants):
        unit_id = cell_id(tenant, index)
        slug = _cell_slug(unit_id)
        seed = derive_seed(config.seed, unit_id)
        kwargs = {
            "workload": tenant.workload,
            "policy": tenant.policy,
            "tenant": index,
            "rate_rps": tenant.rate_rps,
            "duration_s": config.duration_s,
            "seed": seed,
            "accesses_per_request": config.accesses_per_request,
            "request_base_service_ns": config.request_base_service_ns,
            "slo_ms": config.slo_ms,
            "mode": config.mode,
            "arrivals_path": config.arrivals_path,
            "scale_factor": config.scale_factor,
            "settle_ticks": config.settle_ticks,
            "timeline": config.timeline,
            **(
                {
                    "numa_nodes": config.numa_nodes,
                    "numa_remote_multiplier": config.numa_remote_multiplier,
                    "pt_replication": config.pt_replication,
                    "home_node": index % config.numa_nodes,
                }
                if config.numa_nodes > 1
                else {}
            ),
            "trace_out": (
                os.path.join(config.out_dir, "traces", f"{slug}.json")
                if config.timeline
                else None
            ),
            **(
                {
                    "telemetry_out": os.path.join(
                        config.telemetry_out, f"{slug}.prom"
                    ),
                    "telemetry_interval_ms": config.telemetry_interval_ms,
                    "alerts_path": config.alerts_path,
                }
                if config.telemetry_out
                else {}
            ),
            "out_path": os.path.join(config.out_dir, "cells", f"{slug}.json"),
            **config.extra_cell_kwargs,
        }
        specs.append(
            UnitSpec(
                unit_id=unit_id,
                target=CELL_TARGET,
                kwargs=kwargs,
                seed=seed,
                timeout_s=config.timeout_s,
            )
        )
    return specs


def run_fleet(config: ServiceConfig, progress=None) -> dict:
    """Run every cell on the pool engine and compile the service report.

    Returns the report dict (also written to ``out_dir``); raises
    ``RuntimeError`` naming the failed cells when any cell does not
    complete — a service report with silently missing tenants would
    misstate every aggregate percentile.
    """
    from repro.service.report import build_service_report, write_service_report

    if not config.tenants:
        raise ValueError("service fleet has no tenants")
    os.makedirs(config.out_dir, exist_ok=True)
    specs = build_cell_specs(config)
    results = execute_units(specs, jobs=config.jobs, progress=progress)
    failed = [
        f"{unit_id} ({results[unit_id].status}: {results[unit_id].error})"
        for unit_id in sorted(results)
        if results[unit_id].status != "ok"
    ]
    if failed:
        raise RuntimeError(
            f"{len(failed)} service cell(s) failed: " + "; ".join(failed)
        )
    # Merge in canonical spec order (never completion order) from the
    # JSON records on disk, so jobs=1 and jobs=N compile identical input.
    records = []
    for unit_spec in specs:
        with open(unit_spec.kwargs["out_path"]) as f:
            records.append(json.load(f))
    report = build_service_report(config, records)
    if any("alerts" in record for record in records):
        from repro.obs.telemetry import AlertLog
        from repro.service.report import write_alerts_json

        alert_log = AlertLog()
        for unit_spec, record in zip(specs, records):
            if "alerts" in record:
                alert_log.add(_cell_slug(unit_spec.unit_id), record["alerts"])
        merged = alert_log.export()
        write_alerts_json(config.out_dir, merged)
        report["alerts"] = {
            "firing": merged["firing"],
            "resolved": merged["resolved"],
            "active": sum(
                len(cell["active"]) for cell in merged["cells"].values()
            ),
        }
    write_service_report(config.out_dir, report)
    return report
