"""Service report: merge tenant cells into per-policy latency tables.

The fleet's cells each carry their own latency and queue-delay histogram
exports; this module merges them (bucket-wise sums, max-of-max) into one
distribution per (workload, policy, rate) group, reads percentiles off
the merged buckets with :func:`percentile_from_buckets` (finite at the
tail thanks to the recorded ``max``), and lays out the saturation curve —
latency vs offered load — that open-loop generation exists to measure.

Byte-determinism contract: the report JSON is a pure function of the
cell records and the run parameters.  Environment-dependent facts
(out_dir, jobs, wall-clock durations) are deliberately excluded so the
same seed produces the same bytes at any parallelism.
"""

from __future__ import annotations

import json
import os

from repro.obs.metrics import percentile_from_buckets

# The merge lives with the other window/stream math now; re-exported here
# because cell merging is where it originated and callers import it from
# this module.
from repro.obs.telemetry.windows import merge_histogram_exports

__all__ = [
    "PERCENTILES",
    "merge_histogram_exports",
    "build_service_report",
    "write_service_report",
    "write_alerts_json",
    "render_service_table",
]

PERCENTILES = (50.0, 90.0, 99.0, 100.0)


def _percentile_block(export: dict) -> dict:
    """Percentiles off the merged buckets, re-clamped to the merged max.

    ``percentile_from_buckets`` returns the *upper bound* of the bucket a
    rank falls in, which can overstate the tail when cells with very
    different maxima merge: a lone 3.2ms observation from a slow cell
    lands in the 5ms bucket, and without the clamp the merged p100 would
    read 5ms — beyond anything any tenant ever observed.  The recorded
    merged ``max`` is the tightest sound cap for every percentile.
    """
    cap = export.get("max")
    block = {}
    for pct in PERCENTILES:
        value = percentile_from_buckets(export, pct)
        if cap is not None and value > cap:
            value = cap
        block[f"p{pct:g}"] = value
    return block


def _group_key(record: dict) -> tuple:
    return (record["workload"], record["policy"], record["rate_rps"])


def build_service_report(config, records: list) -> dict:
    """Compile cell records into the service report dict.

    Groups cells by (workload, policy, rate) — the tenants of one group
    are replicas of the same service tier, so their distributions merge —
    and emits per-group percentiles, throughput, SLO accounting, and the
    rate-ordered saturation curve per (workload, policy).
    """
    groups: dict[tuple, list] = {}
    for record in records:
        groups.setdefault(_group_key(record), []).append(record)
    rows = []
    for key in sorted(groups):
        workload, policy, rate = key
        cells = groups[key]
        latency = merge_histogram_exports([c["latency"] for c in cells])
        queue = merge_histogram_exports([c["queue_delay"] for c in cells])
        requests = sum(c["requests"] for c in cells)
        violations = sum(c["slo_violations"] for c in cells)
        rows.append(
            {
                "workload": workload,
                "policy": policy,
                "rate_rps": rate,
                "tenants": len(cells),
                "requests": requests,
                "offered_rps": rate * len(cells),
                "completed_rps": sum(c["completed_rps"] for c in cells),
                "slo_violations": violations,
                "slo_violation_pct": (
                    100.0 * violations / requests if requests else 0.0
                ),
                "latency_ns": _percentile_block(latency),
                "latency_mean_ns": (
                    latency["sum"] / latency["count"]
                    if latency["count"]
                    else 0.0
                ),
                "queue_delay_ns": _percentile_block(queue),
                "latency_hist": latency,
                "queue_delay_hist": queue,
            }
        )
    saturation: dict[str, list] = {}
    for row in rows:
        series_key = f"{row['workload']}/{row['policy']}"
        saturation.setdefault(series_key, []).append(
            {
                "offered_rps": row["offered_rps"],
                "p50_ns": row["latency_ns"]["p50"],
                "p99_ns": row["latency_ns"]["p99"],
                "slo_violation_pct": row["slo_violation_pct"],
            }
        )
    for points in saturation.values():
        points.sort(key=lambda p: p["offered_rps"])
    return {
        "kind": "service_report",
        "mode": config.mode,
        "duration_s": config.duration_s,
        "seed": config.seed,
        "slo_ms": config.slo_ms,
        "accesses_per_request": config.accesses_per_request,
        "request_base_service_ns": config.request_base_service_ns,
        "groups": rows,
        "saturation": saturation,
    }


def write_service_report(out_dir: str, report: dict) -> str:
    """Persist the report JSON plus the saturation CSV; returns JSON path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "service_report.json")
    with open(path, "w") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    csv_path = os.path.join(out_dir, "saturation.csv")
    with open(csv_path, "w") as f:
        f.write("workload_policy,offered_rps,p50_ns,p99_ns,slo_violation_pct\n")
        for series_key in sorted(report["saturation"]):
            for p in report["saturation"][series_key]:
                f.write(
                    f"{series_key},{p['offered_rps']:g},{p['p50_ns']:g},"
                    f"{p['p99_ns']:g},{p['slo_violation_pct']:g}\n"
                )
    return path


def write_alerts_json(out_dir: str, merged: dict) -> str:
    """Persist the fleet-merged :class:`AlertLog` export; returns the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, "alerts.json")
    with open(path, "w") as f:
        json.dump(merged, f, indent=2, sort_keys=True)
        f.write("\n")
    return path


def render_service_table(report: dict) -> list[str]:
    """Human-readable per-group table (printed by ``repro loadgen``)."""
    lines = [
        f"Service report — mode={report['mode']}  "
        f"duration={report['duration_s']:g}s  slo={report['slo_ms']:g}ms  "
        f"seed={report['seed']}",
        "",
        f"{'workload':<14} {'policy':<9} {'rate/ten':>9} {'tenants':>7} "
        f"{'requests':>8} {'p50':>10} {'p99':>10} {'p100':>10} {'SLO viol':>9}",
    ]
    for row in report["groups"]:
        lat = row["latency_ns"]
        lines.append(
            f"{row['workload']:<14} {row['policy']:<9} "
            f"{row['rate_rps']:>9g} {row['tenants']:>7} "
            f"{row['requests']:>8} "
            f"{lat['p50'] / 1e6:>8.2f}ms {lat['p99'] / 1e6:>8.2f}ms "
            f"{lat['p100'] / 1e6:>8.2f}ms "
            f"{row['slo_violation_pct']:>8.2f}%"
        )
    if "alerts" in report:
        alerts = report["alerts"]
        lines.append("")
        lines.append(
            f"alerts: {alerts['firing']} fired, "
            f"{alerts['resolved']} resolved, "
            f"{alerts['active']} still active (see alerts.json)"
        )
    return lines
