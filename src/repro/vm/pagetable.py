"""Per-process page table with base / mid / large leaf mappings.

x86-64 page tables are a 4-level radix tree whose leaves can sit at three
depths: PTE (4KB), PMD (2MB) and PUD (1GB).  For simulation we store each
leaf level as a dict keyed by the virtual page number at that level's
granularity, plus child counters that enforce the radix tree's structural
invariant — a large leaf cannot coexist with any smaller mapping inside its
range.  Walk *cost* (how many levels a hardware walk touches) is derived
from the leaf's page size by :class:`repro.config.WalkConfig`, which is all
the radix shape is needed for.

Each mapping carries an ``accessed`` bit, set by the TLB simulator on every
touch and cleared/sampled by the access-bit scanner (Figure 4) and by
HawkEye's miss-frequency estimator.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.config import PageGeometry, PageSize


class MappingConflictError(ValueError):
    """Raised when a new mapping would overlap an existing one."""


class Mapping:
    """One leaf page-table entry."""

    __slots__ = ("va", "page_size", "pfn", "accessed", "dirty")

    def __init__(self, va: int, page_size: int, pfn: int) -> None:
        self.va = va
        self.page_size = page_size
        self.pfn = pfn
        self.accessed = False
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mapping(va={self.va:#x}, size={PageSize.name_of(self.page_size)}, "
            f"pfn={self.pfn})"
        )


class PageTable:
    """All leaf mappings of one address space (guest or native)."""

    def __init__(self, geometry: PageGeometry) -> None:
        self.geometry = geometry
        self._shifts = {
            PageSize.BASE: geometry.base_shift,
            PageSize.MID: geometry.base_shift + geometry.mid_order,
            PageSize.LARGE: geometry.base_shift + geometry.large_order,
        }
        # vpn (at that size's granularity) -> Mapping
        self._levels: dict[int, dict[int, Mapping]] = {
            PageSize.BASE: {},
            PageSize.MID: {},
            PageSize.LARGE: {},
        }
        # Structural child counters: how many smaller mappings live inside
        # each large slot / mid slot.  Enforce leaf exclusivity in O(1).
        self._large_children: dict[int, int] = {}
        self._mid_children: dict[int, int] = {}
        # Optional per-NUMA-node resident-frame counters, maintained
        # incrementally on map/unmap once enable_node_accounting installs
        # a pfn -> node hook.  None keeps the non-NUMA hot path untouched.
        self._node_of = None
        self._node_frames: list[int] | None = None
        self._resident_frames = 0

    # -- helpers --------------------------------------------------------------
    def vpn(self, va: int, page_size: int) -> int:
        return va >> self._shifts[page_size]

    def page_bytes(self, page_size: int) -> int:
        return 1 << self._shifts[page_size]

    # -- map/unmap --------------------------------------------------------------
    def map_page(self, va: int, page_size: int, pfn: int) -> Mapping:
        """Install a leaf mapping; ``va`` must be size-aligned and unmapped."""
        if va % self.page_bytes(page_size):
            raise ValueError(
                f"va {va:#x} not aligned to {PageSize.name_of(page_size)} page"
            )
        self._check_conflicts(va, page_size)
        mapping = Mapping(va, page_size, pfn)
        self._levels[page_size][self.vpn(va, page_size)] = mapping
        if self._node_frames is not None:
            frames = self.geometry.frames_for(page_size)
            self._node_frames[self._node_of(pfn)] += frames
            self._resident_frames += frames
        if page_size != PageSize.LARGE:
            lslot = self.vpn(va, PageSize.LARGE)
            self._large_children[lslot] = self._large_children.get(lslot, 0) + 1
            if page_size == PageSize.BASE:
                mslot = self.vpn(va, PageSize.MID)
                self._mid_children[mslot] = self._mid_children.get(mslot, 0) + 1
        return mapping

    def _check_conflicts(self, va: int, page_size: int) -> None:
        lslot = self.vpn(va, PageSize.LARGE)
        if lslot in self._levels[PageSize.LARGE]:
            raise MappingConflictError(
                f"va {va:#x} already covered by a large mapping"
            )
        if page_size == PageSize.LARGE:
            if self._large_children.get(lslot, 0):
                raise MappingConflictError(
                    f"large slot {lslot} contains smaller mappings"
                )
            return
        mslot = self.vpn(va, PageSize.MID)
        if mslot in self._levels[PageSize.MID]:
            raise MappingConflictError(f"va {va:#x} already covered by a mid mapping")
        if page_size == PageSize.MID:
            if self._mid_children.get(mslot, 0):
                raise MappingConflictError(f"mid slot {mslot} contains base mappings")
            return
        if self.vpn(va, PageSize.BASE) in self._levels[PageSize.BASE]:
            raise MappingConflictError(f"va {va:#x} already mapped at base size")

    def unmap(self, va: int, page_size: int) -> Mapping:
        """Remove the leaf mapping at ``va``; returns it (caller frees frames)."""
        mapping = self._levels[page_size].pop(self.vpn(va, page_size), None)
        if mapping is None or mapping.va != self.geometry.align_down(va, page_size):
            raise ValueError(
                f"no {PageSize.name_of(page_size)} mapping at va {va:#x}"
            )
        if self._node_frames is not None:
            frames = self.geometry.frames_for(page_size)
            self._node_frames[self._node_of(mapping.pfn)] -= frames
            self._resident_frames -= frames
        if page_size != PageSize.LARGE:
            lslot = self.vpn(va, PageSize.LARGE)
            self._large_children[lslot] -= 1
            if not self._large_children[lslot]:
                del self._large_children[lslot]
            if page_size == PageSize.BASE:
                mslot = self.vpn(va, PageSize.MID)
                self._mid_children[mslot] -= 1
                if not self._mid_children[mslot]:
                    del self._mid_children[mslot]
        return mapping

    def unmap_range(
        self, start: int, length: int, strict: bool = True
    ) -> list[Mapping]:
        """Remove every mapping fully inside [start, start+length).

        Used by munmap and by promotion (which unmaps the small pages before
        installing the large one).  With ``strict`` (default) a mapping
        straddling either boundary raises; ``strict=False`` leaves
        straddlers in place — hugetlbfs-backed heaps round up to huge-page
        boundaries and do not return partial pages on free.
        """
        end = start + length
        removed: list[Mapping] = []
        front = self.translate(start)
        if front is not None and front.va < start and strict:
            raise ValueError(
                f"mapping at {front.va:#x} straddles unmap range start"
            )
        for size in (PageSize.LARGE, PageSize.MID, PageSize.BASE):
            page_bytes = self.page_bytes(size)
            level = self._levels[size]
            if len(level) <= (length // page_bytes):
                victims = [m for m in level.values() if start <= m.va < end]
            else:
                victims = []
                va = self.geometry.align_up(start, size)
                while va < end:
                    m = level.get(self.vpn(va, size))
                    if m is not None:
                        victims.append(m)
                    va += page_bytes
            for m in victims:
                if m.va < start or m.va + page_bytes > end:
                    if strict:
                        raise ValueError(
                            f"mapping at {m.va:#x} straddles unmap range boundary"
                        )
                    continue
                self.unmap(m.va, size)
                removed.append(m)
        return removed

    # -- NUMA residency accounting -------------------------------------------
    def enable_node_accounting(self, node_of, nodes: int) -> None:
        """Maintain per-node resident-frame counters from here on.

        ``node_of`` maps a pfn to its NUMA node (the buddy facade's
        :meth:`~repro.mem.numa.NumaBuddyPools.node_of`).  Existing
        mappings are accounted immediately; map/unmap/repoint keep the
        counters exact incrementally, O(1) per operation.
        """
        self._node_of = node_of
        self._node_frames = [0] * nodes
        self._resident_frames = 0
        for mapping in self.iter_mappings():
            frames = self.geometry.frames_for(mapping.page_size)
            self._node_frames[node_of(mapping.pfn)] += frames
            self._resident_frames += frames

    def note_repoint(self, mapping: Mapping, new_pfn: int) -> None:
        """Re-point a live mapping's frame (compaction/migration path).

        The single mutation point for in-place pfn changes, so node
        accounting can never drift when frames move between nodes.
        """
        if self._node_frames is not None:
            frames = self.geometry.frames_for(mapping.page_size)
            self._node_frames[self._node_of(mapping.pfn)] -= frames
            self._node_frames[self._node_of(new_pfn)] += frames
        mapping.pfn = new_pfn

    def node_resident_frames(self) -> list[int] | None:
        """Per-node resident frames (None before accounting is enabled)."""
        return None if self._node_frames is None else list(self._node_frames)

    @property
    def resident_frames_total(self) -> int:
        """Total frames under node accounting (0 before it is enabled)."""
        return self._resident_frames

    def remote_resident_fraction(self, home_node: int) -> float:
        """Fraction of resident frames living off ``home_node``."""
        if self._node_frames is None or self._resident_frames <= 0:
            return 0.0
        local = self._node_frames[home_node]
        return 1.0 - local / self._resident_frames

    # -- translation ---------------------------------------------------------
    def translate(self, va: int) -> Mapping | None:
        """The leaf mapping covering ``va``, or None if unmapped."""
        m = self._levels[PageSize.LARGE].get(va >> self._shifts[PageSize.LARGE])
        if m is not None:
            return m
        m = self._levels[PageSize.MID].get(va >> self._shifts[PageSize.MID])
        if m is not None:
            return m
        return self._levels[PageSize.BASE].get(va >> self._shifts[PageSize.BASE])

    def is_mapped(self, va: int) -> bool:
        return self.translate(va) is not None

    # -- iteration / accounting -------------------------------------------------
    def iter_mappings(self, page_size: int | None = None) -> Iterator[Mapping]:
        sizes: Iterable[int] = (
            PageSize.ALL if page_size is None else (page_size,)
        )
        for size in sizes:
            yield from self._levels[size].values()

    def count(self, page_size: int) -> int:
        return len(self._levels[page_size])

    def mapped_bytes(self, page_size: int | None = None) -> int:
        if page_size is not None:
            return self.count(page_size) * self.page_bytes(page_size)
        return sum(self.mapped_bytes(s) for s in PageSize.ALL)

    def mappings_in_range(self, start: int, length: int, page_size: int) -> list[Mapping]:
        """Mappings of ``page_size`` whose va lies in [start, start+length)."""
        end = start + length
        page_bytes = self.page_bytes(page_size)
        level = self._levels[page_size]
        if len(level) <= length // page_bytes:
            return sorted(
                (m for m in level.values() if start <= m.va < end),
                key=lambda m: m.va,
            )
        result = []
        va = self.geometry.align_up(start, page_size)
        while va < end:
            m = level.get(self.vpn(va, page_size))
            if m is not None:
                result.append(m)
            va += page_bytes
        return result

    # -- access bits ------------------------------------------------------------
    def clear_access_bits(self) -> None:
        for size in PageSize.ALL:
            for m in self._levels[size].values():
                m.accessed = False

    def accessed_mappings(self) -> list[Mapping]:
        return [m for m in self.iter_mappings() if m.accessed]
