"""Per-process page table with leaf mappings at every geometry level.

x86-64 page tables are a 4-level radix tree whose leaves can sit at three
depths: PTE (4KB), PMD (2MB) and PUD (1GB); other geometries declare more
(SVNAPOT's 64KB NAPOT pages) or different (ARM 16K granules) leaf levels.
For simulation we store each leaf level as a dict keyed by the virtual
page number at that level's granularity, plus child counters that enforce
the radix tree's structural invariant — a leaf cannot coexist with any
smaller mapping inside its range.  Walk *cost* (how many levels a
hardware walk touches) is derived from the leaf's level by
:class:`repro.config.WalkConfig`, which is all the radix shape is needed
for.

Each mapping carries an ``accessed`` bit, set by the TLB simulator on
every touch and cleared/sampled by the access-bit scanner (Figure 4) and
by HawkEye's miss-frequency estimator.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.config import PageGeometry


class MappingConflictError(ValueError):
    """Raised when a new mapping would overlap an existing one."""


class Mapping:
    """One leaf page-table entry; ``page_size`` is the geometry level."""

    __slots__ = ("va", "page_size", "pfn", "accessed", "dirty")

    def __init__(self, va: int, page_size: int, pfn: int) -> None:
        self.va = va
        self.page_size = page_size
        self.pfn = pfn
        self.accessed = False
        self.dirty = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Mapping(va={self.va:#x}, level={self.page_size}, "
            f"pfn={self.pfn})"
        )


class PageTable:
    """All leaf mappings of one address space (guest or native)."""

    def __init__(self, geometry: PageGeometry) -> None:
        self.geometry = geometry
        self.n_levels = geometry.n_levels
        self.top_level = geometry.top_level
        #: level indices, largest page first — translation precedence
        self.levels_desc = geometry.levels_desc
        self._shifts: list[int] = [
            geometry.shift_for(level) for level in geometry.all_levels
        ]
        # vpn (at that level's granularity) -> Mapping, one dict per level
        self._levels: list[dict[int, Mapping]] = [
            {} for _ in geometry.all_levels
        ]
        # Structural child counters, one per non-base level: how many
        # smaller mappings live inside each slot at that level.  Enforce
        # leaf exclusivity in O(n_levels) per map/unmap.
        self._children: list[dict[int, int]] = [
            {} for _ in geometry.all_levels
        ]
        # Optional per-NUMA-node resident-frame counters, maintained
        # incrementally on map/unmap once enable_node_accounting installs
        # a pfn -> node hook.  None keeps the non-NUMA hot path untouched.
        self._node_of = None
        self._node_frames: list[int] | None = None
        self._resident_frames = 0

    # -- helpers --------------------------------------------------------------
    def vpn(self, va: int, page_size: int) -> int:
        return va >> self._shifts[page_size]

    def page_bytes(self, page_size: int) -> int:
        return 1 << self._shifts[page_size]

    def children_in_slot(self, level: int, slot_vpn: int) -> int:
        """Number of smaller mappings inside slot ``slot_vpn`` of ``level``."""
        return self._children[level].get(slot_vpn, 0)

    # -- map/unmap --------------------------------------------------------------
    def map_page(self, va: int, page_size: int, pfn: int) -> Mapping:
        """Install a leaf mapping; ``va`` must be size-aligned and unmapped."""
        if va % self.page_bytes(page_size):
            raise ValueError(
                f"va {va:#x} not aligned to "
                f"{self.geometry.name_of(page_size)} page"
            )
        self._check_conflicts(va, page_size)
        mapping = Mapping(va, page_size, pfn)
        self._levels[page_size][self.vpn(va, page_size)] = mapping
        if self._node_frames is not None:
            frames = self.geometry.frames_for(page_size)
            self._node_frames[self._node_of(pfn)] += frames
            self._resident_frames += frames
        for level in range(page_size + 1, self.n_levels):
            slot = self.vpn(va, level)
            counts = self._children[level]
            counts[slot] = counts.get(slot, 0) + 1
        return mapping

    def _check_conflicts(self, va: int, page_size: int) -> None:
        # Larger levels first: a bigger leaf shadows everything below it.
        for level in range(self.top_level, page_size, -1):
            if self.vpn(va, level) in self._levels[level]:
                raise MappingConflictError(
                    f"va {va:#x} already covered by a "
                    f"{self.geometry.name_of(level)} mapping"
                )
        slot = self.vpn(va, page_size)
        if slot in self._levels[page_size]:
            raise MappingConflictError(
                f"va {va:#x} already mapped at "
                f"{self.geometry.name_of(page_size)} size"
            )
        if page_size > 0 and self._children[page_size].get(slot, 0):
            raise MappingConflictError(
                f"{self.geometry.name_of(page_size)} slot {slot} contains "
                "smaller mappings"
            )

    def unmap(self, va: int, page_size: int) -> Mapping:
        """Remove the leaf mapping at ``va``; returns it (caller frees frames)."""
        mapping = self._levels[page_size].pop(self.vpn(va, page_size), None)
        if mapping is None or mapping.va != self.geometry.align_down(va, page_size):
            raise ValueError(
                f"no {self.geometry.name_of(page_size)} mapping at va {va:#x}"
            )
        if self._node_frames is not None:
            frames = self.geometry.frames_for(page_size)
            self._node_frames[self._node_of(mapping.pfn)] -= frames
            self._resident_frames -= frames
        for level in range(page_size + 1, self.n_levels):
            slot = self.vpn(va, level)
            counts = self._children[level]
            counts[slot] -= 1
            if not counts[slot]:
                del counts[slot]
        return mapping

    def unmap_range(
        self, start: int, length: int, strict: bool = True
    ) -> list[Mapping]:
        """Remove every mapping fully inside [start, start+length).

        Used by munmap and by promotion (which unmaps the small pages before
        installing the large one).  With ``strict`` (default) a mapping
        straddling either boundary raises; ``strict=False`` leaves
        straddlers in place — hugetlbfs-backed heaps round up to huge-page
        boundaries and do not return partial pages on free.
        """
        end = start + length
        removed: list[Mapping] = []
        front = self.translate(start)
        if front is not None and front.va < start and strict:
            raise ValueError(
                f"mapping at {front.va:#x} straddles unmap range start"
            )
        for size in self.levels_desc:
            page_bytes = self.page_bytes(size)
            level = self._levels[size]
            if len(level) <= (length // page_bytes):
                victims = [m for m in level.values() if start <= m.va < end]
            else:
                victims = []
                va = self.geometry.align_up(start, size)
                while va < end:
                    m = level.get(self.vpn(va, size))
                    if m is not None:
                        victims.append(m)
                    va += page_bytes
            for m in victims:
                if m.va < start or m.va + page_bytes > end:
                    if strict:
                        raise ValueError(
                            f"mapping at {m.va:#x} straddles unmap range boundary"
                        )
                    continue
                self.unmap(m.va, size)
                removed.append(m)
        return removed

    # -- NUMA residency accounting -------------------------------------------
    def enable_node_accounting(self, node_of, nodes: int) -> None:
        """Maintain per-node resident-frame counters from here on.

        ``node_of`` maps a pfn to its NUMA node (the buddy facade's
        :meth:`~repro.mem.numa.NumaBuddyPools.node_of`).  Existing
        mappings are accounted immediately; map/unmap/repoint keep the
        counters exact incrementally, O(1) per operation.
        """
        self._node_of = node_of
        self._node_frames = [0] * nodes
        self._resident_frames = 0
        for mapping in self.iter_mappings():
            frames = self.geometry.frames_for(mapping.page_size)
            self._node_frames[node_of(mapping.pfn)] += frames
            self._resident_frames += frames

    def note_repoint(self, mapping: Mapping, new_pfn: int) -> None:
        """Re-point a live mapping's frame (compaction/migration path).

        The single mutation point for in-place pfn changes, so node
        accounting can never drift when frames move between nodes.
        """
        if self._node_frames is not None:
            frames = self.geometry.frames_for(mapping.page_size)
            self._node_frames[self._node_of(mapping.pfn)] -= frames
            self._node_frames[self._node_of(new_pfn)] += frames
        mapping.pfn = new_pfn

    def node_resident_frames(self) -> list[int] | None:
        """Per-node resident frames (None before accounting is enabled)."""
        return None if self._node_frames is None else list(self._node_frames)

    @property
    def resident_frames_total(self) -> int:
        """Total frames under node accounting (0 before it is enabled)."""
        return self._resident_frames

    def remote_resident_fraction(self, home_node: int) -> float:
        """Fraction of resident frames living off ``home_node``."""
        if self._node_frames is None or self._resident_frames <= 0:
            return 0.0
        local = self._node_frames[home_node]
        return 1.0 - local / self._resident_frames

    # -- translation ---------------------------------------------------------
    def translate(self, va: int) -> Mapping | None:
        """The leaf mapping covering ``va``, or None if unmapped."""
        for level in self.levels_desc:
            m = self._levels[level].get(va >> self._shifts[level])
            if m is not None:
                return m
        return None

    def is_mapped(self, va: int) -> bool:
        return self.translate(va) is not None

    # -- iteration / accounting -------------------------------------------------
    def iter_mappings(self, page_size: int | None = None) -> Iterator[Mapping]:
        sizes: Iterable[int] = (
            range(self.n_levels) if page_size is None else (page_size,)
        )
        for size in sizes:
            yield from self._levels[size].values()

    def count(self, page_size: int) -> int:
        return len(self._levels[page_size])

    def mapped_bytes(self, page_size: int | None = None) -> int:
        if page_size is not None:
            return self.count(page_size) * self.page_bytes(page_size)
        return sum(self.mapped_bytes(s) for s in range(self.n_levels))

    def mappings_in_range(self, start: int, length: int, page_size: int) -> list[Mapping]:
        """Mappings of ``page_size`` whose va lies in [start, start+length)."""
        end = start + length
        page_bytes = self.page_bytes(page_size)
        level = self._levels[page_size]
        if len(level) <= length // page_bytes:
            return sorted(
                (m for m in level.values() if start <= m.va < end),
                key=lambda m: m.va,
            )
        result = []
        va = self.geometry.align_up(start, page_size)
        while va < end:
            m = level.get(self.vpn(va, page_size))
            if m is not None:
                result.append(m)
            va += page_bytes
        return result

    # -- access bits ------------------------------------------------------------
    def clear_access_bits(self) -> None:
        for level in self._levels:
            for m in level.values():
                m.accessed = False

    def accessed_mappings(self) -> list[Mapping]:
        return [m for m in self.iter_mappings() if m.accessed]
