"""Access-bit sampling: the paper's second kernel module (Figure 4).

Periodically clear the page-table access bits and count which regions' bits
the hardware sets again — a sampled estimate of access/TLB-miss frequency
per virtual region, attributable to mappability classes ("1GB-mappable" vs
"2MB-but-not-1GB-mappable").  HawkEye's kbinmanager uses the same trick for
promotion ordering; this standalone sampler is the measurement-side twin.
"""

from __future__ import annotations

import numpy as np

from repro.vm.mappability import classify_regions


class AccessBitSampler:
    """Samples access bits over a process's classified regions."""

    def __init__(self, process, geometry) -> None:
        self.process = process
        self.geometry = geometry
        self.regions = sorted(classify_regions(process.aspace, geometry))
        self._starts = np.array(
            [start for start, _, _ in self.regions], dtype=np.int64
        )
        self.counts: dict[tuple[int, int], int] = {
            (start, end): 0 for start, end, _ in self.regions
        }
        self.samples = 0

    def sample(self) -> None:
        """One sampling period: attribute set bits, then clear them."""
        accessed = np.array(
            [m.va for m in self.process.pagetable.accessed_mappings()],
            dtype=np.int64,
        )
        if len(accessed):
            idx = np.searchsorted(self._starts, accessed, side="right") - 1
            for i, va in zip(idx, accessed):
                if i < 0:
                    continue
                start, end, _ = self.regions[i]
                if va < end:
                    self.counts[(start, end)] += 1
        self.process.pagetable.clear_access_bits()
        self.samples += 1

    def rows(self, scale_factor: int = 1) -> list[dict]:
        """Per-region frequency rows (Figure 4's series)."""
        total = sum(self.counts.values()) or 1
        out = []
        for (start, end), count in sorted(self.counts.items()):
            cls = next(c for s, e, c in self.regions if s == start and e == end)
            size_gb = (end - start) * scale_factor / (1 << 30)
            share = count / total
            out.append(
                {
                    "region_start": hex(start),
                    "size_gb": size_gb,
                    "class": cls,
                    "miss_share": share,
                    "miss_per_gb": share / max(size_gb, 1e-9),
                }
            )
        return out

    def hottest_density(self, cls: str) -> float:
        """Peak misses/GB among regions of mappability class ``cls``."""
        rows = [r for r in self.rows() if r["class"] == cls]
        return max((r["miss_per_gb"] for r in rows), default=0.0)
