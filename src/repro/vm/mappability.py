"""Mappability analysis: which virtual ranges can take which page size.

Section 4.3 of the paper: a range is mappable by a page size iff it is at
least that long *and* aligned at that size's boundary — so every
1GB-mappable range is 2MB-mappable but not vice versa, and the gap between
the two (often several GB) is exactly the memory Trident must cover with
2MB pages.  These helpers reproduce the kernel module the authors wrote to
scan a process's address space periodically (Figure 3) and to classify
regions for the TLB-miss sampler (Figure 4).
"""

from __future__ import annotations

from typing import Iterator

from repro.config import PageGeometry
from repro.vm.addrspace import VMA, AddressSpace


def mappable_ranges(
    vma: VMA, page_size: int, geometry: PageGeometry
) -> Iterator[tuple[int, int]]:
    """Yield (start, end) of each aligned ``page_size`` slot inside ``vma``."""
    size = geometry.bytes_for(page_size)
    start = geometry.align_up(vma.start, page_size)
    while start + size <= vma.end:
        yield start, start + size
        start += size


def mappable_bytes(aspace: AddressSpace, page_size: int) -> int:
    """Total allocated virtual memory mappable with ``page_size`` pages.

    This is the quantity plotted in Figure 3 (per page size, over time).
    """
    geometry = aspace.geometry
    size = geometry.bytes_for(page_size)
    total = 0
    for vma in aspace.iter_extents():
        lo = geometry.align_up(vma.start, page_size)
        hi = geometry.align_down(vma.end, page_size)
        if hi > lo:
            total += ((hi - lo) // size) * size
    return total


def _classify_span(
    lo: int, hi: int, level: int, geometry: PageGeometry
) -> Iterator[tuple[int, int, str]]:
    """Recursively colour [lo, hi) with the mappability ladder.

    The aligned interior at ``level`` takes that level's name; the
    leftovers on either side fall through to the next level down, until
    the base level absorbs whatever remains.
    """
    if hi <= lo:
        return
    if level == 0:
        yield lo, hi, geometry.name_of(0)
        return
    interior_lo = geometry.align_up(lo, level)
    interior_hi = geometry.align_down(hi, level)
    if interior_hi > interior_lo:
        yield from _classify_span(lo, interior_lo, level - 1, geometry)
        yield interior_lo, interior_hi, geometry.name_of(level)
        yield from _classify_span(interior_hi, hi, level - 1, geometry)
    else:
        yield from _classify_span(lo, hi, level - 1, geometry)


def classify_regions(
    aspace: AddressSpace, geometry: PageGeometry
) -> list[tuple[int, int, str]]:
    """Split the mapped space into (start, end, class) regions.

    Classes are the geometry's level names, assigned largest-first: a
    region is classed by the biggest level whose aligned slot covers it
    ("large" = 1GB-mappable, "mid" = 2MB- but not 1GB-mappable, "base" =
    neither, on the x86 ladder).  Figure 4 colours its x-axis with
    exactly this classification.
    """
    regions: list[tuple[int, int, str]] = []
    for vma in aspace.iter_extents():
        spans = list(
            _classify_span(vma.start, vma.end, geometry.top_level, geometry)
        )
        spans.sort()
        # Merge adjacent same-class spans, but never across VMA boundaries so
        # callers can attribute each region to exactly one VMA.
        merged: list[tuple[int, int, str]] = []
        for span in spans:
            if merged and merged[-1][1] == span[0] and merged[-1][2] == span[2]:
                merged[-1] = (merged[-1][0], span[1], span[2])
            else:
                merged.append(span)
        regions.extend(merged)
    return regions


class MappabilityScanner:
    """Periodic scanner mimicking the paper's kernel module (Figure 3).

    Call :meth:`sample` at workload-phase boundaries; :attr:`samples` holds
    (label, large_mappable_bytes, mid_mappable_bytes) tuples.
    """

    def __init__(self, aspace: AddressSpace) -> None:
        self.aspace = aspace
        self.samples: list[tuple[str, int, int]] = []

    def sample(self, label: str = "") -> tuple[int, int]:
        geometry = self.aspace.geometry
        large = mappable_bytes(self.aspace, geometry.top_level)
        mid = mappable_bytes(self.aspace, 1)
        self.samples.append((label, large, mid))
        return large, mid
