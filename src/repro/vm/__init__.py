"""Virtual-memory substrate: address spaces, page tables, mappability.

The analogue of Linux's ``mm`` layer.  Mappability — which virtual ranges are
long enough *and* aligned to take a 2MB/1GB page — is pure address
arithmetic, so this layer reproduces the paper's Section 4.3 analysis
exactly rather than approximately.
"""

from repro.vm.addrspace import VMA, AddressSpace
from repro.vm.pagetable import Mapping, MappingConflictError, PageTable
from repro.vm.mappability import classify_regions, mappable_bytes, mappable_ranges
from repro.vm.fault import candidate_page_sizes
from repro.vm.sampler import AccessBitSampler

__all__ = [
    "VMA",
    "AddressSpace",
    "Mapping",
    "PageTable",
    "MappingConflictError",
    "mappable_bytes",
    "mappable_ranges",
    "classify_regions",
    "candidate_page_sizes",
    "AccessBitSampler",
]
