"""Page-fault geometry helpers shared by all OS policies.

On a fault at ``va`` the handler must decide which page sizes *could* map the
faulting address: a size is a candidate iff the size-aligned region around
``va`` lies entirely inside the faulting VMA (the paper's two mappability
conditions) and none of that region is already mapped.  The policy layers in
:mod:`repro.core` then pick among the candidates (THP stops at its target
level, Trident prefers the largest declared level, 4KB-only ignores all).
"""

from __future__ import annotations

from repro.config import PageGeometry
from repro.vm.addrspace import VMA
from repro.vm.pagetable import PageTable


def region_fits_vma(va: int, page_size: int, vma: VMA, geometry: PageGeometry) -> bool:
    """True if the ``page_size``-aligned region around ``va`` fits in ``vma``."""
    start = geometry.align_down(va, page_size)
    return start >= vma.start and start + geometry.bytes_for(page_size) <= vma.end


def region_is_unmapped(
    va: int, page_size: int, table: PageTable, geometry: PageGeometry
) -> bool:
    """True if no mapping of any size exists inside the aligned region.

    Cheap: the page table's child counters answer "does this slot contain
    smaller mappings" in O(1); a conflict check covers same/larger sizes.
    """
    start = geometry.align_down(va, page_size)
    if table.translate(start) is not None:
        return False
    if page_size == 0:
        return True
    return not table.children_in_slot(page_size, table.vpn(start, page_size))


def candidate_page_sizes(
    va: int, vma: VMA, table: PageTable, geometry: PageGeometry
) -> list[int]:
    """Levels that could legally map a fresh fault at ``va``, largest first."""
    sizes = []
    for size in geometry.levels_desc:
        if region_fits_vma(va, size, vma, geometry) and region_is_unmapped(
            va, size, table, geometry
        ):
            sizes.append(size)
    return sizes
