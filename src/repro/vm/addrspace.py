"""Process virtual address spaces: VMAs and a first-fit mmap allocator.

An :class:`AddressSpace` models what matters for large-page mappability: the
set of mapped virtual ranges (VMAs) and how a workload's allocation pattern
fragments them.  Two behaviours in the paper hinge on this layer:

* pre-allocating workloads (XSBench, GUPS, Graph500) mmap a few huge ranges,
  so most of their space is 1GB-mappable from the first fault;
* incremental allocators (Redis, Memcached, SVM, Btree) grow their heap in
  small steps and interleave frees, so ranges end up misaligned/short and
  only promotion (or nothing) can ever give them 1GB pages.

The allocator is deliberately glibc/mmap-like: a linear top pointer plus
first-fit reuse of munmapped holes, with caller-controlled alignment —
base-page alignment by default, like real ``mmap``, which is exactly why
1GB-mappable ranges are scarcer than 2MB-mappable ones.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.config import PageGeometry


@dataclass(frozen=True)
class VMA:
    """One mapped virtual range, [start, end) in bytes."""

    start: int
    end: int
    name: str = "anon"

    def __post_init__(self) -> None:
        if self.start < 0 or self.end <= self.start:
            raise ValueError(f"bad VMA range [{self.start:#x}, {self.end:#x})")

    @property
    def length(self) -> int:
        return self.end - self.start

    def contains(self, addr: int) -> bool:
        return self.start <= addr < self.end


@dataclass
class _Hole:
    start: int
    end: int


class AddressSpace:
    """A process's virtual address space with an mmap-like allocator."""

    #: Default base of the mmap area (arbitrary, x86_64-flavoured).
    MMAP_BASE = 0x7000_0000_0000

    def __init__(self, geometry: PageGeometry, mmap_base: int | None = None) -> None:
        self.geometry = geometry
        base = self.MMAP_BASE if mmap_base is None else mmap_base
        if base % geometry.base_size:
            raise ValueError("mmap_base must be base-page aligned")
        self._top = base
        self._starts: list[int] = []  # sorted VMA start addresses
        self._vmas: dict[int, VMA] = {}
        self._holes: list[_Hole] = []  # sorted by start

    # -- queries ------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._vmas)

    def iter_vmas(self) -> list[VMA]:
        """All VMAs in address order."""
        return [self._vmas[s] for s in self._starts]

    def find_vma(self, addr: int) -> VMA | None:
        """The VMA containing ``addr``, or None."""
        i = bisect.bisect_right(self._starts, addr) - 1
        if i < 0:
            return None
        vma = self._vmas[self._starts[i]]
        return vma if vma.contains(addr) else None

    @property
    def mapped_bytes(self) -> int:
        return sum(v.length for v in self._vmas.values())

    def iter_extents(self) -> list[VMA]:
        """Maximal runs of adjacent same-name VMAs, as synthetic VMAs.

        Linux merges adjacent anonymous mappings into one VMA; an
        incrementally-grown heap is therefore *one* range for mappability
        purposes even though it was built from many small mmaps.  We keep
        the individual VMAs (so munmap of an original allocation stays
        trivial) and expose the merged view here — this is the view the
        fault handler and khugepaged scan.
        """
        extents: list[VMA] = []
        for vma in self.iter_vmas():
            if (
                extents
                and extents[-1].end == vma.start
                and extents[-1].name == vma.name
            ):
                extents[-1] = VMA(extents[-1].start, vma.end, vma.name)
            else:
                extents.append(VMA(vma.start, vma.end, vma.name))
        return extents

    def extent_of(self, addr: int) -> VMA | None:
        """The merged extent containing ``addr``, or None."""
        vma = self.find_vma(addr)
        if vma is None:
            return None
        start, end = vma.start, vma.end
        i = self._starts.index(vma.start)
        j = i
        while j > 0:
            prev = self._vmas[self._starts[j - 1]]
            if prev.end == start and prev.name == vma.name:
                start = prev.start
                j -= 1
            else:
                break
        j = i
        while j + 1 < len(self._starts):
            nxt = self._vmas[self._starts[j + 1]]
            if nxt.start == end and nxt.name == vma.name:
                end = nxt.end
                j += 1
            else:
                break
        return VMA(start, end, vma.name)

    # -- mmap/munmap ----------------------------------------------------------
    def mmap(
        self,
        length: int,
        name: str = "anon",
        align: int | None = None,
        fixed_at: int | None = None,
    ) -> VMA:
        """Map ``length`` bytes; returns the new VMA.

        ``length`` is rounded up to a whole number of base pages.  ``align``
        (default: base page size) constrains the start address.  ``fixed_at``
        places the mapping at an exact address (MAP_FIXED), failing if it
        overlaps an existing VMA.
        """
        if length <= 0:
            raise ValueError(f"length must be positive, got {length}")
        geometry = self.geometry
        length = geometry.align_up(length, 0) if length % geometry.base_size else length
        align = align or geometry.base_size
        if align % geometry.base_size:
            raise ValueError("align must be a multiple of the base page size")

        if fixed_at is not None:
            if fixed_at % align:
                raise ValueError(f"fixed_at {fixed_at:#x} not aligned to {align:#x}")
            start = fixed_at
            if self._overlaps(start, start + length):
                raise ValueError(
                    f"MAP_FIXED range [{start:#x}, {start + length:#x}) overlaps"
                )
            self._claim_from_holes(start, start + length)
            if start + length > self._top:
                self._top = start + length
        else:
            start = self._find_free(length, align)
        vma = VMA(start, start + length, name)
        self._insert(vma)
        return vma

    def munmap(self, start: int, length: int | None = None) -> VMA:
        """Unmap the VMA starting exactly at ``start``.

        Partial unmaps are not modelled (workload scripts free whole
        allocations, as ``free``/``munmap`` of an mmapped chunk does).
        Returns the removed VMA; its range becomes a reusable hole.
        """
        vma = self._vmas.get(start)
        if vma is None:
            raise ValueError(f"no VMA starts at {start:#x}")
        if length is not None and length != vma.length:
            raise ValueError(
                f"partial munmap not supported: VMA length {vma.length}, got {length}"
            )
        self._starts.remove(start)
        del self._vmas[start]
        self._add_hole(vma.start, vma.end)
        return vma

    # -- internals ------------------------------------------------------------
    def _insert(self, vma: VMA) -> None:
        bisect.insort(self._starts, vma.start)
        self._vmas[vma.start] = vma

    def _overlaps(self, start: int, end: int) -> bool:
        i = bisect.bisect_right(self._starts, start) - 1
        if i >= 0 and self._vmas[self._starts[i]].end > start:
            return True
        if i + 1 < len(self._starts) and self._starts[i + 1] < end:
            return True
        return False

    def _find_free(self, length: int, align: int) -> int:
        # First fit among holes, then bump the top pointer.
        for idx, hole in enumerate(self._holes):
            start = -(-hole.start // align) * align  # align up
            if start + length <= hole.end:
                self._consume_hole(idx, start, start + length)
                return start
        start = -(-self._top // align) * align
        self._top = start + length
        return start

    def _add_hole(self, start: int, end: int) -> None:
        # Insert and merge with adjacent holes.
        i = bisect.bisect_left([h.start for h in self._holes], start)
        self._holes.insert(i, _Hole(start, end))
        merged: list[_Hole] = []
        for hole in self._holes:
            if merged and hole.start <= merged[-1].end:
                merged[-1].end = max(merged[-1].end, hole.end)
            else:
                merged.append(hole)
        self._holes = merged

    def _consume_hole(self, idx: int, start: int, end: int) -> None:
        hole = self._holes.pop(idx)
        remnants = []
        if hole.start < start:
            remnants.append(_Hole(hole.start, start))
        if end < hole.end:
            remnants.append(_Hole(end, hole.end))
        for r in reversed(remnants):
            self._holes.insert(idx, r)

    def _claim_from_holes(self, start: int, end: int) -> None:
        for idx, hole in enumerate(self._holes):
            if hole.start <= start and end <= hole.end:
                self._consume_hole(idx, start, end)
                return
        # Range may be beyond the top pointer; nothing to claim then.
