"""Global configuration objects for the Trident reproduction.

The simulator is parameterised by a small set of dataclasses:

* :class:`PageGeometry` — an ordered tuple of :class:`PageLevel` entries
  (N levels, smallest to largest), from which every size relation the
  paper uses (alignment, mappability, buddy orders, region counters, TLB
  tag shifts) is derived.  The canonical instantiations are the x86-64
  three-tier 4KB / 2MB / 1GB family, but the geometry is declarative:
  RISC-V SVNAPOT (a *four*-level 4K/64K/2M/1G ladder) and ARM 16K-granule
  configurations are expressed as data, not code (see
  :mod:`repro.geometries`).
* :class:`MachineConfig` — physical memory size, TLB shapes (Table 1 of
  the paper) and page-walk parameters.
* :class:`CostModel` — the latency/bandwidth constants behind the paper's
  wall-clock claims (1GB fault 400 ms -> 2.7 ms with async zero-fill;
  copy-based 1GB promotion 600 ms vs ~500 us with a batched hypercall).

Experiments usually run a *scaled* geometry so that a full figure
regenerates in seconds.  Scaling shrinks the level orders and the machine
memory by the same factor; every claim in the paper is about ratios
(page-size reach vs. footprint, fragmentation vs. contiguity), which
scaling preserves.

Page sizes are identified by their **level index**: 0 is the base page,
``n_levels - 1`` the largest declared level.  For three-tier geometries
the indices coincide with the historical ``PageSize.BASE/MID/LARGE``
constants (0/1/2), which survive only as a deprecated shim (see
:class:`PageSize`).
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class TLBConfig:
    """One TLB structure: ``entries`` total, ``ways``-associative.

    ``ways == entries`` means fully associative (the Skylake 1GB L1 TLB).
    """

    entries: int
    ways: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("TLB entries and ways must be positive")
        if self.entries % self.ways:
            raise ValueError(
                f"entries ({self.entries}) must be a multiple of ways ({self.ways})"
            )

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class TLBSection:
    """Per-level TLB section: a private L1 plus the L2 group it feeds.

    ``l2`` names an entry of the geometry's ``l2_groups`` (several levels
    may share one group, modelling Skylake's shared 4K/2M sTLB), or is
    ``None`` for levels with no second-level coverage.
    """

    l1: TLBConfig
    l2: str | None = "shared"


@dataclass(frozen=True)
class PageLevel:
    """One declared page size, ``order`` power-of-two base frames big.

    * ``name`` — the level's identity in policy code and docs ("base",
      "mid", "napot", ...).
    * ``label`` — the observability label ("4KB", "2MB", "1GB"); metric
      and span labels are derived from here, never hardcoded.
    * ``order`` — log2 base frames per page; the buddy order of one page.
    * ``promotable`` — whether promotion may assemble pages at this level
      (the base level never is).
    * ``thp_target`` — marks the level THP-class policies promote to;
      exactly one non-base level may carry it (defaults to level 1).
    * ``tlb`` — optional per-level TLB section; when every level carries
      one, the hierarchy is built from the geometry instead of the legacy
      three-tier :class:`TLBHierarchyConfig` fields.
    * ``levels_skipped`` — radix levels a walk for this size skips
      (``None`` means "level index", the x86 ladder: 4KB walks all 4
      levels, 2MB skips 1, 1GB skips 2).  SVNAPOT's 64KB pages are NAPOT
      PTEs and skip none.
    * ``leaf_cached_prob`` — probability the walk's leaf entry sits in a
      paging-structure cache (``None`` defers to the legacy 3-level
      :class:`WalkConfig` constants).
    """

    name: str
    label: str
    order: int
    promotable: bool = True
    thp_target: bool = False
    tlb: TLBSection | None = None
    levels_skipped: int | None = None
    leaf_cached_prob: float | None = None

    def __post_init__(self) -> None:
        if self.order < 0:
            raise ValueError(f"level order must be >= 0, got {self.order}")
        if not self.name:
            raise ValueError("page level needs a name")
        if not self.label:
            raise ValueError("page level needs a label")


def _three_tier_levels(mid_order: int, large_order: int) -> tuple[PageLevel, ...]:
    """The canonical x86-class ladder used by the legacy constructor."""
    return (
        PageLevel(name="base", label="4KB", order=0, promotable=False),
        PageLevel(name="mid", label="2MB", order=mid_order, thp_target=True),
        PageLevel(name="large", label="1GB", order=large_order),
    )


@dataclass(frozen=True)
class PageGeometry:
    """An ordered ladder of page sizes, smallest to largest.

    Two construction styles:

    * legacy three-tier: ``PageGeometry(base_shift, mid_order,
      large_order)`` — the real x86-64 geometry is
      ``PageGeometry(12, 9, 18)``: 4KB base, 2MB mid, 1GB large;
    * declarative: ``PageGeometry(base_shift=12, levels=(...))`` with an
      explicit :class:`PageLevel` tuple of any length >= 2.

    ``base_shift`` is log2 of the base page size in bytes.  Each level's
    ``order`` is log2 of the number of base pages per page at that level;
    level 0 must have order 0 and orders must be strictly increasing.
    Page sizes are identified everywhere by level index (0 .. n_levels-1).
    """

    base_shift: int = 12
    mid_order: int | None = 9
    large_order: int | None = 18
    levels: tuple[PageLevel, ...] | None = None
    l2_groups: tuple[tuple[str, TLBConfig], ...] = ()
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.base_shift <= 0:
            raise ValueError(f"base_shift must be positive, got {self.base_shift}")
        if self.levels is None:
            mid, large = self.mid_order, self.large_order
            if mid is None or large is None:
                raise ValueError(
                    "need either an explicit levels tuple or both "
                    "mid_order and large_order"
                )
            if not 0 < mid < large:
                raise ValueError(
                    "need 0 < mid_order < large_order, got "
                    f"mid_order={mid} large_order={large}"
                )
            object.__setattr__(self, "levels", _three_tier_levels(mid, large))
        levels = tuple(self.levels)
        object.__setattr__(self, "levels", levels)
        if len(levels) < 2:
            raise ValueError("a geometry needs at least two levels")
        if levels[0].order != 0:
            raise ValueError(
                f"level 0 must have order 0, got {levels[0].order}"
            )
        orders = [lvl.order for lvl in levels]
        if any(b <= a for a, b in zip(orders, orders[1:])):
            raise ValueError(
                f"level orders must be strictly increasing, got {orders}"
            )
        names = [lvl.name for lvl in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"level names must be unique, got {names}")
        if levels[0].promotable:
            raise ValueError("the base level cannot be promotable")
        thp_flags = [i for i, lvl in enumerate(levels) if lvl.thp_target]
        if len(thp_flags) > 1:
            raise ValueError(
                f"at most one level may be the THP target, got {thp_flags}"
            )
        sections = [lvl.tlb for lvl in levels]
        if any(s is not None for s in sections):
            if any(s is None for s in sections):
                raise ValueError(
                    "either every level declares a TLB section or none does"
                )
            groups = dict(self.l2_groups)
            for lvl in levels:
                if lvl.tlb.l2 is not None and lvl.tlb.l2 not in groups:
                    raise ValueError(
                        f"level {lvl.name!r} references undeclared L2 group "
                        f"{lvl.tlb.l2!r}"
                    )
        # Normalise the derived legacy fields so equality keeps working
        # across construction styles.
        object.__setattr__(
            self, "mid_order", levels[1].order if len(levels) > 2 else None
        )
        object.__setattr__(self, "large_order", levels[-1].order)

    # -- level indexing --------------------------------------------------
    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def top_level(self) -> int:
        """Index of the largest declared level."""
        return len(self.levels) - 1

    @property
    def all_levels(self) -> tuple[int, ...]:
        """Level indices, smallest page first."""
        return tuple(range(len(self.levels)))

    @property
    def levels_desc(self) -> tuple[int, ...]:
        """Level indices, largest page first (translate/unmap precedence)."""
        return tuple(range(len(self.levels) - 1, -1, -1))

    @property
    def promotable_levels(self) -> tuple[int, ...]:
        """Indices promotion may target, smallest first."""
        return tuple(
            i for i, lvl in enumerate(self.levels) if lvl.promotable
        )

    @property
    def thp_level(self) -> int:
        """The level THP-class policies map and promote to."""
        for i, lvl in enumerate(self.levels):
            if lvl.thp_target:
                return i
        return 1

    def name_of(self, level: int) -> str:
        return self.levels[level].name

    def label_for(self, level: int) -> str:
        """Observability label of ``level`` ("4KB", "2MB", "1GB", ...)."""
        return self.levels[level].label

    @property
    def labels(self) -> tuple[str, ...]:
        return tuple(lvl.label for lvl in self.levels)

    # -- sizes in bytes -------------------------------------------------
    @property
    def base_size(self) -> int:
        """Base page size in bytes (4KB on x86)."""
        return 1 << self.base_shift

    @property
    def mid_size(self) -> int:
        """Page size in bytes at level 1 (2MB on x86)."""
        return self.bytes_for(1)

    @property
    def large_size(self) -> int:
        """Page size in bytes at the top level (1GB on x86)."""
        return self.bytes_for(self.top_level)

    # -- sizes in base-page frames --------------------------------------
    @property
    def frames_per_mid(self) -> int:
        return 1 << self.levels[1].order

    @property
    def frames_per_large(self) -> int:
        return 1 << self.levels[-1].order

    @property
    def mids_per_large(self) -> int:
        return 1 << (self.levels[-1].order - self.levels[1].order)

    def frames_for(self, level: int) -> int:
        """Number of base frames covered by one page at ``level``."""
        return 1 << self.levels[level].order

    def bytes_for(self, level: int) -> int:
        return self.frames_for(level) << self.base_shift

    def order_for(self, level: int) -> int:
        """Buddy order of one page at ``level`` (base pages = order 0)."""
        return self.levels[level].order

    def shift_for(self, level: int) -> int:
        """log2 bytes of one page at ``level`` — the TLB tag shift."""
        return self.base_shift + self.levels[level].order

    def align_down(self, addr: int, level: int) -> int:
        size = self.bytes_for(level)
        return addr - (addr % size)

    def align_up(self, addr: int, level: int) -> int:
        size = self.bytes_for(level)
        return (addr + size - 1) // size * size

    def is_aligned(self, addr: int, level: int) -> bool:
        return addr % self.bytes_for(level) == 0

    def describe(self) -> str:
        """One line per level, for ``repro geometry describe``."""
        rows = []
        for i, lvl in enumerate(self.levels):
            flags = []
            if lvl.promotable:
                flags.append("promotable")
            if i == self.thp_level and i != 0:
                flags.append("thp-target")
            rows.append(
                f"  level {i}: {lvl.name:8s} {lvl.label:>6s}  "
                f"order {lvl.order:2d}  {self.bytes_for(i):>12,} B"
                f"{'  [' + ', '.join(flags) + ']' if flags else ''}"
            )
        return "\n".join(rows)


#: Real x86-64 geometry: 4KB / 2MB / 1GB.
X86_GEOMETRY = PageGeometry(base_shift=12, mid_order=9, large_order=18)

#: Scaled geometry for fast experiments: 4KB base, 64KB "2MB-class" mid,
#: 4MB "1GB-class" large.  Ratios between levels shrink from 512x to 16/64x,
#: which keeps buddy/TLB dynamics intact while making a "63.5GB" workload
#: simulate as ~254MB of address space.
SCALED_GEOMETRY = PageGeometry(base_shift=12, mid_order=4, large_order=10)

#: Scale factor mapping paper footprints (bytes) onto SCALED_GEOMETRY bytes.
#: large_size shrinks 1GB -> 4MB, i.e. by 256x; footprints shrink alike so a
#: workload still spans the same *number* of large pages as on real hardware.
SCALE_FACTOR = X86_GEOMETRY.large_size // SCALED_GEOMETRY.large_size

#: Core clock of the paper's Skylake testbed (Xeon Gold 5118, 2.3 GHz);
#: converts translation cycles into nanoseconds on the simulated-time axis.
FREQ_GHZ = 2.3


# -- deprecated three-tier shim -----------------------------------------

_ACTIVE_GEOMETRY: PageGeometry = SCALED_GEOMETRY


def set_active_geometry(geometry: PageGeometry) -> None:
    """Record the geometry the most recent System was built with.

    Only the deprecated :class:`PageSize` shim reads this — migrated code
    threads the geometry object explicitly.
    """
    global _ACTIVE_GEOMETRY
    _ACTIVE_GEOMETRY = geometry


def active_geometry() -> PageGeometry:
    return _ACTIVE_GEOMETRY


_PAGESIZE_MSG = (
    "PageSize.{attr} is deprecated; page sizes are level indices of the "
    "run's PageGeometry — use geometry.all_levels / geometry.top_level / "
    "geometry.name_of / geometry.label_for instead (lint rule TRD003)"
)


class _PageSizeMeta(type):
    """Metaclass turning ``PageSize.X`` class-attribute reads into
    deprecation warnings resolved against the active geometry.

    Mirrors the ``TouchResult`` raw-float shim: one warning per call
    site (never per access), attributed to the consumer via stacklevel.
    """

    #: call sites (filename, lineno) that already warned
    _warned_sites: set[tuple[str, int]] = set()

    def _warn(cls, attr: str) -> None:
        frame = sys._getframe(2)  # _warn <- property fget <- consumer
        site = (frame.f_code.co_filename, frame.f_lineno)
        if site in _PageSizeMeta._warned_sites:
            return
        _PageSizeMeta._warned_sites.add(site)
        warnings.warn(
            _PAGESIZE_MSG.format(attr=attr), DeprecationWarning, stacklevel=3
        )

    @property
    def BASE(cls) -> int:
        cls._warn("BASE")
        return 0

    @property
    def MID(cls) -> int:
        cls._warn("MID")
        return 1

    @property
    def LARGE(cls) -> int:
        cls._warn("LARGE")
        return active_geometry().top_level

    @property
    def ALL(cls) -> tuple[int, ...]:
        cls._warn("ALL")
        return active_geometry().all_levels

    @property
    def NAMES(cls) -> dict[int, str]:
        cls._warn("NAMES")
        geo = active_geometry()
        return {i: geo.name_of(i) for i in geo.all_levels}

    @property
    def X86_NAMES(cls) -> dict[int, str]:
        cls._warn("X86_NAMES")
        geo = active_geometry()
        return {i: geo.label_for(i) for i in geo.all_levels}


class PageSize(metaclass=_PageSizeMeta):
    """Deprecated three-tier page-size aliases.

    Page sizes are now plain level indices of the run's
    :class:`PageGeometry`; ``BASE``/``MID``/``LARGE`` resolve to
    0 / 1 / ``top_level`` of the *active* geometry so downstream scripts
    keep working for one release.  Every attribute read emits one
    :class:`DeprecationWarning` per call site (mirroring the
    ``TouchResult`` shim).
    """

    @classmethod
    def name_of(cls, size: int) -> str:
        type(cls)._warn(cls, "name_of")
        return active_geometry().name_of(size)

    @classmethod
    def reset_warned_sites(cls) -> None:
        """Forget which call sites warned (test isolation hook)."""
        _PageSizeMeta._warned_sites.clear()


@dataclass(frozen=True)
class TLBHierarchyConfig:
    """Per-core TLB shapes.  Defaults follow Table 1 (Skylake, data side).

    * L1 dTLB: 64-entry 4-way for 4KB; 32-entry 4-way for 2MB; 4-entry fully
      associative for 1GB.
    * L2 sTLB: 1536-entry 12-way shared by 4KB/2MB; 16-entry 4-way for 1GB.

    ``l2_mid`` optionally splits mid translations out of the shared L2 into
    their own structure.  Real Skylake shares the array; the *scaled*
    experiment geometry shrinks mid pages by a different factor than large
    pages, so preserving the paper's reach-to-footprint ratios requires an
    independently-sized mid L2 (see SCALED_TLB below).

    These three-tier fields only cover 3-level geometries; N-level
    geometries embed a :class:`TLBSection` per :class:`PageLevel` instead,
    and :meth:`resolved` prefers those when present.
    """

    l1_base: TLBConfig = TLBConfig(64, 4)
    l1_mid: TLBConfig = TLBConfig(32, 4)
    l1_large: TLBConfig = TLBConfig(4, 4)
    l2_shared: TLBConfig = TLBConfig(1536, 12)
    l2_large: TLBConfig = TLBConfig(16, 4)
    l2_mid: TLBConfig | None = None

    def resolved(
        self, geometry: PageGeometry
    ) -> tuple[tuple[TLBSection, ...], dict[str, TLBConfig]]:
        """Per-level sections and L2 group configs for ``geometry``.

        Geometry-embedded sections win; otherwise the legacy three-tier
        fields are mapped onto a 3-level geometry exactly as before the
        N-level redesign (so x86-family hierarchies build identically).
        """
        if all(lvl.tlb is not None for lvl in geometry.levels):
            return (
                tuple(lvl.tlb for lvl in geometry.levels),
                dict(geometry.l2_groups),
            )
        if geometry.n_levels != 3:
            raise ValueError(
                f"geometry {geometry.name or geometry.labels} has "
                f"{geometry.n_levels} levels but no per-level TLB sections; "
                "the legacy TLBHierarchyConfig fields only describe 3-level "
                "geometries"
            )
        groups: dict[str, TLBConfig] = {
            "shared": self.l2_shared,
            "large": self.l2_large,
        }
        mid_group = "shared"
        if self.l2_mid is not None:
            groups["mid"] = self.l2_mid
            mid_group = "mid"
        sections = (
            TLBSection(self.l1_base, "shared"),
            TLBSection(self.l1_mid, mid_group),
            TLBSection(self.l1_large, "large"),
        )
        return sections, groups


#: TLB preset for SCALED_GEOMETRY, preserving each page size's
#: TLB-reach-to-footprint ratio from the Skylake testbed.  Footprints shrink
#: by 256x (the large-page ratio); base pages do not shrink at all, so base
#: structures shrink by 8x (a partial compensation: the full 256x would
#: leave no structure at all, and base-heavy configurations sit far beyond
#: reach under either choice); mid pages shrink 32x, so mid structures
#: shrink by the residual 8x; large-page counts are scale-invariant, so the
#: 1GB structures keep their real sizes.
SCALED_TLB = TLBHierarchyConfig(
    l1_base=TLBConfig(16, 4),
    l1_mid=TLBConfig(4, 4),
    l1_large=TLBConfig(4, 4),
    l2_shared=TLBConfig(192, 12),
    l2_large=TLBConfig(16, 4),
    l2_mid=TLBConfig(192, 12),
)


@dataclass(frozen=True)
class WalkConfig:
    """Page-walk cost parameters.

    A native walk for a base page touches ``levels_base`` page-table levels
    (4 on x86-64); mid pages skip the last level (3), large pages skip two
    (2).  Two caching effects shape the cost:

    * ``pwc_hit_rate`` — probability that every level *above* the leaf is in
      a paging-structure cache (PML4E/PDPTE/PDE caches), leaving only the
      leaf access.
    * ``leaf_cached_prob`` — for mid and large pages the *leaf itself* is a
      PDE/PDPTE, which Intel's paging-structure caches also hold; a hit
      makes the whole walk (nearly) free.  PTEs (base leaves) are never
      cached.  This is the micro-architectural reason 1GB walks are much
      cheaper than 2MB walks on real hardware, and the effect the paper's
      Section 2 "quickens individual walks" point rests on.

    ``mem_access_cycles`` is the average cost of one walk memory access —
    page-table entries of big random working sets mostly miss the data
    caches, so this is DRAM-class latency.

    Per-level overrides for N-level geometries come from the
    :class:`PageLevel` entries themselves (``levels_skipped``,
    ``leaf_cached_prob``); :meth:`for_geometry` bakes them into the
    per-level tuples below.  SVNAPOT 64KB pages, for instance, are NAPOT
    PTEs: a full-depth walk whose leaf is never structure-cached.
    """

    levels_base: int = 4
    mem_access_cycles: int = 160
    pwc_hit_rate: float = 0.80
    #: nested (2D) walks hit the paging-structure caches harder: most of the
    #: up-to-24 accesses are gPA-side upper-level entries with high reuse
    nested_pwc_hit_rate: float = 0.96
    leaf_cached_prob_mid: float = 0.60
    leaf_cached_prob_large: float = 0.85
    l2_tlb_hit_cycles: int = 7
    #: radix levels skipped per geometry level; None = "level index"
    #: (the x86 ladder: 4KB skips 0, 2MB skips 1, 1GB skips 2)
    levels_skipped: tuple[int, ...] | None = None
    #: leaf structure-cache hit probability per geometry level; None =
    #: the legacy three-tier constants above
    leaf_cached_probs: tuple[float, ...] | None = None

    def for_geometry(self, geometry: PageGeometry) -> "WalkConfig":
        """Bake any per-level overrides the geometry declares into tuples.

        Identity for geometries without per-level walk overrides — the
        x86 family keeps the exact legacy behaviour.
        """
        if self.levels_skipped is not None or self.leaf_cached_probs is not None:
            return self
        has_skips = any(
            lvl.levels_skipped is not None for lvl in geometry.levels
        )
        has_probs = any(
            lvl.leaf_cached_prob is not None for lvl in geometry.levels
        )
        if not has_skips and not has_probs and geometry.n_levels == 3:
            return self
        skipped = tuple(
            lvl.levels_skipped if lvl.levels_skipped is not None else i
            for i, lvl in enumerate(geometry.levels)
        )
        probs = tuple(
            lvl.leaf_cached_prob
            if lvl.leaf_cached_prob is not None
            else self._legacy_leaf_prob(i)
            for i, lvl in enumerate(geometry.levels)
        )
        return replace(self, levels_skipped=skipped, leaf_cached_probs=probs)

    def _legacy_leaf_prob(self, level: int) -> float:
        if level == 0:
            return 0.0
        if level == 1:
            return self.leaf_cached_prob_mid
        return self.leaf_cached_prob_large

    def leaf_cached_prob(self, level: int) -> float:
        if self.leaf_cached_probs is not None:
            return self.leaf_cached_probs[level]
        return {
            0: 0.0,
            1: self.leaf_cached_prob_mid,
            2: self.leaf_cached_prob_large,
        }[level]

    def levels_for(self, level: int) -> int:
        """Page-table levels one walk for ``level`` traverses."""
        if self.levels_skipped is not None:
            return self.levels_base - self.levels_skipped[level]
        return self.levels_base - level  # x86: top level skips 2

    def native_walk_accesses(self, level: int) -> int:
        """Memory accesses for one native page walk (4 / 3 / 2 on x86)."""
        return self.levels_for(level)

    def nested_walk_accesses(self, guest_level: int, host_level: int) -> int:
        """Memory accesses for one nested (2D) walk.

        With nG guest levels and nH host levels the 2D walk costs
        ``(nG + 1) * (nH + 1) - 1`` accesses: 24 for 4K+4K, 15 for 2M+2M,
        8 for 1G+1G — the numbers quoted in the paper's Section 2.
        """
        n_g = self.levels_for(guest_level)
        n_h = self.levels_for(host_level)
        return (n_g + 1) * (n_h + 1) - 1


@dataclass(frozen=True)
class CostModel:
    """Latency constants for OS work, in nanoseconds / bytes-per-ns.

    Calibrated to the paper's quoted numbers:

    * zero-fill bandwidth ~2.6 GB/s  => zeroing 1GB ~ 400 ms (sync 1GB fault)
    * mapped-fault fixed cost 2.7 ms for an (already-zeroed) 1GB fault
    * copy bandwidth ~1.8 GB/s       => copying 1GB ~ 600 ms (promotion)
    * hypercall 300 ns; per-page mapping exchange ~57 us unbatched
      (512 exchanges ~ 30 ms), ~0.97 us batched (512 ~ 500 us)
    """

    zero_bandwidth_bytes_per_ns: float = 2.6
    copy_bandwidth_bytes_per_ns: float = 1.8
    fault_fixed_ns: float = 1_000.0
    large_fault_mapped_ns: float = 2_700_000.0
    pte_update_ns: float = 150.0
    hypercall_ns: float = 300.0
    exchange_unbatched_ns: float = 57_000.0
    exchange_batched_ns: float = 970.0
    compaction_scan_per_frame_ns: float = 30.0

    def zero_ns(self, nbytes: int) -> float:
        """Time to zero ``nbytes`` of memory."""
        return nbytes / self.zero_bandwidth_bytes_per_ns

    def copy_ns(self, nbytes: int) -> float:
        """Time to copy ``nbytes`` of memory."""
        return nbytes / self.copy_bandwidth_bytes_per_ns

    def scaled_for(self, geometry: "PageGeometry") -> "CostModel":
        """Cost model whose *totals* stay real-time under a scaled geometry.

        One scaled operation aggregates many real operations: a scaled large
        page is one real 1GB page, but a scaled base page stands for
        ``byte_factor`` real 4KB pages and a scaled mid page for
        ``mid_factor`` real 2MB pages.  Dividing the byte-proportional
        bandwidths by ``byte_factor`` makes the total OS time of any
        operation mix over a footprint equal to the real total (the mix
        covers the same real bytes); per-mid-operation constants (hypercall
        exchanges, PTE updates) scale by ``mid_factor``.  Per-real-operation
        constants (the pooled 1GB fault latency, the hypercall world switch)
        are unchanged.  For the real x86 geometry this is the identity.
        """
        byte_factor = X86_GEOMETRY.large_size // geometry.large_size
        if byte_factor <= 1:
            return self
        mid_factor = max(
            1, X86_GEOMETRY.mids_per_large // geometry.mids_per_large
        )
        return replace(
            self,
            zero_bandwidth_bytes_per_ns=self.zero_bandwidth_bytes_per_ns
            / byte_factor,
            copy_bandwidth_bytes_per_ns=self.copy_bandwidth_bytes_per_ns
            / byte_factor,
            compaction_scan_per_frame_ns=self.compaction_scan_per_frame_ns
            * byte_factor,
            pte_update_ns=self.pte_update_ns * mid_factor,
            exchange_batched_ns=self.exchange_batched_ns * mid_factor,
            exchange_unbatched_ns=self.exchange_unbatched_ns * mid_factor,
        )


@dataclass(frozen=True)
class MachineConfig:
    """A simulated machine: physical memory + TLB + walk + cost parameters."""

    geometry: PageGeometry = SCALED_GEOMETRY
    total_frames: int = 1 << 16  # 256MB at 4KB frames under SCALED_GEOMETRY
    tlb: TLBHierarchyConfig = field(default_factory=TLBHierarchyConfig)
    walk: WalkConfig = field(default_factory=WalkConfig)
    cost: CostModel = field(default_factory=CostModel)
    #: Fraction of physical memory reserved for unmovable kernel allocations
    #: sprinkled across regions at boot (inodes, DMA buffers, ...).
    kernel_unmovable_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.total_frames <= 0:
            raise ValueError("total_frames must be positive")
        if self.total_frames % self.geometry.frames_per_large:
            raise ValueError(
                "total_frames must be a whole number of large regions: "
                f"{self.total_frames} % {self.geometry.frames_per_large} != 0"
            )
        # Bake geometry-declared walk overrides in exactly once, so every
        # consumer of machine.walk sees the per-level tuples.
        object.__setattr__(self, "walk", self.walk.for_geometry(self.geometry))

    @property
    def total_bytes(self) -> int:
        return self.total_frames * self.geometry.base_size

    @property
    def n_large_regions(self) -> int:
        return self.total_frames // self.geometry.frames_per_large

    def scaled(self, total_frames: int) -> "MachineConfig":
        """A copy of this config with a different memory size."""
        return replace(self, total_frames=total_frames)


def default_machine(
    total_large_regions: int = 64, geometry: PageGeometry = SCALED_GEOMETRY
) -> MachineConfig:
    """A machine with ``total_large_regions`` large-page-sized regions.

    The paper's testbed has 384GB / 1GB = 384 regions per machine and 192 per
    socket; 64 scaled regions keeps single-figure runs fast while leaving
    room for the same fragmentation dynamics.  Scaled geometries get the
    reach-preserving SCALED_TLB; the real x86 geometry keeps Skylake shapes.
    """
    tlb = TLBHierarchyConfig() if geometry == X86_GEOMETRY else SCALED_TLB
    return MachineConfig(
        geometry=geometry,
        total_frames=total_large_regions * geometry.frames_per_large,
        tlb=tlb,
        cost=CostModel().scaled_for(geometry),
    )
