"""Global configuration objects for the Trident reproduction.

Three dataclasses parameterise the whole simulator:

* :class:`PageGeometry` — the three page sizes (base / mid / large, the
  analogues of 4KB / 2MB / 1GB on x86-64) expressed as power-of-two frame
  counts, so every size relation used by the paper (alignment, mappability,
  buddy orders, region counters) is derived from one place.
* :class:`MachineConfig` — physical memory size, TLB shapes (Table 1 of the
  paper) and page-walk parameters.
* :class:`CostModel` — the latency/bandwidth constants behind the paper's
  wall-clock claims (1GB fault 400 ms -> 2.7 ms with async zero-fill;
  copy-based 1GB promotion 600 ms vs ~500 us with a batched hypercall).

Experiments usually run a *scaled* geometry so that a full figure regenerates
in seconds.  Scaling shrinks the mid/large orders and the machine memory by
the same factor; every claim in the paper is about ratios (page-size reach
vs. footprint, fragmentation vs. contiguity), which scaling preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class PageGeometry:
    """The three page sizes available to the policies.

    ``base_shift`` is log2 of the base page size in bytes.  ``mid_order`` and
    ``large_order`` are log2 of the number of *base pages* per mid page and
    per large page respectively.  The real x86-64 geometry is
    ``PageGeometry(12, 9, 18)``: 4KB base, 2MB mid, 1GB large.
    """

    base_shift: int = 12
    mid_order: int = 9
    large_order: int = 18

    def __post_init__(self) -> None:
        if not 0 < self.mid_order < self.large_order:
            raise ValueError(
                "need 0 < mid_order < large_order, got "
                f"mid_order={self.mid_order} large_order={self.large_order}"
            )
        if self.base_shift <= 0:
            raise ValueError(f"base_shift must be positive, got {self.base_shift}")

    # -- sizes in bytes -------------------------------------------------
    @property
    def base_size(self) -> int:
        """Base page size in bytes (4KB on x86)."""
        return 1 << self.base_shift

    @property
    def mid_size(self) -> int:
        """Mid page size in bytes (2MB on x86)."""
        return self.base_size << self.mid_order

    @property
    def large_size(self) -> int:
        """Large page size in bytes (1GB on x86)."""
        return self.base_size << self.large_order

    # -- sizes in base-page frames --------------------------------------
    @property
    def frames_per_mid(self) -> int:
        return 1 << self.mid_order

    @property
    def frames_per_large(self) -> int:
        return 1 << self.large_order

    @property
    def mids_per_large(self) -> int:
        return 1 << (self.large_order - self.mid_order)

    def frames_for(self, page_size: "PageSize") -> int:
        """Number of base frames covered by one page of ``page_size``."""
        return {
            PageSize.BASE: 1,
            PageSize.MID: self.frames_per_mid,
            PageSize.LARGE: self.frames_per_large,
        }[page_size]

    def bytes_for(self, page_size: "PageSize") -> int:
        return self.frames_for(page_size) * self.base_size

    def order_for(self, page_size: "PageSize") -> int:
        """Buddy order of one page of ``page_size`` (base pages = order 0)."""
        return {
            PageSize.BASE: 0,
            PageSize.MID: self.mid_order,
            PageSize.LARGE: self.large_order,
        }[page_size]

    def align_down(self, addr: int, page_size: "PageSize") -> int:
        size = self.bytes_for(page_size)
        return addr - (addr % size)

    def align_up(self, addr: int, page_size: "PageSize") -> int:
        size = self.bytes_for(page_size)
        return (addr + size - 1) // size * size

    def is_aligned(self, addr: int, page_size: "PageSize") -> bool:
        return addr % self.bytes_for(page_size) == 0


class PageSize:
    """Symbolic page-size names; values order smallest -> largest.

    Implemented as a tiny int-valued enum-alike so it sorts naturally and is
    cheap in hot loops (the TLB simulator compares millions of these).
    """

    BASE = 0  # 4KB on x86
    MID = 1  # 2MB on x86
    LARGE = 2  # 1GB on x86

    ALL = (BASE, MID, LARGE)
    NAMES = {BASE: "base", MID: "mid", LARGE: "large"}
    X86_NAMES = {BASE: "4KB", MID: "2MB", LARGE: "1GB"}

    @classmethod
    def name_of(cls, size: int) -> str:
        return cls.NAMES[size]


#: Real x86-64 geometry: 4KB / 2MB / 1GB.
X86_GEOMETRY = PageGeometry(base_shift=12, mid_order=9, large_order=18)

#: Scaled geometry for fast experiments: 4KB base, 64KB "2MB-class" mid,
#: 4MB "1GB-class" large.  Ratios between levels shrink from 512x to 16/64x,
#: which keeps buddy/TLB dynamics intact while making a "63.5GB" workload
#: simulate as ~254MB of address space.
SCALED_GEOMETRY = PageGeometry(base_shift=12, mid_order=4, large_order=10)

#: Scale factor mapping paper footprints (bytes) onto SCALED_GEOMETRY bytes.
#: large_size shrinks 1GB -> 4MB, i.e. by 256x; footprints shrink alike so a
#: workload still spans the same *number* of large pages as on real hardware.
SCALE_FACTOR = X86_GEOMETRY.large_size // SCALED_GEOMETRY.large_size

#: Core clock of the paper's Skylake testbed (Xeon Gold 5118, 2.3 GHz);
#: converts translation cycles into nanoseconds on the simulated-time axis.
FREQ_GHZ = 2.3


@dataclass(frozen=True)
class TLBConfig:
    """One TLB structure: ``entries`` total, ``ways``-associative.

    ``ways == entries`` means fully associative (the Skylake 1GB L1 TLB).
    """

    entries: int
    ways: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("TLB entries and ways must be positive")
        if self.entries % self.ways:
            raise ValueError(
                f"entries ({self.entries}) must be a multiple of ways ({self.ways})"
            )

    @property
    def sets(self) -> int:
        return self.entries // self.ways


@dataclass(frozen=True)
class TLBHierarchyConfig:
    """Per-core TLB shapes.  Defaults follow Table 1 (Skylake, data side).

    * L1 dTLB: 64-entry 4-way for 4KB; 32-entry 4-way for 2MB; 4-entry fully
      associative for 1GB.
    * L2 sTLB: 1536-entry 12-way shared by 4KB/2MB; 16-entry 4-way for 1GB.

    ``l2_mid`` optionally splits mid translations out of the shared L2 into
    their own structure.  Real Skylake shares the array; the *scaled*
    experiment geometry shrinks mid pages by a different factor than large
    pages, so preserving the paper's reach-to-footprint ratios requires an
    independently-sized mid L2 (see SCALED_TLB below).
    """

    l1_base: TLBConfig = TLBConfig(64, 4)
    l1_mid: TLBConfig = TLBConfig(32, 4)
    l1_large: TLBConfig = TLBConfig(4, 4)
    l2_shared: TLBConfig = TLBConfig(1536, 12)
    l2_large: TLBConfig = TLBConfig(16, 4)
    l2_mid: TLBConfig | None = None


#: TLB preset for SCALED_GEOMETRY, preserving each page size's
#: TLB-reach-to-footprint ratio from the Skylake testbed.  Footprints shrink
#: by 256x (the large-page ratio); base pages do not shrink at all, so base
#: structures shrink by 8x (a partial compensation: the full 256x would
#: leave no structure at all, and base-heavy configurations sit far beyond
#: reach under either choice); mid pages shrink 32x, so mid structures
#: shrink by the residual 8x; large-page counts are scale-invariant, so the
#: 1GB structures keep their real sizes.
SCALED_TLB = TLBHierarchyConfig(
    l1_base=TLBConfig(16, 4),
    l1_mid=TLBConfig(4, 4),
    l1_large=TLBConfig(4, 4),
    l2_shared=TLBConfig(192, 12),
    l2_large=TLBConfig(16, 4),
    l2_mid=TLBConfig(192, 12),
)


@dataclass(frozen=True)
class WalkConfig:
    """Page-walk cost parameters.

    A native walk for a base page touches ``levels_base`` page-table levels
    (4 on x86-64); mid pages skip the last level (3), large pages skip two
    (2).  Two caching effects shape the cost:

    * ``pwc_hit_rate`` — probability that every level *above* the leaf is in
      a paging-structure cache (PML4E/PDPTE/PDE caches), leaving only the
      leaf access.
    * ``leaf_cached_prob`` — for mid and large pages the *leaf itself* is a
      PDE/PDPTE, which Intel's paging-structure caches also hold; a hit
      makes the whole walk (nearly) free.  PTEs (base leaves) are never
      cached.  This is the micro-architectural reason 1GB walks are much
      cheaper than 2MB walks on real hardware, and the effect the paper's
      Section 2 "quickens individual walks" point rests on.

    ``mem_access_cycles`` is the average cost of one walk memory access —
    page-table entries of big random working sets mostly miss the data
    caches, so this is DRAM-class latency.
    """

    levels_base: int = 4
    mem_access_cycles: int = 160
    pwc_hit_rate: float = 0.80
    #: nested (2D) walks hit the paging-structure caches harder: most of the
    #: up-to-24 accesses are gPA-side upper-level entries with high reuse
    nested_pwc_hit_rate: float = 0.96
    leaf_cached_prob_mid: float = 0.60
    leaf_cached_prob_large: float = 0.85
    l2_tlb_hit_cycles: int = 7

    def leaf_cached_prob(self, page_size: int) -> float:
        return {
            PageSize.BASE: 0.0,
            PageSize.MID: self.leaf_cached_prob_mid,
            PageSize.LARGE: self.leaf_cached_prob_large,
        }[page_size]

    def levels_for(self, page_size: int) -> int:
        return self.levels_base - page_size  # LARGE=2 skips 2 levels

    def native_walk_accesses(self, page_size: int) -> int:
        """Memory accesses for one native page walk (4 / 3 / 2 on x86)."""
        return self.levels_for(page_size)

    def nested_walk_accesses(self, guest_size: int, host_size: int) -> int:
        """Memory accesses for one nested (2D) walk.

        With nG guest levels and nH host levels the 2D walk costs
        ``(nG + 1) * (nH + 1) - 1`` accesses: 24 for 4K+4K, 15 for 2M+2M,
        8 for 1G+1G — the numbers quoted in the paper's Section 2.
        """
        n_g = self.levels_for(guest_size)
        n_h = self.levels_for(host_size)
        return (n_g + 1) * (n_h + 1) - 1


@dataclass(frozen=True)
class CostModel:
    """Latency constants for OS work, in nanoseconds / bytes-per-ns.

    Calibrated to the paper's quoted numbers:

    * zero-fill bandwidth ~2.6 GB/s  => zeroing 1GB ~ 400 ms (sync 1GB fault)
    * mapped-fault fixed cost 2.7 ms for an (already-zeroed) 1GB fault
    * copy bandwidth ~1.8 GB/s       => copying 1GB ~ 600 ms (promotion)
    * hypercall 300 ns; per-page mapping exchange ~57 us unbatched
      (512 exchanges ~ 30 ms), ~0.97 us batched (512 ~ 500 us)
    """

    zero_bandwidth_bytes_per_ns: float = 2.6
    copy_bandwidth_bytes_per_ns: float = 1.8
    fault_fixed_ns: float = 1_000.0
    large_fault_mapped_ns: float = 2_700_000.0
    pte_update_ns: float = 150.0
    hypercall_ns: float = 300.0
    exchange_unbatched_ns: float = 57_000.0
    exchange_batched_ns: float = 970.0
    compaction_scan_per_frame_ns: float = 30.0

    def zero_ns(self, nbytes: int) -> float:
        """Time to zero ``nbytes`` of memory."""
        return nbytes / self.zero_bandwidth_bytes_per_ns

    def copy_ns(self, nbytes: int) -> float:
        """Time to copy ``nbytes`` of memory."""
        return nbytes / self.copy_bandwidth_bytes_per_ns

    def scaled_for(self, geometry: "PageGeometry") -> "CostModel":
        """Cost model whose *totals* stay real-time under a scaled geometry.

        One scaled operation aggregates many real operations: a scaled large
        page is one real 1GB page, but a scaled base page stands for
        ``byte_factor`` real 4KB pages and a scaled mid page for
        ``mid_factor`` real 2MB pages.  Dividing the byte-proportional
        bandwidths by ``byte_factor`` makes the total OS time of any
        operation mix over a footprint equal to the real total (the mix
        covers the same real bytes); per-mid-operation constants (hypercall
        exchanges, PTE updates) scale by ``mid_factor``.  Per-real-operation
        constants (the pooled 1GB fault latency, the hypercall world switch)
        are unchanged.  For the real x86 geometry this is the identity.
        """
        byte_factor = X86_GEOMETRY.large_size // geometry.large_size
        if byte_factor == 1:
            return self
        mid_factor = X86_GEOMETRY.mids_per_large // geometry.mids_per_large
        return replace(
            self,
            zero_bandwidth_bytes_per_ns=self.zero_bandwidth_bytes_per_ns
            / byte_factor,
            copy_bandwidth_bytes_per_ns=self.copy_bandwidth_bytes_per_ns
            / byte_factor,
            compaction_scan_per_frame_ns=self.compaction_scan_per_frame_ns
            * byte_factor,
            pte_update_ns=self.pte_update_ns * mid_factor,
            exchange_batched_ns=self.exchange_batched_ns * mid_factor,
            exchange_unbatched_ns=self.exchange_unbatched_ns * mid_factor,
        )


@dataclass(frozen=True)
class MachineConfig:
    """A simulated machine: physical memory + TLB + walk + cost parameters."""

    geometry: PageGeometry = SCALED_GEOMETRY
    total_frames: int = 1 << 16  # 256MB at 4KB frames under SCALED_GEOMETRY
    tlb: TLBHierarchyConfig = field(default_factory=TLBHierarchyConfig)
    walk: WalkConfig = field(default_factory=WalkConfig)
    cost: CostModel = field(default_factory=CostModel)
    #: Fraction of physical memory reserved for unmovable kernel allocations
    #: sprinkled across regions at boot (inodes, DMA buffers, ...).
    kernel_unmovable_fraction: float = 0.01

    def __post_init__(self) -> None:
        if self.total_frames <= 0:
            raise ValueError("total_frames must be positive")
        if self.total_frames % self.geometry.frames_per_large:
            raise ValueError(
                "total_frames must be a whole number of large regions: "
                f"{self.total_frames} % {self.geometry.frames_per_large} != 0"
            )

    @property
    def total_bytes(self) -> int:
        return self.total_frames * self.geometry.base_size

    @property
    def n_large_regions(self) -> int:
        return self.total_frames // self.geometry.frames_per_large

    def scaled(self, total_frames: int) -> "MachineConfig":
        """A copy of this config with a different memory size."""
        return replace(self, total_frames=total_frames)


def default_machine(
    total_large_regions: int = 64, geometry: PageGeometry = SCALED_GEOMETRY
) -> MachineConfig:
    """A machine with ``total_large_regions`` large-page-sized regions.

    The paper's testbed has 384GB / 1GB = 384 regions per machine and 192 per
    socket; 64 scaled regions keeps single-figure runs fast while leaving
    room for the same fragmentation dynamics.  Scaled geometries get the
    reach-preserving SCALED_TLB; the real x86 geometry keeps Skylake shapes.
    """
    tlb = TLBHierarchyConfig() if geometry == X86_GEOMETRY else SCALED_TLB
    return MachineConfig(
        geometry=geometry,
        total_frames=total_large_regions * geometry.frames_per_large,
        tlb=tlb,
        cost=CostModel().scaled_for(geometry),
    )
