"""Figure 1: page-walk cycles and performance across page sizes (native).

Four configurations per application — 4KB, 2MB via THP, 2MB via static
hugetlbfs, 1GB via static hugetlbfs — on unfragmented memory.  Figure 1a is
the fraction of cycles in page walks normalized to 4KB; Figure 1b is
performance normalized to 4KB.  The paper's headline findings here: eight
applications (the shaded set) gain >= 3% from 1GB over 2MB pages, THP
performs within ~0.5% of static 2MB hugetlbfs, and a few applications
(Redis) prefer THP because hugetlbfs cannot back their stack.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import ALL_WORKLOADS

CONFIGS = ("4KB", "2MB-THP", "2MB-Hugetlbfs", "1GB-Hugetlbfs")

CSV_NAME = "figure1"
TITLE = "Figure 1: normalized walk-cycle fraction (a) and performance (b), native"
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 8_000}


def run(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_accesses: int = 100_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {
            cfg: NativeRunner(
                RunConfig(workload, cfg, n_accesses=n_accesses, seed=seed)
            ).run()
            for cfg in CONFIGS
        }
        base = metrics["4KB"]
        row: dict = {"workload": workload}
        for cfg in CONFIGS:
            row[f"walk_frac:{cfg}"] = metrics[cfg].walk_fraction_vs(base)
        for cfg in CONFIGS:
            row[f"perf:{cfg}"] = metrics[cfg].speedup_over(base)
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
