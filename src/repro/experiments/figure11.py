"""Figure 11: teasing apart Trident's design components (ablation).

* **Trident-1Gonly** — no 2MB fallback: 1GB where possible, else 4KB.
  Loses badly (even to THP for Graph500/SVM) because the hot
  2MB-mappable-but-not-1GB-mappable regions fall back to 4KB pages.
* **Trident-NC** — all three sizes but Linux's normal compaction.
  Identical to Trident without fragmentation (compaction never runs);
  several percent behind under fragmentation, where smart compaction
  delivers 1GB chunks sooner and cheaper.
"""

from __future__ import annotations

from repro.experiments.report import geomean, print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import SHADED_EIGHT

CONFIGS = ("2MB-THP", "Trident-1Gonly", "Trident-NC", "Trident")

CSV_NAME = "figure11"
TITLE = "Figure 11: Trident component ablation (normalized to THP)"
QUICK_KWARGS = {"workloads": ("GUPS",), "n_accesses": 6_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 100_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for fragmented in (False, True):
        state = "frag" if fragmented else "unfrag"
        for workload in workloads:
            metrics = {
                cfg: NativeRunner(
                    RunConfig(
                        workload,
                        cfg,
                        fragmented=fragmented,
                        n_accesses=n_accesses,
                        seed=seed,
                    )
                ).run()
                for cfg in CONFIGS
            }
            base = metrics["2MB-THP"]
            row: dict = {"state": state, "workload": workload}
            for cfg in CONFIGS:
                row[f"perf:{cfg}"] = metrics[cfg].speedup_over(base)
            rows.append(row)
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Per-state geomean rows (recomputed by the sweep merge)."""
    out = []
    for state in ("unfrag", "frag"):
        state_rows = [r for r in rows if r.get("state") == state]
        if not state_rows:
            continue
        summary: dict = {"state": state, "workload": "geomean"}
        for cfg in CONFIGS:
            summary[f"perf:{cfg}"] = geomean(r[f"perf:{cfg}"] for r in state_rows)
        out.append(summary)
    return out


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows + summarize(rows), CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
