"""Experiment harness: one module per figure/table of the paper.

Every module exposes a ``run(...)`` function returning a table-like dict and
a ``main()`` that prints the same rows/series the paper reports.  Run them
as ``python -m repro.experiments.figure9``.  The pytest-benchmark wrappers
in ``benchmarks/`` call the same ``run`` functions.
"""

from repro.experiments.configs import POLICY_CONFIGS
from repro.experiments.runner import (
    NativeRunner,
    RunConfig,
    VirtRunConfig,
    VirtRunner,
)

__all__ = [
    "POLICY_CONFIGS",
    "NativeRunner",
    "RunConfig",
    "VirtRunner",
    "VirtRunConfig",
]
