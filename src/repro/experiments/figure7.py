"""Figure 7: reduction in bytes copied by smart vs normal compaction.

Both compactors are driven by the same fragmented workload run (Trident-NC
uses normal compaction, Trident uses smart compaction); the figure reports
how many fewer bytes smart compaction copied to deliver its 1GB chunks —
up to 85% in the paper.  XSBench improves least because it consumes most
of physical memory, where *any* compactor must move similar amounts.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import SHADED_EIGHT

CSV_NAME = "figure7"
TITLE = "Figure 7: % reduction in bytes copied, smart vs normal compaction"
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 40_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        copied = {}
        for policy, compactor_attr in (
            ("Trident-NC", "normal_compactor"),
            ("Trident", "smart_compactor"),
        ):
            runner = NativeRunner(
                RunConfig(
                    workload,
                    policy,
                    fragmented=True,
                    n_accesses=n_accesses,
                    seed=seed,
                )
            )
            runner.run()
            stats = getattr(runner.system, compactor_attr).stats
            copied[policy] = stats.bytes_copied
        normal = copied["Trident-NC"]
        smart = copied["Trident"]
        reduction = 100.0 * (normal - smart) / normal if normal else 0.0
        rows.append(
            {
                "workload": workload,
                "normal_bytes_copied_mb": normal / (1 << 20),
                "smart_bytes_copied_mb": smart / (1 << 20),
                "reduction_pct": reduction,
            }
        )
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
