"""Table rendering and CSV output for the experiment harness.

Every experiment produces rows as plain dicts; this module prints them as an
aligned text table (what ``python -m repro.experiments.figureN`` shows) and
writes them to ``report/<name>.csv`` — the same output structure as the
paper artifact's ``compile_report.py``.
"""

from __future__ import annotations

import csv
import os
from typing import Iterable

#: where CSV files land, relative to the working directory
REPORT_DIR = "report"


def format_table(rows: list[dict], title: str = "") -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return f"{title}\n(no rows)\n"
    columns = list(rows[0].keys())
    formatted = [
        {c: _format_cell(row.get(c, "")) for c in columns} for row in rows
    ]
    widths = {
        c: max(len(c), *(len(r[c]) for r in formatted)) for c in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for r in formatted:
        lines.append("  ".join(r[c].ljust(widths[c]) for c in columns))
    return "\n".join(lines) + "\n"


def _format_cell(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def write_csv(rows: list[dict], name: str, directory: str | None = None) -> str:
    """Write rows to ``report/<name>.csv``; returns the path."""
    directory = directory or REPORT_DIR
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.csv")
    if not rows:
        with open(path, "w", newline="") as f:
            f.write("")
        return path
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="") as f:
        writer = csv.DictWriter(f, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    return path


def print_and_save(rows: list[dict], name: str, title: str) -> None:
    """The standard experiment epilogue."""
    print(format_table(rows, title))
    path = write_csv(rows, name)
    print(f"[saved {path}]")


def bar_chart(
    rows: list[dict],
    label_key: str,
    value_keys: list[str],
    title: str = "",
    width: int = 40,
) -> str:
    """Render grouped horizontal ASCII bars (one group per row).

    The terminal rendition of the paper's bar figures: each row becomes a
    cluster with one bar per value column, scaled to the global maximum.
    """
    if not rows:
        return f"{title}\n(no rows)\n"
    values = [
        float(row[k]) for row in rows for k in value_keys if k in row
    ]
    peak = max(values) if values else 1.0
    peak = peak or 1.0
    key_width = max(len(k) for k in value_keys)
    lines = [title] if title else []
    for row in rows:
        lines.append(str(row.get(label_key, "")))
        for key in value_keys:
            if key not in row:
                continue
            value = float(row[key])
            filled = int(round(width * value / peak))
            bar = "#" * max(0, min(width, filled))
            lines.append(
                f"  {key.ljust(key_width)} |{bar:<{width}}| {value:.3f}"
            )
    return "\n".join(lines) + "\n"


def sweep_status_table(units: list[dict]) -> str:
    """Render a sweep manifest's per-unit records as an aligned table."""
    rows = []
    for unit in units:
        rows.append(
            {
                "unit": unit["unit_id"],
                "status": unit["status"] + (" (cached)" if unit.get("cached") else ""),
                "attempts": unit.get("attempts", 0),
                "seconds": round(unit.get("duration_s", 0.0), 2),
                "error": (unit.get("error") or "")[:48],
            }
        )
    return format_table(rows, "Sweep units")


def geomean(values: Iterable[float]) -> float:
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
