"""Figure 9: THP vs HawkEye vs Trident on unfragmented memory.

Normalized performance (9a) and walk-cycle fraction (9b), both relative to
Linux THP.  Paper headline: Trident +14% over THP on average (up to +47%
for GUPS); Trident also beats HawkEye by a similar margin since both
baselines map 2MB aggressively when memory is unfragmented.
"""

from __future__ import annotations

from repro.experiments.report import geomean, print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import SHADED_EIGHT

CONFIGS = ("2MB-THP", "HawkEye", "Trident")

CSV_NAME = "figure9"
TITLE = "Figure 9: performance (a) and walk cycles (b) vs THP, unfragmented"
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 8_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 100_000,
    seed: int = 7,
    fragmented: bool = False,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {
            cfg: NativeRunner(
                RunConfig(
                    workload,
                    cfg,
                    fragmented=fragmented,
                    n_accesses=n_accesses,
                    seed=seed,
                )
            ).run()
            for cfg in CONFIGS
        }
        base = metrics["2MB-THP"]
        row: dict = {"workload": workload}
        for cfg in CONFIGS:
            row[f"perf:{cfg}"] = metrics[cfg].speedup_over(base)
        for cfg in CONFIGS:
            row[f"walk_frac:{cfg}"] = metrics[cfg].walk_fraction_vs(base)
        rows.append(row)
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Geomean row over per-workload rows (recomputed by the sweep merge)."""
    summary = {"workload": "geomean"}
    for cfg in CONFIGS:
        summary[f"perf:{cfg}"] = geomean(r[f"perf:{cfg}"] for r in rows)
        summary[f"walk_frac:{cfg}"] = geomean(r[f"walk_frac:{cfg}"] for r in rows)
    return [summary]


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows + summarize(rows), CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
