"""Figure 9: THP vs HawkEye vs Trident on unfragmented memory.

Normalized performance (9a) and walk-cycle fraction (9b), both relative to
Linux THP.  Paper headline: Trident +14% over THP on average (up to +47%
for GUPS); Trident also beats HawkEye by a similar margin since both
baselines map 2MB aggressively when memory is unfragmented.
"""

from __future__ import annotations

from repro.experiments.report import geomean, print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import SHADED_EIGHT

CONFIGS = ("2MB-THP", "HawkEye", "Trident")


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 100_000,
    seed: int = 7,
    fragmented: bool = False,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {
            cfg: NativeRunner(
                RunConfig(
                    workload,
                    cfg,
                    fragmented=fragmented,
                    n_accesses=n_accesses,
                    seed=seed,
                )
            ).run()
            for cfg in CONFIGS
        }
        base = metrics["2MB-THP"]
        row: dict = {"workload": workload}
        for cfg in CONFIGS:
            row[f"perf:{cfg}"] = metrics[cfg].speedup_over(base)
        for cfg in CONFIGS:
            row[f"walk_frac:{cfg}"] = metrics[cfg].walk_fraction_vs(base)
        rows.append(row)
    summary = {"workload": "geomean"}
    for cfg in CONFIGS:
        summary[f"perf:{cfg}"] = geomean(r[f"perf:{cfg}"] for r in rows)
        summary[f"walk_frac:{cfg}"] = geomean(r[f"walk_frac:{cfg}"] for r in rows)
    rows.append(summary)
    return rows


def main() -> None:
    rows = run()
    print_and_save(
        rows,
        "figure9",
        "Figure 9: performance (a) and walk cycles (b) vs THP, unfragmented",
    )


if __name__ == "__main__":
    main()
