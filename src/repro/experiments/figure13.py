"""Figure 13: Trident-pv under fragmented guest-physical memory.

The setup that motivates paravirtualization: gPA is fragmented, so the
guest must compact/promote constantly — but its khugepaged is capped at 10%
of a vCPU (the Netflix/EC2 concern the paper cites).  With copy-based
promotion the tiny budget throttles 1GB page coverage; Trident-pv's batched
exchange hypercall promotes a 1GB region in ~500 us instead of ~600 ms, so
coverage recovers.  Paper: Trident-pv beats Trident by up to 10% (XSBench,
GUPS, Memcached, SVM); workloads whose 4KB pages promote straight to 1GB
(Btree, Graph500, Canneal) see little benefit because base pages still copy.
"""

from __future__ import annotations

from repro.experiments.report import geomean, print_and_save
from repro.experiments.runner import VirtRunConfig, VirtRunner
from repro.workloads.registry import SHADED_EIGHT

#: guest khugepaged capped at 10% of one vCPU: per 2 ms scheduling period
#: it gets 200 us, and over the whole run a total of 10% x runtime.
CAPPED_BUDGET_NS = 200_000.0
CAP_FRACTION = 0.10


def _daemon_total_s(workload: str) -> float:
    from repro.workloads.registry import get_workload

    w = get_workload(workload)
    # Estimated wall runtime: compute plus translation stalls (fragmented
    # guests run mostly on small pages early, ~60% on top of cpi).
    runtime_s = w.represented_accesses * w.spec.cpi_base * 1.6 / 2.3 / 1e9
    return CAP_FRACTION * runtime_s

CONFIGS = (
    ("2MB+2MB-THP", dict(guest_policy="2MB-THP", host_policy="2MB-THP")),
    ("Trident+Trident", dict(guest_policy="Trident", host_policy="Trident")),
    (
        "Trident-pv+Trident-pv",
        dict(guest_policy="Trident", host_policy="Trident", pv=True),
    ),
)

CSV_NAME = "figure13"
TITLE = (
    "Figure 13: Trident-pv vs Trident vs THP, fragmented gPA, "
    "capped khugepaged"
)
QUICK_KWARGS = {"workloads": ("GUPS",), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 80_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {}
        for label, kwargs in CONFIGS:
            metrics[label] = VirtRunner(
                VirtRunConfig(
                    workload,
                    n_accesses=n_accesses,
                    seed=seed,
                    guest_fragmented=True,
                    guest_daemon_budget_ns=CAPPED_BUDGET_NS,
                    guest_daemon_total_s=_daemon_total_s(workload),
                    **kwargs,
                )
            ).run()
        base = metrics["2MB+2MB-THP"]
        row: dict = {"workload": workload}
        for label, _ in CONFIGS:
            row[f"perf:{label}"] = metrics[label].speedup_over(base)
        row["pv_vs_trident"] = metrics["Trident-pv+Trident-pv"].speedup_over(
            metrics["Trident+Trident"]
        )
        rows.append(row)
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Geomean row over per-workload rows (recomputed by the sweep merge)."""
    summary: dict = {"workload": "geomean"}
    for label, _ in CONFIGS:
        summary[f"perf:{label}"] = geomean(r[f"perf:{label}"] for r in rows)
    summary["pv_vs_trident"] = geomean(r["pv_vs_trident"] for r in rows)
    return [summary]


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows + summarize(rows), CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
