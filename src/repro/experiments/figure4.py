"""Figure 4: relative TLB-miss frequency of 1GB-unmappable address regions.

The paper's second kernel module: run the application on 4KB pages,
periodically clear the PTE access bits, and count which regions' bits get
set again — a sampled TLB-miss/access-frequency estimate per virtual
region, classified as 1GB-mappable vs only-2MB-mappable.  The finding: the
2MB-but-not-1GB-mappable regions are disproportionately hot (for Graph500 a
~800MB unmappable region spikes), so mapping them with 2MB pages matters.
"""

from __future__ import annotations

import numpy as np

from repro.config import SCALE_FACTOR
from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.vm.sampler import AccessBitSampler

WORKLOADS = ("Graph500", "SVM")

CSV_NAME = "figure4"
TITLE = "Figure 4: relative TLB-miss frequency by region mappability class"
QUICK_KWARGS = {
    "workloads": ("Graph500",),
    "n_accesses": 20_000,
    "sample_chunks": 10,
}


def run(
    workloads: tuple[str, ...] = WORKLOADS,
    n_accesses: int = 60_000,
    sample_chunks: int = 20,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        runner = NativeRunner(
            RunConfig(workload, "4KB", n_accesses=2_000, seed=seed)
        )
        runner.run()
        system, process = runner.system, runner.system.processes[0]
        sampler = AccessBitSampler(process, system.geometry)
        stream = runner.workload.access_stream(_api_of(runner), n_accesses)
        # Periodically sample-and-clear access bits, as the module does.
        for chunk in np.array_split(stream, sample_chunks):
            system.touch_batch(process, chunk)
            sampler.sample()
        for row in sampler.rows(scale_factor=SCALE_FACTOR):
            rows.append({"workload": workload, **row})
    return rows


def _api_of(runner: NativeRunner):
    from repro.experiments.runner import _WorkloadAPI

    return _WorkloadAPI(
        runner.system, runner.system.processes[0], np.random.default_rng(11)
    )


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)
    # Summarize the headline comparison.
    for workload in {r["workload"] for r in rows}:
        wrows = [r for r in rows if r["workload"] == workload]
        mid = [r["miss_per_gb"] for r in wrows if r["class"] == "mid"]
        large = [r["miss_per_gb"] for r in wrows if r["class"] == "large"]
        if mid and large:
            print(
                f"{workload}: hottest only-2MB-mappable region is "
                f"{max(mid) / max(max(large), 1e-9):.1f}x the hottest "
                "1GB-mappable region (misses/GB)"
            )


if __name__ == "__main__":
    main()
