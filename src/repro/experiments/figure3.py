"""Figure 3: 1GB- vs 2MB-mappable virtual memory over the execution timeline.

Reproduces the paper's kernel-module scan for Graph500 and SVM: at each
workload phase boundary the mappability scanner records how much allocated
virtual memory is mappable with each large page size.  The gap between the
two series is memory that *only* 2MB pages can cover — several GB for both
applications, which is the core motivation for using all page sizes.
"""

from __future__ import annotations

from repro.config import SCALE_FACTOR
from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig

WORKLOADS = ("Graph500", "SVM")

CSV_NAME = "figure3"
TITLE = (
    "Figure 3: memory mappable with 1GB vs 2MB pages over time "
    "(paper-scale GB)"
)
QUICK_KWARGS = {"workloads": ("Graph500",)}


def run(workloads: tuple[str, ...] = WORKLOADS, seed: int = 7) -> list[dict]:
    rows = []
    for workload in workloads:
        runner = NativeRunner(
            RunConfig(workload, "Trident", n_accesses=2_000, seed=seed)
        )
        runner.run()
        assert runner.scanner is not None
        for i, (label, large, mid) in enumerate(runner.scanner.samples):
            rows.append(
                {
                    "workload": workload,
                    "sample": i,
                    "phase": label,
                    "large_mappable_gb": large * SCALE_FACTOR / (1 << 30),
                    "mid_mappable_gb": mid * SCALE_FACTOR / (1 << 30),
                    "gap_gb": (mid - large) * SCALE_FACTOR / (1 << 30),
                }
            )
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
