"""All nine guest x host page-size combinations (Section 4.2).

The paper explored all nine combinations but plots only the three diagonal
ones "as they demonstrate the best performance achievable with a given page
size".  This extension regenerates the full matrix, verifying the premise:
the effective TLB entry is min(guest, host), so off-diagonal combinations
are bounded by their smaller side, and the diagonal dominates its row and
column.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import VirtRunConfig, VirtRunner

SIZES = (
    ("4KB", "4KB"),
    ("2MB", "2MB-Hugetlbfs"),
    ("1GB", "1GB-Hugetlbfs"),
)

CSV_NAME = "figure2_full"
TITLE = "Extension: all nine guest x host page-size combinations (GUPS)"
QUICK_KWARGS = {"n_accesses": 4_000}


def run(
    workload: str = "GUPS", n_accesses: int = 40_000, seed: int = 7
) -> list[dict]:
    metrics = {}
    for glabel, gpolicy in SIZES:
        for hlabel, hpolicy in SIZES:
            m = VirtRunner(
                VirtRunConfig(
                    workload, gpolicy, hpolicy, n_accesses=n_accesses, seed=seed
                )
            ).run()
            metrics[(glabel, hlabel)] = m
    base = metrics[("4KB", "4KB")]
    rows = []
    for glabel, _ in SIZES:
        row: dict = {"guest": glabel}
        for hlabel, _ in SIZES:
            m = metrics[(glabel, hlabel)]
            row[f"perf:host={hlabel}"] = m.speedup_over(base)
            row[f"walk_cpa:host={hlabel}"] = m.walk_cycles_per_access
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
