"""Table 4: percentage of 1GB allocation attempts that fail (fragmented).

With fragmented physical memory, most 1GB-page allocation attempts at
page-fault time fail outright (no contiguous chunk and faults never wait
for compaction); promotion-time attempts fail less because compaction runs
first but still fail often.  "NA" marks workloads whose fault handler never
even attempts a 1GB allocation (no 1GB-mappable virtual range exists when
they fault — Redis and Btree in the paper).
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import SHADED_EIGHT

CSV_NAME = "table4"
TITLE = "Table 4: % 1GB allocation failures under fragmentation"
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 40_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = NativeRunner(
            RunConfig(
                workload, "Trident", fragmented=True, n_accesses=n_accesses, seed=seed
            )
        ).run()
        rows.append(
            {
                "workload": workload,
                "fault_attempts": metrics.fault_large_attempts,
                "fault_fail_pct": _pct(
                    metrics.fault_large_failures, metrics.fault_large_attempts
                ),
                "promo_attempts": metrics.promo_large_attempts,
                "promo_fail_pct": _pct(
                    metrics.promo_large_failures, metrics.promo_large_attempts
                ),
            }
        )
    return rows


def _pct(failures: int, attempts: int):
    if attempts == 0:
        return "NA"
    return round(100.0 * failures / attempts, 1)


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
