"""Bind a workload to a simulated system and measure one configuration.

The measurement protocol mirrors the paper's methodology:

1. boot a machine sized to the workload (the testbed has ~1.6x headroom
   over the largest footprint), optionally fragment physical memory first;
2. run the workload's allocation/initialization script;
3. let the background daemons settle (khugepaged promotion converges);
4. reset the TLB counters and play the steady-state access stream — the
   perf counters the paper reads measure exactly this phase;
5. fold the counters into :class:`repro.sim.perfmodel.RunMetrics`.

One-time OS costs (faults, zeroing, promotion copies, compaction) from the
whole run are kept — they are real absolute costs the runtime model adds on
top of the steady-state compute term.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.config import (
    FREQ_GHZ,
    SCALED_GEOMETRY,
    MachineConfig,
    PageGeometry,
    default_machine,
)
from repro.experiments.configs import policy_factory
from repro.obs import Observability
from repro.sim.perfmodel import PerfModel, RunMetrics
from repro.sim.system import System
from repro.vm.mappability import MappabilityScanner
from repro.workloads.registry import get_workload

#: when set (``repro experiment --metrics-out DIR``, or per worker by the
#: sweep orchestrator), every runner writes a per-run
#: ``metrics_<workload>_<policy>.json`` into this directory, next to the
#: report CSVs
METRICS_DIR: str | None = None


def metrics_dir() -> str | None:
    """The active metrics drop directory.

    Module global first (set in-process by the CLI or by an orchestrator
    worker after fork), then the ``REPRO_METRICS_DIR`` environment
    variable — the handoff that survives spawn-style worker startup.
    """
    return METRICS_DIR or os.environ.get("REPRO_METRICS_DIR") or None


def set_metrics_dir(path: str | None) -> None:
    """Point every subsequent runner's metrics.json drop at ``path``."""
    global METRICS_DIR
    METRICS_DIR = path


#: when True (``--audit``, or per worker by the sweep orchestrator), every
#: runner attaches a sampled invariant auditor (repro.lint.invariants) to
#: the systems it boots
AUDIT: bool = False


def audit_enabled() -> bool:
    """Whether runs should attach invariant auditors.

    Module global first (set in-process by the CLI or an orchestrator
    worker), then the ``REPRO_AUDIT`` environment variable — the same
    handoff pattern as :func:`metrics_dir`.
    """
    return AUDIT or os.environ.get("REPRO_AUDIT") == "1"


def set_audit(on: bool) -> None:
    """Enable/disable invariant auditing for subsequent runners."""
    global AUDIT
    AUDIT = bool(on)


#: when True (``--timeline``, or per worker by the sweep orchestrator),
#: every runner's obs bundle gets a simulated-time sampler + span recorder
TIMELINE: bool = False


def timeline_enabled() -> bool:
    """Whether runs should record the simulated-time timeline.

    Module global first (set in-process by the CLI or an orchestrator
    worker), then the ``REPRO_TIMELINE`` environment variable — the same
    handoff pattern as :func:`metrics_dir`.
    """
    return TIMELINE or os.environ.get("REPRO_TIMELINE") == "1"


def set_timeline(on: bool) -> None:
    """Enable/disable timeline recording for subsequent runners."""
    global TIMELINE
    TIMELINE = bool(on)


def _metrics_run_section(metrics: RunMetrics) -> dict:
    """The RunMetrics-derived summary embedded in each metrics.json."""
    return {
        "policy": metrics.policy,
        "workload": metrics.workload,
        "accesses": metrics.accesses,
        "walks": metrics.walks,
        "walk_cycle_fraction": metrics.walk_cycle_fraction,
        "runtime_ns": metrics.runtime_ns,
        "fault_ns": metrics.fault_ns,
        "daemon_ns": metrics.daemon_ns,
        "bloat_bytes": metrics.bloat_bytes,
        "compaction_bytes_copied": metrics.compaction_bytes_copied,
        "fault_large_attempts": metrics.fault_large_attempts,
        "fault_large_failures": metrics.fault_large_failures,
        "promo_large_attempts": metrics.promo_large_attempts,
        "promo_large_failures": metrics.promo_large_failures,
        "zerofill_pool_hits": metrics.zerofill_pool_hits,
        "zerofill_pool_misses": metrics.zerofill_pool_misses,
        "zerofill_blocks_zeroed": metrics.zerofill_blocks_zeroed,
    }


def emit_metrics_json(
    obs: Observability,
    metrics: RunMetrics,
    explicit_path: str | None,
    auditors: tuple = (),
) -> str | None:
    """Write one run's metrics.json (explicit path or the METRICS_DIR drop).

    Returns the path written, or None when neither destination is set.
    ``auditors`` (any of which may be None) contribute the ``audit_*``
    fields that let an audited sweep prove the invariant checks ran.
    """
    path = explicit_path
    drop_dir = metrics_dir()
    if path is None and drop_dir:
        safe = f"metrics_{metrics.workload}_{metrics.policy}".replace("/", "_")
        path = os.path.join(drop_dir, f"{safe}.json")
    if path is None:
        return None
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    section = _metrics_run_section(metrics)
    live = [a for a in auditors if a is not None]
    if live:
        section["audit_runs"] = sum(a.audits for a in live)
        section["audit_checks"] = sum(a.checks for a in live)
        section["audit_violations"] = sum(a.violations for a in live)
    return obs.write_metrics_json(path, extra={"run": section})


def _build_obs(config) -> Observability:
    subsystems: tuple[str, ...] | str = ()
    if config.trace:
        subsystems = config.trace_subsystems or "all"
    return Observability(
        trace_subsystems=subsystems,
        trace_capacity=config.trace_capacity,
        timeline=_wants_timeline(config),
        timeline_interval_ms=config.timeline_interval_ms,
    )


def attach_telemetry(obs: Observability, config):
    """Wire a SimClock-cadence scrape stream when the config asks for one.

    Returns the scraper (callers must ``close()`` it before exporting
    artifacts so the stream ends with the end-of-run frame), or None.
    """
    telemetry_out = getattr(config, "telemetry_out", None)
    if not telemetry_out:
        return None
    from repro.obs.telemetry import ScrapeFileSink, TelemetryScraper

    return TelemetryScraper(
        obs.clock,
        obs.metrics,
        ScrapeFileSink(telemetry_out),
        interval_ms=config.telemetry_interval_ms,
    )


def _wants_timeline(config) -> bool:
    """Explicit per-run flag first; output paths imply it; else the global."""
    if config.timeline is not None:
        return config.timeline
    if config.timeline_out or config.report_out:
        return True
    return timeline_enabled()


def export_timeline_artifacts(obs: Observability, metrics: RunMetrics, config) -> None:
    """Write the run's Chrome trace and/or HTML report, when requested."""
    for path in (config.timeline_out, config.report_out):
        if path:
            parent = os.path.dirname(path)
            if parent:
                os.makedirs(parent, exist_ok=True)
    if config.timeline_out:
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(
            config.timeline_out,
            tracer=obs.tracer,
            timeline=obs.timeline,
            clock=obs.clock,
        )
    if config.report_out:
        from repro.obs.report import write_report

        data = obs.metrics.snapshot()
        data["timeline"] = obs.timeline_export()
        title = f"{metrics.workload} / {metrics.policy}"
        write_report(config.report_out, [(title, data)], title=title)


@dataclass
class RunConfig:
    """Knobs for one measured run."""

    workload: str
    policy: str
    fragmented: bool = False
    n_accesses: int = 150_000
    seed: int = 7
    geometry: PageGeometry = SCALED_GEOMETRY
    #: a geometry preset key ("x86", "sv-napot", "arm16k") or a path to a
    #: custom .json geometry; overrides ``geometry`` and brings the
    #: preset's TLB/walk/cost parameters along (see repro.geometries)
    geometry_name: str | None = None
    #: machine size in large regions; None = the paper's testbed (192GB per
    #: socket = 192 1GB regions, scaled), floored at 1.15x the footprint
    machine_regions: int | None = None
    #: page-table depth: 4 (x86-64) or 5 (LA57, the extension study)
    walk_levels: int = 4
    settle_ticks: int = 400
    record_requests: bool = False
    accesses_per_request: int = 4
    request_base_service_ns: float = 20_000.0
    daemon_budget_ns: float = 2_000_000.0
    settle_budget_ns: float = 1_000_000_000.0
    #: total background-daemon CPU for the run, as a fraction of the
    #: represented runtime.  khugepaged is not infinitely fast: within one
    #: execution it only gets to do so much work, which is why the paper's
    #: Table 3 shows *partial* 1GB coverage for the big-footprint workloads
    #: even with compaction.  None = run daemons to convergence.
    daemon_total_fraction: float | None = 0.25
    fragment_kwargs: dict = field(default_factory=dict)
    #: observability: enable the structured-event tracer for this run
    trace: bool = False
    #: subsystems to trace; None/empty = all of repro.obs.trace.SUBSYSTEMS
    trace_subsystems: tuple[str, ...] | None = None
    trace_capacity: int = 65536
    #: write the metrics registry snapshot (plus a RunMetrics summary) here
    metrics_out: str | None = None
    #: sampled runtime invariant auditing (repro.lint.invariants):
    #: True/False forces it for this run; None defers to audit_enabled()
    audit: bool | None = None
    #: buddy events between sampled audits (smaller = tighter, slower)
    audit_every: int = 4096
    #: simulated-time timeline (clock + spans + samplers): True/False forces
    #: it; None defers to the output paths below, then timeline_enabled()
    timeline: bool | None = None
    timeline_interval_ms: float = 0.5
    #: write a Chrome Trace Event Format JSON here (Perfetto-loadable)
    timeline_out: str | None = None
    #: write a self-contained single-file HTML report here
    report_out: str | None = None
    #: append Prometheus-text scrape frames (SimClock cadence) here
    telemetry_out: str | None = None
    telemetry_interval_ms: float = 1.0


class _WorkloadAPI:
    """The :class:`repro.workloads.base.WorkloadAPI` implementation."""

    def __init__(self, system: System, process, rng, scanner=None) -> None:
        self.system = system
        self.process = process
        self.rng = rng
        self.scanner = scanner
        self.phases: list[str] = []

    def mmap(self, nbytes: int, kind: str = "heap") -> int:
        return self.system.sys_mmap(self.process, nbytes, kind)

    def munmap(self, addr: int) -> None:
        self.system.sys_munmap(self.process, addr)

    def touch(self, addresses: np.ndarray) -> None:
        self.system.touch_batch(self.process, addresses)

    def phase(self, label: str) -> None:
        self.phases.append(label)
        self.system.obs.spans.mark("phase", label=label)
        if self.scanner is not None:
            self.scanner.sample(label)


class NativeRunner:
    """Runs one (workload, policy) pair natively (no virtualization)."""

    def __init__(self, config: RunConfig) -> None:
        self.config = config
        self.workload = get_workload(config.workload)
        self.machine = self._size_machine()
        self.obs = _build_obs(config)
        self.system = System(
            self.machine,
            policy_factory(config.policy),
            seed=config.seed,
            daemon_budget_ns=config.daemon_budget_ns,
            obs=self.obs,
        )
        self.scanner: MappabilityScanner | None = None
        want_audit = config.audit if config.audit is not None else audit_enabled()
        if want_audit:
            from repro.lint.invariants import attach_auditor

            attach_auditor(self.system, every=config.audit_every)

    #: the testbed's per-socket memory: 192GB of 1GB regions (Table 1)
    TESTBED_REGIONS = 192

    def _size_machine(self) -> MachineConfig:
        preset = None
        geometry = self.config.geometry
        if self.config.geometry_name:
            from repro.geometries import resolve_geometry

            preset = resolve_geometry(self.config.geometry_name)
            geometry = preset.geometry
        if self.config.machine_regions is not None:
            regions = self.config.machine_regions
        else:
            footprint = self.workload.footprint_bytes
            regions = max(
                self.TESTBED_REGIONS,
                int(footprint * 1.15) // geometry.large_size + 1,
            )
        if preset is not None:
            machine = preset.machine(regions)
        else:
            machine = default_machine(regions, geometry)
        if self.config.walk_levels != machine.walk.levels_base:
            from dataclasses import replace

            machine = replace(
                machine,
                walk=replace(machine.walk, levels_base=self.config.walk_levels),
            )
        return machine

    def run(self) -> RunMetrics:
        cfg = self.config
        scraper = attach_telemetry(self.obs, cfg)
        if cfg.fragmented:
            self.system.fragment(**cfg.fragment_kwargs)
        process = self.system.create_process(cfg.workload)
        rng = np.random.default_rng(cfg.seed)
        self.scanner = MappabilityScanner(process.aspace)
        api = _WorkloadAPI(self.system, process, rng, self.scanner)
        self.workload.setup(api)
        self._settle()
        process.tlb.reset_stats()
        if cfg.record_requests:
            # Requests mode samples per-request latency and needs the
            # materialized stream to slice it into request windows.
            stream = self.workload.access_stream(api, cfg.n_accesses)
            latencies = self._run_requests(process, stream)
        else:
            latencies = self._run_stream(process, api)
        model = PerfModel(
            cpi_base=self.workload.spec.cpi_base,
            represented_accesses=self.workload.represented_accesses,
            walk_exposure=self.workload.spec.walk_exposure,
            fault_parallelism=self.workload.spec.threads,
        )
        metrics = model.collect(self.system, process, cfg.workload, latencies)
        if self.system.auditor is not None:
            self.system.auditor.audit()  # final audit: every run gets >= 1
        if self.obs.timeline is not None:
            self.obs.timeline.sample()  # closing sample at end-of-run state
        if scraper is not None:
            scraper.close()  # final frame at end-of-run state
        emit_metrics_json(
            self.obs, metrics, cfg.metrics_out, auditors=(self.system.auditor,)
        )
        export_timeline_artifacts(self.obs, metrics, cfg)
        return metrics

    def _settle(self) -> None:
        """Run daemons until convergence or the run's total CPU allowance."""
        cfg = self.config
        if cfg.daemon_total_fraction is None:
            self.system.settle_until_quiet(
                max_ticks=cfg.settle_ticks, budget_ns=cfg.settle_budget_ns
            )
            return
        runtime_est_ns = (
            self.workload.represented_accesses
            * self.workload.spec.cpi_base
            * 1.3
            / 2.3
        )
        total_ns = cfg.daemon_total_fraction * runtime_est_ns
        stats = self.system.policy.stats
        quiet = 0
        last = (dict(stats.promoted), dict(stats.demoted))
        for _ in range(cfg.settle_ticks):
            if stats.daemon_ns >= total_ns:
                break
            self.system.run_daemons(cfg.settle_budget_ns)
            now = (dict(stats.promoted), dict(stats.demoted))
            throttled = getattr(self.system.policy, "_debt_ns", 0.0) > 0.0
            quiet = quiet + 1 if (now == last and not throttled) else 0
            last = now
            if quiet >= 5:
                break

    def _run_stream(self, process, api) -> None:
        """Play the workload's batches through the vectorized hot path."""
        for chunk in self.workload.iter_batches(api, self.config.n_accesses):
            self.system.touch_batch(process, chunk)
        return None

    def _run_requests(self, process, stream: np.ndarray) -> list[float]:  # noqa: C901
        """Play the stream as requests, sampling per-request latency.

        A request costs its base service time plus its own translation
        cycles plus any fault latency it incurred — background promotion /
        compaction / zeroing stays off the critical path, which is exactly
        the property Table 5 checks.
        """
        cfg = self.config
        k = cfg.accesses_per_request
        spec = self.workload.spec
        freq = FREQ_GHZ
        latencies: list[float] = []
        stats = process.tlb.stats
        policy_stats = self.system.policy.stats
        for i in range(0, len(stream) - k + 1, k):
            c0 = stats.translation_cycles
            f0 = policy_stats.fault_ns
            for va in stream[i : i + k]:
                self.system.touch(process, int(va))
            cycles = (stats.translation_cycles - c0) * spec.walk_exposure
            cycles += k * spec.cpi_base
            latencies.append(
                cfg.request_base_service_ns
                + cycles / freq
                + (policy_stats.fault_ns - f0)
            )
        return latencies


@dataclass
class VirtRunConfig:
    """Knobs for one virtualized run (guest policy + host policy)."""

    workload: str
    guest_policy: str
    host_policy: str
    pv: bool = False
    pv_batched: bool = True
    guest_fragmented: bool = False
    n_accesses: int = 120_000
    seed: int = 7
    geometry: PageGeometry = SCALED_GEOMETRY
    #: same semantics as :attr:`RunConfig.geometry_name`; both guest and
    #: host machines are built from the preset
    geometry_name: str | None = None
    #: guest memory in large regions; None = a 160-region ("160GB") VM,
    #: floored at 1.15x the footprint
    guest_regions: int | None = None
    host_headroom: float = 1.2
    settle_ticks: int = 300
    guest_daemon_budget_ns: float = 2_000_000.0
    #: total guest khugepaged CPU for the whole run, in seconds.  None =
    #: unthrottled (settle to convergence).  Figure 13 sets this to ~10% of
    #: the represented runtime: the capped daemon may not finish its work,
    #: and how far it gets depends on how expensive promotion is - the
    #: opening Trident-pv exploits.
    guest_daemon_total_s: float | None = None
    fragment_kwargs: dict = field(default_factory=dict)
    #: observability (instruments the *guest* system; the host runs bare)
    trace: bool = False
    trace_subsystems: tuple[str, ...] | None = None
    trace_capacity: int = 65536
    metrics_out: str | None = None
    #: sampled runtime invariant auditing of both guest and host systems,
    #: plus the post-hypercall pv bijectivity check; None = audit_enabled()
    audit: bool | None = None
    audit_every: int = 4096
    #: simulated-time timeline of the guest system (same semantics as
    #: :class:`RunConfig`)
    timeline: bool | None = None
    timeline_interval_ms: float = 0.5
    timeline_out: str | None = None
    report_out: str | None = None
    #: append Prometheus-text scrape frames of the guest registry here
    telemetry_out: str | None = None
    telemetry_interval_ms: float = 1.0


class VirtRunner:
    """Runs one workload inside a VM: guest and host each run a policy.

    ``pv=True`` swaps the guest policy for Trident-pv (the guest policy name
    is then ignored apart from ablation flags).  ``guest_fragmented``
    fragments *guest-physical* memory, the Figure 13 setup, which also caps
    the guest's khugepaged budget via ``guest_daemon_budget_ns``.
    """

    def __init__(self, config: VirtRunConfig) -> None:
        from repro.virt.hypercall import PVExchangeInterface
        from repro.virt.machine import VirtualMachine
        from repro.virt.tridentpv import TridentPVPolicy

        self.config = config
        self.workload = get_workload(config.workload)
        preset = None
        geometry = config.geometry
        if config.geometry_name:
            from repro.geometries import resolve_geometry

            preset = resolve_geometry(config.geometry_name)
            geometry = preset.geometry
        footprint = self.workload.footprint_bytes
        if config.guest_regions is not None:
            guest_regions = config.guest_regions
        else:
            guest_regions = max(
                160, int(footprint * 1.15) // geometry.large_size + 1
            )
        host_regions = max(
            guest_regions + 8, int(guest_regions * config.host_headroom)
        )
        if preset is not None:
            guest_machine = preset.machine(guest_regions)
            host_machine = preset.machine(host_regions)
        else:
            guest_machine = default_machine(guest_regions, geometry)
            host_machine = default_machine(host_regions, geometry)

        if config.pv:
            def guest_factory(kernel):
                pv = PVExchangeInterface(
                    kernel.hypervisor, kernel.cost, obs=kernel.obs
                )
                return TridentPVPolicy(kernel, pv, batched=config.pv_batched)
        else:
            guest_factory = policy_factory(config.guest_policy)

        self.obs = _build_obs(config)
        self.vm = VirtualMachine(
            guest_machine,
            host_machine,
            guest_factory,
            policy_factory(config.host_policy),
            seed=config.seed,
            guest_daemon_budget_ns=config.guest_daemon_budget_ns,
            guest_obs=self.obs,
        )
        want_audit = config.audit if config.audit is not None else audit_enabled()
        if want_audit:
            from repro.lint.invariants import attach_auditor

            attach_auditor(self.vm.guest, every=config.audit_every)
            # The host auditor carries the hypervisor so sampled audits
            # (and every exchange hypercall) verify pv bijectivity.  The
            # host system runs bare (no obs of its own), so its audit
            # counters are routed into this run's registry.
            attach_auditor(
                self.vm.host,
                every=config.audit_every,
                hypervisor=self.vm.hypervisor,
                obs=self.obs,
            )

    def run(self) -> RunMetrics:
        cfg = self.config
        scraper = attach_telemetry(self.obs, cfg)
        if cfg.guest_fragmented:
            self.vm.guest.fragment(**cfg.fragment_kwargs)
        process = self.vm.create_guest_process(cfg.workload)
        rng = np.random.default_rng(cfg.seed)
        api = _WorkloadAPI(self.vm.guest, process, rng)
        self.workload.setup(api)
        if cfg.guest_daemon_total_s is None:
            runtime_est_ns = (
                self.workload.represented_accesses
                * self.workload.spec.cpi_base
                * 1.3
                / 2.3
            )
            self._settle_uncapped(0.5 * runtime_est_ns)
            process.tlb.stats = type(process.tlb.stats)()
            for chunk in self.workload.iter_batches(api, cfg.n_accesses):
                self.vm.guest.touch_batch(process, chunk)
        else:
            # Capped mode measures the whole run: the capped daemons make
            # progress *while* the application executes, so the counters
            # reflect each policy's page-size coverage ramp, not just its
            # final state - the effect Figure 13 isolates.  Interleaving
            # slices the stream by daemon quanta itself, so it keeps the
            # materialized form.
            stream = self.workload.access_stream(api, cfg.n_accesses)
            process.tlb.stats = type(process.tlb.stats)()
            self._run_capped_interleaved(
                process, stream, cfg.guest_daemon_total_s * 1e9
            )
        model = PerfModel(
            cpi_base=self.workload.spec.cpi_base,
            represented_accesses=self.workload.represented_accesses,
            walk_exposure=self.workload.spec.walk_exposure,
            fault_parallelism=self.workload.spec.threads,
            daemon_exposure=0.5,  # a tenant pays for guest daemon vCPU time
        )
        metrics = model.collect(self.vm.guest, process, cfg.workload)
        # Fold in host-side costs.  EPT faults sit on the guest's critical
        # path.  The *hypervisor's* daemons (host khugepaged re-promoting
        # split EPT ranges, host compaction) run on otherwise-idle host
        # cores: they carry native-level exposure (0.1), not the guest
        # vCPU exposure, so rescale before folding into the single knob.
        metrics.fault_ns += self.vm.host.policy.stats.fault_ns
        # Hypervisor daemons (EPT re-promotion, host compaction) run on host
        # cores the tenant does not pay for; only slight memory-bandwidth
        # interference leaks through.
        host_exposure = 0.02
        metrics.daemon_ns += self.vm.host.policy.stats.daemon_ns * (
            host_exposure / metrics.daemon_exposure
        )
        metrics.policy = self._label()
        for system in (self.vm.guest, self.vm.host):
            if system.auditor is not None:
                system.auditor.audit()  # final audit: every run gets >= 1
        if self.obs.timeline is not None:
            self.obs.timeline.sample()  # closing sample at end-of-run state
        if scraper is not None:
            scraper.close()  # final frame at end-of-run state
        emit_metrics_json(
            self.obs,
            metrics,
            cfg.metrics_out,
            auditors=(self.vm.guest.auditor, self.vm.host.auditor),
        )
        export_timeline_artifacts(self.obs, metrics, cfg)
        return metrics

    def _settle_uncapped(self, total_ns: float) -> None:
        """Both levels' daemons run freely, bounded by the run's duration."""
        guest = self.vm.guest
        stats = guest.policy.stats
        quiet = 0
        last = (dict(stats.promoted), dict(stats.demoted))
        for tick in range(self.config.settle_ticks):
            if stats.daemon_ns >= total_ns:
                break
            guest.run_daemons(1e9)
            if tick % 10 == 0:
                self.vm.host.run_daemons(1e9)
            now = (dict(stats.promoted), dict(stats.demoted))
            throttled = getattr(guest.policy, "_debt_ns", 0.0) > 0.0
            quiet = quiet + 1 if (now == last and not throttled) else 0
            last = now
            if quiet >= 5:
                break
        self.vm.host.settle_until_quiet(max_ticks=120, budget_ns=1e9)

    def _run_capped_interleaved(
        self, process, stream, total_ns: float, n_chunks: int = 32
    ) -> None:
        """Interleave the access stream with the capped daemon allowance.

        The guest's khugepaged gets ``total_ns`` of CPU spread evenly across
        the run (its 10%-of-a-vCPU cap), so translation counters integrate
        over the coverage ramp.  The host's (uncapped) daemons keep pace and
        re-promote EPT ranges the exchange hypercall split."""
        guest = self.vm.guest
        budget = max(self.config.guest_daemon_budget_ns, total_ns / 2000.0)
        chunks = np.array_split(stream, n_chunks)
        for i, chunk in enumerate(chunks):
            guest.touch_batch(process, chunk)
            target = total_ns * (i + 1) / n_chunks
            ticks = 0
            while (
                guest.policy.stats.daemon_ns < target
                and ticks < 40 * n_chunks
            ):
                guest.run_daemons(budget)
                ticks += 1
            # The hypervisor's khugepaged is uncapped and repairs split EPT
            # ranges promptly (it has a whole host CPU to itself).
            self.vm.host.settle_until_quiet(max_ticks=12, budget_ns=2e9)
        self.vm.host.settle_until_quiet(max_ticks=120, budget_ns=1e9)

    def _label(self) -> str:
        guest = "Trident-pv" if self.config.pv else self.config.guest_policy
        return f"{guest}+{self.config.host_policy}"
