"""Figure 10: THP vs HawkEye vs Trident on *fragmented* memory.

The realistic scenario: physical memory is pre-fragmented (FMFI ~0.95)
before the workload starts.  Trident's smart compaction gives it an extra
edge here: the paper reports +18% over THP on average (GUPS > +50%), and
HawkEye can fall *behind* THP (Redis, Memcached) due to kbinmanager CPU
overhead and lock contention.
"""

from __future__ import annotations

from repro.experiments.figure9 import run as _run
from repro.experiments.figure9 import summarize  # noqa: F401 - sweep merge hook
from repro.experiments.report import print_and_save
from repro.workloads.registry import SHADED_EIGHT

CSV_NAME = "figure10"
TITLE = "Figure 10: performance (a) and walk cycles (b) vs THP, fragmented"
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 8_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 100_000,
    seed: int = 7,
) -> list[dict]:
    return _run(workloads, n_accesses, seed, fragmented=True)


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows + summarize(rows), CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
