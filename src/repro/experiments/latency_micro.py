"""Section 5.1.2 / Section 6 latency microbenchmarks.

Reproduces the paper's quoted wall-clock numbers at real x86 scale
(1GB pages, not the scaled geometry):

* 1GB page fault: ~400 ms with synchronous zero-fill vs ~2.7 ms with the
  async zero-fill pool; 2MB fault ~850 us.
* VM boot: zeroing 70GB of guest memory drops from ~25 s to ~13 s of
  boot-visible time with async zero-fill overlapping boot work.
* 1GB promotion in a guest: ~600 ms copy-based, ~30 ms with unbatched
  exchange hypercalls, ~500 us batched (512 exchanges per hypercall).
* A batching sweep showing where the hypercall amortizes.
"""

from __future__ import annotations

from repro.config import X86_GEOMETRY, CostModel
from repro.experiments.report import print_and_save

CSV_NAME = "latency_micro"
TITLE = "Latency microbenchmarks (x86 scale)"
#: pure closed-form arithmetic over the cost model — nothing to shrink
QUICK_KWARGS: dict = {}

#: boot-time work (decompress, init, device setup) that zeroing overlaps with
_VM_BOOT_BASE_S = 12.0
#: fraction of guest RAM the boot sequence actually touches (and so must
#: zero synchronously on the sync path)
_BOOT_TOUCH_FRACTION = 0.48
#: fraction of boot-time zeroing the async thread hides behind other work
_ASYNC_HIDE_FRACTION = 0.95


def run() -> list[dict]:
    cost = CostModel()
    geometry = X86_GEOMETRY
    rows = []

    sync_1g = cost.fault_fixed_ns + cost.zero_ns(geometry.large_size)
    async_1g = cost.large_fault_mapped_ns
    sync_2m = cost.fault_fixed_ns + cost.zero_ns(geometry.mid_size)
    rows.append(
        {
            "metric": "1GB fault, sync zero (ms)",
            "measured": sync_1g / 1e6,
            "paper": 400.0,
        }
    )
    rows.append(
        {
            "metric": "1GB fault, async pool (ms)",
            "measured": async_1g / 1e6,
            "paper": 2.7,
        }
    )
    rows.append(
        {"metric": "2MB fault (us)", "measured": sync_2m / 1e3, "paper": 850.0}
    )

    # VM boot: zero 70GB of guest RAM.
    boot_zero_s = cost.zero_ns(70 * (1 << 30)) / 1e9
    rows.append(
        {
            "metric": "70GB VM boot, sync zeroing (s)",
            "measured": _VM_BOOT_BASE_S + _BOOT_TOUCH_FRACTION * boot_zero_s,
            "paper": 25.0,
        }
    )
    rows.append(
        {
            "metric": "70GB VM boot, async zeroing (s)",
            "measured": _VM_BOOT_BASE_S + (1 - _ASYNC_HIDE_FRACTION) * boot_zero_s,
            "paper": 13.0,
        }
    )

    # Guest 1GB promotion: copy vs pv exchange (512 x 2MB chunks).
    exchanges = geometry.mids_per_large
    copy_ms = cost.copy_ns(geometry.large_size) / 1e6
    unbatched_ms = exchanges * (cost.hypercall_ns + cost.exchange_unbatched_ns) / 1e6
    batched_us = (cost.hypercall_ns + exchanges * cost.exchange_batched_ns) / 1e3
    rows.append(
        {"metric": "1GB promotion, copy (ms)", "measured": copy_ms, "paper": 600.0}
    )
    rows.append(
        {
            "metric": "1GB promotion, pv unbatched (ms)",
            "measured": unbatched_ms,
            "paper": 30.0,
        }
    )
    rows.append(
        {
            "metric": "1GB promotion, pv batched (us)",
            "measured": batched_us,
            "paper": 500.0,
        }
    )

    # Batching sweep: latency per 1GB promotion vs batch size.
    for batch in (1, 8, 64, 512):
        calls = -(-exchanges // batch)
        ns = calls * cost.hypercall_ns + exchanges * cost.exchange_batched_ns
        rows.append(
            {
                "metric": f"pv promotion, batch={batch} (us)",
                "measured": ns / 1e3,
                "paper": "",
            }
        )
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    del quick, seed  # closed-form: no run size, no randomness
    rows = run()
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
