"""Figure 2: page sizes under virtualization (guest+host pairs).

Three of the paper's nine combinations — 4KB+4KB, 2MB+2MB, 1GB+1GB (guest
page size + host page size, both static-best via hugetlbfs except the 4KB
baseline) — measured on walk-cycle fraction and normalized performance.
The nested (2D) walk makes large pages even more valuable here: the eight
shaded applications speed up 17.6% on average with 1GB over 2MB pages, and
BC becomes slightly 1GB-sensitive although it was not natively.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import VirtRunConfig, VirtRunner
from repro.workloads.registry import ALL_WORKLOADS

#: (label, guest policy, host policy)
COMBOS = (
    ("4KB+4KB", "4KB", "4KB"),
    ("2MB+2MB", "2MB-Hugetlbfs", "2MB-Hugetlbfs"),
    ("1GB+1GB", "1GB-Hugetlbfs", "1GB-Hugetlbfs"),
)

CSV_NAME = "figure2"
TITLE = (
    "Figure 2: normalized walk-cycle fraction (a) and performance (b), "
    "virtualized"
)
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 4_000}


def run(
    workloads: tuple[str, ...] = ALL_WORKLOADS,
    n_accesses: int = 80_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {}
        for label, guest, host in COMBOS:
            runner = VirtRunner(
                VirtRunConfig(workload, guest, host, n_accesses=n_accesses, seed=seed)
            )
            metrics[label] = runner.run()
        base = metrics["4KB+4KB"]
        row: dict = {"workload": workload}
        for label, _, _ in COMBOS:
            row[f"walk_frac:{label}"] = metrics[label].walk_fraction_vs(base)
        for label, _, _ in COMBOS:
            row[f"perf:{label}"] = metrics[label].speedup_over(base)
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
