"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Equivalent of the paper artifact's "run all experiments then
compile_report.py" flow, run serially and in-process.  ``--quick`` runs
every module's reduced-size configuration (its ``QUICK_KWARGS``) and
*verifies first* that every selected module actually implements quick
mode — a module that would silently ignore the flag and run full-size
fails the sweep up front with a readable error instead.

For the parallel version of this flow (process pool, per-unit seeds,
retries, run manifest) use ``python -m repro sweep`` — see
:mod:`repro.experiments.orchestrator`.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time

from repro.experiments import (
    bloat,
    cross_isa,
    extension_5level,
    extension_heat,
    sensitivity,
    figure1,
    figure2,
    figure2_full,
    figure3,
    figure4,
    figure7,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    kernel_directmap,
    latency_micro,
    table3,
    table4,
    table5,
)

MODULES = (
    ("figure1", figure1),
    ("figure2", figure2),
    ("figure3", figure3),
    ("figure4", figure4),
    ("table3", table3),
    ("table4", table4),
    ("figure7", figure7),
    ("figure9", figure9),
    ("figure10", figure10),
    ("figure11", figure11),
    ("figure12", figure12),
    ("figure13", figure13),
    ("table5", table5),
    ("latency_micro", latency_micro),
    ("bloat", bloat),
    ("kernel_directmap", kernel_directmap),
    ("extension_5level", extension_5level),
    ("figure2_full", figure2_full),
    ("sensitivity", sensitivity),
    ("extension_heat", extension_heat),
    ("cross_isa", cross_isa),
)


class QuickModeError(RuntimeError):
    """A module cannot honor quick mode (it would silently run full-size)."""


def validate_quick_support(name: str, module) -> None:
    """Assert ``module`` really implements the quick/seed protocol.

    Every experiment module must expose ``main(quick=..., seed=...)`` and
    a ``QUICK_KWARGS`` dict whose keys its ``run`` entrypoint accepts.
    Anything less means ``--quick`` (or a sweep unit's derived seed) would
    be silently dropped — the failure mode this check turns into a loud,
    attributable error.
    """
    main_fn = getattr(module, "main", None)
    if not callable(main_fn):
        raise QuickModeError(f"{name}: module has no callable main()")
    params = inspect.signature(main_fn).parameters
    for required in ("quick", "seed"):
        if required not in params:
            raise QuickModeError(
                f"{name}: main() does not accept {required}=... — the flag "
                f"would be silently ignored and the module would run "
                f"full-size"
            )
    quick_kwargs = getattr(module, "QUICK_KWARGS", None)
    if not isinstance(quick_kwargs, dict):
        raise QuickModeError(
            f"{name}: no QUICK_KWARGS dict defining its reduced-size "
            f"configuration"
        )
    run_fn = getattr(module, "run", None)
    if callable(run_fn):
        run_params = inspect.signature(run_fn).parameters
        unknown = sorted(set(quick_kwargs) - set(run_params))
        if unknown:
            raise QuickModeError(
                f"{name}: QUICK_KWARGS keys {unknown} are not accepted by "
                f"run() — quick mode would not actually shrink the run"
            )


def _parse(argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.run_all",
        description="regenerate every figure/table serially",
    )
    parser.add_argument(
        "modules",
        nargs="*",
        help="subset of module names to run (default: all)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced-size pass (each module's QUICK_KWARGS)",
    )
    parser.add_argument("--seed", type=int, default=7)
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    args = _parse(argv)
    table = dict(MODULES)
    unknown = sorted(set(args.modules) - set(table))
    if unknown:
        raise SystemExit(
            f"unknown experiment module(s): {', '.join(unknown)}; "
            f"choose from {', '.join(name for name, _ in MODULES)}"
        )
    selected = [
        (name, module)
        for name, module in MODULES
        if not args.modules or name in args.modules
    ]
    if args.quick:
        problems = []
        for name, module in selected:
            try:
                validate_quick_support(name, module)
            except QuickModeError as exc:
                problems.append(str(exc))
        if problems:
            raise QuickModeError(
                "quick mode not honored by every module:\n  "
                + "\n  ".join(problems)
            )
    for name, module in selected:
        start = time.time()
        print(f"=== {name} ===")
        module.main(quick=args.quick, seed=args.seed)
        print(f"[{name} done in {time.time() - start:.0f}s]\n")


if __name__ == "__main__":
    main()
