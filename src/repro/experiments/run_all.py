"""Regenerate every table and figure: ``python -m repro.experiments.run_all``.

Equivalent of the paper artifact's "run all experiments then
compile_report.py" flow.  Expect the full sweep to take tens of minutes;
pass ``--quick`` for a reduced-size pass (fewer accesses, subset checks
still meaningful).
"""

from __future__ import annotations

import sys
import time

from repro.experiments import (
    bloat,
    extension_5level,
    extension_heat,
    sensitivity,
    figure1,
    figure2,
    figure2_full,
    figure3,
    figure4,
    figure7,
    figure9,
    figure10,
    figure11,
    figure12,
    figure13,
    kernel_directmap,
    latency_micro,
    table3,
    table4,
    table5,
)

MODULES = (
    ("figure1", figure1),
    ("figure2", figure2),
    ("figure3", figure3),
    ("figure4", figure4),
    ("table3", table3),
    ("table4", table4),
    ("figure7", figure7),
    ("figure9", figure9),
    ("figure10", figure10),
    ("figure11", figure11),
    ("figure12", figure12),
    ("figure13", figure13),
    ("table5", table5),
    ("latency_micro", latency_micro),
    ("bloat", bloat),
    ("kernel_directmap", kernel_directmap),
    ("extension_5level", extension_5level),
    ("figure2_full", figure2_full),
    ("sensitivity", sensitivity),
    ("extension_heat", extension_heat),
)


def main(argv: list[str] | None = None) -> None:
    argv = sys.argv[1:] if argv is None else argv
    only = [a for a in argv if not a.startswith("-")]
    for name, module in MODULES:
        if only and name not in only:
            continue
        start = time.time()
        print(f"=== {name} ===")
        module.main()
        print(f"[{name} done in {time.time() - start:.0f}s]\n")


if __name__ == "__main__":
    main()
