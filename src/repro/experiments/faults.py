"""Fault-injection unit targets for exercising the orchestrator.

These are real worker targets (resolved by dotted path inside a worker
process, exactly like the experiment units) that fail in the three ways a
sweep unit can fail: raise an exception, hang past the wall-clock
timeout, or kill the worker process outright.  The orchestrator's tests
schedule them next to healthy units to verify retry/backoff accounting,
manifest status fields, and graceful degradation of the report compiler.
"""

from __future__ import annotations

import json
import os
import time


def healthy_unit(out_dir: str, token: str = "ok", seed: int = 0, **_) -> dict:
    """Completes normally: writes one JSON artifact and reports it."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"healthy_{token}.json")
    with open(path, "w") as f:
        json.dump({"token": token, "seed": seed}, f)
    return {"outputs": [path], "metrics": []}


def raising_unit(message: str = "injected failure", **_) -> dict:
    """Raises inside the worker: the unit ends up ``failed``."""
    raise RuntimeError(message)


def sleeping_unit(sleep_s: float = 3600.0, **_) -> dict:
    """Sleeps past any reasonable timeout: the unit ends up ``timeout``."""
    time.sleep(sleep_s)
    return {"outputs": [], "metrics": []}


def exiting_unit(code: int = 3, **_) -> dict:
    """Kills the worker without a reply: the unit ends up ``crashed``."""
    os._exit(code)


def flaky_unit(
    out_dir: str, fail_times: int = 1, token: str = "flaky", seed: int = 0, **_
) -> dict:
    """Fails the first ``fail_times`` attempts, then succeeds.

    Attempt state is kept on disk (workers are separate processes), which
    is exactly how a transiently-broken experiment behaves across retries.
    """
    os.makedirs(out_dir, exist_ok=True)
    marker = os.path.join(out_dir, f"attempts_{token}.txt")
    attempts = 0
    if os.path.exists(marker):
        with open(marker) as f:
            attempts = int(f.read().strip() or 0)
    attempts += 1
    with open(marker, "w") as f:
        f.write(str(attempts))
    if attempts <= fail_times:
        raise RuntimeError(f"flaky failure {attempts}/{fail_times}")
    return healthy_unit(out_dir, token=token, seed=seed)
