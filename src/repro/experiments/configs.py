"""Named policy configurations used across the evaluation.

These are the bar labels of the paper's figures.  Each value is a factory
``kernel -> MemoryPolicy`` suitable for :class:`repro.sim.system.System`.
"""

from __future__ import annotations

from repro.core.baseline4k import Baseline4KPolicy
from repro.core.hawkeye import HawkEyePolicy
from repro.core.hugetlbfs import HugetlbfsPolicy
from repro.core.ingens import IngensPolicy
from repro.core.madvise import MadvisePolicy
from repro.core.thp import THPPolicy
from repro.core.trident import TridentPolicy
from repro.core.trident_heat import TridentHeatPolicy

POLICY_CONFIGS = {
    "4KB": Baseline4KPolicy,
    "2MB-THP": THPPolicy,
    "2MB-Hugetlbfs": lambda kernel: HugetlbfsPolicy(
        kernel, kernel.geometry.thp_level
    ),
    "1GB-Hugetlbfs": lambda kernel: HugetlbfsPolicy(
        kernel, kernel.geometry.top_level
    ),
    "HawkEye": HawkEyePolicy,
    "Ingens": IngensPolicy,
    "Trident": TridentPolicy,
    "Trident-heat": TridentHeatPolicy,
    "Trident-madvise": MadvisePolicy,
    "Trident-1Gonly": lambda kernel: TridentPolicy(kernel, use_mid=False),
    "Trident-NC": lambda kernel: TridentPolicy(kernel, smart_compaction=False),
    # Table 3's "page-fault only" mechanism: no khugepaged promotion at all.
    "Trident-PFonly": lambda kernel: TridentPolicy(kernel, promote=False),
}


def policy_factory(name: str):
    try:
        return POLICY_CONFIGS[name]
    except KeyError:
        raise KeyError(
            f"unknown policy config {name!r}; choose from {sorted(POLICY_CONFIGS)}"
        ) from None


def resolve_policy(name: str) -> str:
    """Map a possibly lower-cased policy name to its canonical spelling."""
    if name in POLICY_CONFIGS:
        return name
    folded = {key.lower(): key for key in POLICY_CONFIGS}
    return folded.get(name.lower(), name)
