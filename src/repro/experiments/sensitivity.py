"""Sensitivity sweeps: how robust are the paper's conclusions?

Beyond-the-paper analysis: sweep the environment knobs the paper holds
fixed and check where Trident's advantage over THP grows, shrinks, or
inverts.

* **fragmentation severity** — residual page-cache fraction from 0 (fresh
  boot) to heavy: Trident's edge should grow with fragmentation (smart
  compaction) until memory is so full nothing can be compacted.
* **1GB TLB capacity** — the micro-architectural question the paper ends
  on ("motivates micro-architects to continue enhancing hardware support"):
  how much of the win needs how many 1GB TLB entries?
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SCALE_FACTOR, SCALED_GEOMETRY, TLBConfig
from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig


def run_fragmentation_sweep(
    workload: str = "GUPS",
    residuals: tuple[float, ...] = (0.0, 0.15, 0.30, 0.45),
    n_accesses: int = 40_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for residual in residuals:
        metrics = {}
        for policy in ("2MB-THP", "Trident"):
            cfg = RunConfig(
                workload,
                policy,
                fragmented=residual > 0,
                n_accesses=n_accesses,
                seed=seed,
                fragment_kwargs=dict(residual_fraction=residual),
            )
            metrics[policy] = NativeRunner(cfg).run()
        trident = metrics["Trident"]
        rows.append(
            {
                "residual_cache_fraction": residual,
                "trident_vs_thp": metrics["2MB-THP"].runtime_ns
                / trident.runtime_ns,
                "trident_1gb_gb": (trident.mapped_bytes_by_size or {}).get(
                    SCALED_GEOMETRY.top_level, 0
                )
                * SCALE_FACTOR
                / (1 << 30),
                "fault_large_fail_pct": (
                    100.0
                    * trident.fault_large_failures
                    / max(1, trident.fault_large_attempts)
                ),
            }
        )
    return rows


def run_tlb_capacity_sweep(
    workload: str = "GUPS",
    l2_large_entries: tuple[int, ...] = (4, 16, 64, 256),
    n_accesses: int = 40_000,
    seed: int = 7,
) -> list[dict]:
    """Sweep the 1GB L2 TLB size (16 on Skylake; 1024 on Ice Lake)."""
    rows = []
    base_metrics = NativeRunner(
        RunConfig(workload, "2MB-THP", n_accesses=n_accesses, seed=seed)
    ).run()
    for entries in l2_large_entries:
        runner = NativeRunner(
            RunConfig(workload, "Trident", n_accesses=n_accesses, seed=seed)
        )
        machine = runner.machine
        new_tlb = replace(machine.tlb, l2_large=TLBConfig(entries, 4))
        runner.system.machine = replace(machine, tlb=new_tlb)
        runner.machine = runner.system.machine
        metrics = runner.run()
        rows.append(
            {
                "l2_1gb_entries": entries,
                "trident_vs_thp": base_metrics.runtime_ns / metrics.runtime_ns,
                "walk_cycles_per_access": metrics.walk_cycles_per_access,
            }
        )
    return rows


CSV_NAME = ("sensitivity_fragmentation", "sensitivity_tlb")
TITLE = "Sensitivity: fragmentation severity and 1GB L2 TLB capacity"
QUICK_KWARGS = {"n_accesses": 6_000}


def run(n_accesses: int = 40_000, seed: int = 7) -> list[dict]:
    rows = []
    for row in run_fragmentation_sweep(n_accesses=n_accesses, seed=seed):
        rows.append({"sweep": "fragmentation", **row})
    for row in run_tlb_capacity_sweep(n_accesses=n_accesses, seed=seed):
        rows.append({"sweep": "tlb_capacity", **row})
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    kwargs = dict(QUICK_KWARGS) if quick else {}
    frag = run_fragmentation_sweep(seed=seed, **kwargs)
    print_and_save(
        frag, CSV_NAME[0], "Sensitivity: fragmentation severity (GUPS)"
    )
    tlb = run_tlb_capacity_sweep(seed=seed, **kwargs)
    print_and_save(tlb, CSV_NAME[1], "Sensitivity: 1GB L2 TLB capacity (GUPS)")


if __name__ == "__main__":
    main()
