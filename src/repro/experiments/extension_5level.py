"""Extension: Trident under 5-level page tables (LA57).

The paper's motivation (Sections 1-2, citing [25]): newer processors add a
fifth page-table level, making base-page walks cost up to 5 accesses
natively and 35 under virtualization — "the need for low-overhead address
translation has never been greater".  This experiment quantifies that:
the same workloads and policies run under 4-level and 5-level walk
configurations, showing 1GB pages' advantage widening.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig

WORKLOADS = ("GUPS", "Canneal", "XSBench")
CONFIGS = ("2MB-THP", "Trident")

CSV_NAME = "extension_5level"
TITLE = "Extension: Trident's advantage under 4- vs 5-level page tables"
QUICK_KWARGS = {"workloads": ("GUPS",), "n_accesses": 6_000}


def run(
    workloads: tuple[str, ...] = WORKLOADS,
    n_accesses: int = 60_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        row: dict = {"workload": workload}
        for levels in (4, 5):
            metrics = {}
            for cfg in CONFIGS:
                metrics[cfg] = NativeRunner(
                    RunConfig(
                        workload,
                        cfg,
                        n_accesses=n_accesses,
                        seed=seed,
                        walk_levels=levels,
                    )
                ).run()
            gain = metrics["2MB-THP"].runtime_ns / metrics["Trident"].runtime_ns
            row[f"{levels}level:trident_vs_thp"] = gain
            row[f"{levels}level:walk_cpa_thp"] = metrics[
                "2MB-THP"
            ].walk_cycles_per_access
            row[f"{levels}level:walk_cpa_trident"] = metrics[
                "Trident"
            ].walk_cycles_per_access
        row["gain_delta_pct"] = 100.0 * (
            row["5level:trident_vs_thp"] - row["4level:trident_vs_thp"]
        )
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
