"""Extension: heat-ordered Trident promotion under scarce daemon CPU.

The paper's Section 8 suggests grafting HawkEye's fine-grained promotion
onto Trident.  This experiment measures where that pays: with an uncapped
khugepaged both variants converge to the same coverage, but with a capped
daemon (the Figure 13 regime) the heat-ordered scan promotes the *hottest*
1GB-mappable regions first, buying more walk-cycle reduction per unit of
promotion work.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig

WORKLOADS = ("Redis", "Canneal")
CONFIGS = ("Trident", "Trident-heat")

CSV_NAME = "extension_heat"
TITLE = "Extension: heat-ordered Trident promotion (Section 8 future work)"
QUICK_KWARGS = {"workloads": ("Redis",), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = WORKLOADS,
    n_accesses: int = 50_000,
    seed: int = 7,
    scarce_fraction: float = 0.02,
) -> list[dict]:
    rows = []
    for workload in workloads:
        row: dict = {"workload": workload}
        for regime, fraction in (("scarce", scarce_fraction), ("ample", 0.5)):
            metrics = {}
            for cfg in CONFIGS:
                runner = NativeRunner(
                    RunConfig(
                        workload,
                        cfg,
                        fragmented=True,
                        n_accesses=n_accesses,
                        seed=seed,
                    )
                )
                runner.config.daemon_total_fraction = fraction
                metrics[cfg] = runner.run()
            row[f"{regime}:heat_vs_trident"] = metrics["Trident"].runtime_ns / metrics[
                "Trident-heat"
            ].runtime_ns
            row[f"{regime}:walk_cpa_trident"] = metrics[
                "Trident"
            ].walk_cycles_per_access
            row[f"{regime}:walk_cpa_heat"] = metrics[
                "Trident-heat"
            ].walk_cycles_per_access
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
