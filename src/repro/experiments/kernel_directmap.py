"""Section 4.3's side study: 1GB pages for the kernel's direct map.

"The kernel direct maps entire physical memory with the largest page size
... Using OS intensive workloads (e.g., apache web server and filebench),
we found that 1GB pages improve kernel's performance by 2-3% over 2MB
pages."

The kernel's direct map covers all physical memory, so its TLB behaviour is
pure address arithmetic over physical addresses — no OS policy involved.
This experiment models an OS-intensive workload (filebench/apache-style:
page-cache lookups, dentry/inode walks, skb buffers) as a random-ish access
stream over the direct map and measures kernel-side walk cycles with the
direct map built from 2MB vs 1GB pages.
"""

from __future__ import annotations

import numpy as np

from repro.config import default_machine
from repro.experiments.report import print_and_save
from repro.tlb.hierarchy import TLBHierarchy
from repro.vm.pagetable import PageTable
from repro.workloads import access

#: kernel cycles per direct-map access that are NOT translation: syscall
#: entry/exit, locking, copies, softirq work.  Kernel code is mostly not
#: TLB-bound, which is why the paper's direct-map gain is only 2-3%.
KERNEL_CPI = 800.0

CSV_NAME = "kernel_directmap"
TITLE = "Section 4.3: kernel direct map with 2MB vs 1GB pages (paper: 2-3%)"
QUICK_KWARGS = {"memory_regions": 64, "n_accesses": 20_000}


def run(
    memory_regions: int = 192,
    n_accesses: int = 120_000,
    seed: int = 7,
) -> list[dict]:
    machine = default_machine(memory_regions)
    geometry = machine.geometry
    total = machine.total_bytes
    rng = np.random.default_rng(seed)
    # The access stream: page-cache radix lookups (zipf over file pages),
    # inode/dentry chases (uniform over slab areas), skb/ring buffers
    # (sequential).  All physical addresses under the direct map.
    stream = access.mixture(
        rng,
        [
            (0.55, access.zipf(rng, 0, int(total * 0.7), n_accesses, alpha=1.35)),
            (0.30, access.uniform(rng, int(total * 0.7), int(total * 0.25), n_accesses // 2)),
            (0.15, access.sequential(int(total * 0.95), int(total * 0.05), n_accesses // 2, stride=256)),
        ],
        n_accesses,
    )
    rows = []
    directmap_levels = (geometry.thp_level, geometry.top_level)
    for size in directmap_levels:
        label = f"{geometry.label_for(size)} direct map"
        table = PageTable(geometry)
        step = geometry.bytes_for(size)
        for pa in range(0, total, step):
            table.map_page(pa, size, pa // geometry.base_size)
        tlb = TLBHierarchy(machine.tlb, machine.walk, geometry)
        for pa in stream:
            mapping = table.translate(int(pa))
            tlb.access(int(pa), mapping)
        stats = tlb.stats
        walk_cpa = stats.walk_cycles / stats.accesses
        kernel_cycles = KERNEL_CPI + stats.translation_cycles / stats.accesses
        rows.append(
            {
                "direct_map": label,
                "walks_per_access": stats.walks_per_access,
                "walk_cycles_per_access": walk_cpa,
                "kernel_cycles_per_access": kernel_cycles,
            }
        )
    mid, large = rows
    gain = (
        mid["kernel_cycles_per_access"] / large["kernel_cycles_per_access"] - 1
    ) * 100
    rows.append(
        {
            "direct_map": "1GB vs 2MB kernel speedup (%)",
            "walks_per_access": "",
            "walk_cycles_per_access": "",
            "kernel_cycles_per_access": gain,
        }
    )
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
