"""Table 3: memory mapped as 1GB / 2MB pages by each Trident mechanism.

Three mechanisms x two memory states, for the eight 1GB-sensitive
applications:

* **Page-fault only** — Trident with khugepaged promotion disabled: only
  first-touch faults can install large pages.  Pre-allocating workloads
  (XSBench, GUPS, Graph500) get nearly everything; incremental allocators
  (Redis, Btree) get almost nothing.
* **Promotion + normal compaction** — the full pipeline with Linux's
  sequential compaction.
* **Promotion + smart compaction** — full Trident.  Identical to normal
  compaction when memory is unfragmented (compaction never runs) and ahead
  of it under fragmentation (compaction succeeds more often).

Values are paper-scale GB (simulator bytes x the geometry scale factor).
"""

from __future__ import annotations

from repro.config import SCALE_FACTOR, SCALED_GEOMETRY
from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.workloads.registry import SHADED_EIGHT

MECHANISMS = (
    ("pf_only", "Trident-PFonly"),
    ("normal_compaction", "Trident-NC"),
    ("smart_compaction", "Trident"),
)

CSV_NAME = "table3"
TITLE = "Table 3: GB mapped with 1GB/2MB pages per allocation mechanism"
QUICK_KWARGS = {"workloads": ("GUPS",), "n_accesses": 3_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 40_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        row: dict = {"workload": workload}
        for fragmented in (False, True):
            state = "frag" if fragmented else "unfrag"
            for label, policy in MECHANISMS:
                metrics = NativeRunner(
                    RunConfig(
                        workload,
                        policy,
                        fragmented=fragmented,
                        n_accesses=n_accesses,
                        seed=seed,
                    )
                ).run()
                mapped = metrics.mapped_bytes_by_size
                row[f"{state}:{label}:1GB"] = (
                    mapped[SCALED_GEOMETRY.top_level] * SCALE_FACTOR / (1 << 30)
                )
                row[f"{state}:{label}:2MB"] = (
                    mapped[SCALED_GEOMETRY.thp_level] * SCALE_FACTOR / (1 << 30)
                )
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
