"""Figure 12: dynamic policies under virtualization (both levels).

Each policy is deployed at the guest OS *and* the hypervisor — THP+THP
(the baseline), HawkEye+HawkEye, Trident+Trident — with unfragmented
memory.  Paper: Trident +16% over THP and +15% over HawkEye on average;
Canneal gains the most (+50%).
"""

from __future__ import annotations

from repro.experiments.report import geomean, print_and_save
from repro.experiments.runner import VirtRunConfig, VirtRunner
from repro.workloads.registry import SHADED_EIGHT

CONFIGS = (
    ("2MB+2MB-THP", "2MB-THP", "2MB-THP"),
    ("HawkEye+HawkEye", "HawkEye", "HawkEye"),
    ("Trident+Trident", "Trident", "Trident"),
)


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 80_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {}
        for label, guest, host in CONFIGS:
            metrics[label] = VirtRunner(
                VirtRunConfig(workload, guest, host, n_accesses=n_accesses, seed=seed)
            ).run()
        base = metrics["2MB+2MB-THP"]
        row: dict = {"workload": workload}
        for label, _, _ in CONFIGS:
            row[f"perf:{label}"] = metrics[label].speedup_over(base)
        rows.append(row)
    summary = {"workload": "geomean"}
    for label, _, _ in CONFIGS:
        summary[f"perf:{label}"] = geomean(r[f"perf:{label}"] for r in rows)
    rows.append(summary)
    return rows


def main() -> None:
    rows = run()
    print_and_save(
        rows,
        "figure12",
        "Figure 12: virtualized performance, normalized to THP at both levels",
    )


if __name__ == "__main__":
    main()
