"""Figure 12: dynamic policies under virtualization (both levels).

Each policy is deployed at the guest OS *and* the hypervisor — THP+THP
(the baseline), HawkEye+HawkEye, Trident+Trident — with unfragmented
memory.  Paper: Trident +16% over THP and +15% over HawkEye on average;
Canneal gains the most (+50%).
"""

from __future__ import annotations

from repro.experiments.report import geomean, print_and_save
from repro.experiments.runner import VirtRunConfig, VirtRunner
from repro.workloads.registry import SHADED_EIGHT

CONFIGS = (
    ("2MB+2MB-THP", "2MB-THP", "2MB-THP"),
    ("HawkEye+HawkEye", "HawkEye", "HawkEye"),
    ("Trident+Trident", "Trident", "Trident"),
)

CSV_NAME = "figure12"
TITLE = "Figure 12: virtualized performance, normalized to THP at both levels"
QUICK_KWARGS = {"workloads": ("GUPS", "Redis"), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = SHADED_EIGHT,
    n_accesses: int = 80_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        metrics = {}
        for label, guest, host in CONFIGS:
            metrics[label] = VirtRunner(
                VirtRunConfig(workload, guest, host, n_accesses=n_accesses, seed=seed)
            ).run()
        base = metrics["2MB+2MB-THP"]
        row: dict = {"workload": workload}
        for label, _, _ in CONFIGS:
            row[f"perf:{label}"] = metrics[label].speedup_over(base)
        rows.append(row)
    return rows


def summarize(rows: list[dict]) -> list[dict]:
    """Geomean row over per-workload rows (recomputed by the sweep merge)."""
    summary = {"workload": "geomean"}
    for label, _, _ in CONFIGS:
        summary[f"perf:{label}"] = geomean(r[f"perf:{label}"] for r in rows)
    return [summary]


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows + summarize(rows), CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
