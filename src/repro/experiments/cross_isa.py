"""Extension: Trident vs THP reach across ISA page-size geometries.

The paper argues (Section 8) that Trident's design — use every
architectural page size the hardware offers, transparently — is not
x86-specific.  With the N-level :class:`~repro.config.PageGeometry`
redesign the same policies run unmodified on RISC-V SVNAPOT's four-level
ladder (4KB/64KB/2MB/1GB) and ARM's 16KB-granule ladder
(16KB/2MB-contig/32MB-block).  This experiment quantifies the claim: on
every geometry, THP stops at the geometry's ``thp_level`` while Trident
reaches the top level, and the runtime gap tracks how much of the
footprint the extra levels cover.

Per workload and geometry the CSV reports the Trident-over-THP runtime
gain, both policies' walk cycles per access, and the "reach" split: the
fraction of mapped bytes Trident backs with top-level pages vs the
fraction THP backs with its (single) huge-page level.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig
from repro.geometries import resolve_geometry

WORKLOADS = ("GUPS", "XSBench", "Redis")
GEOMETRIES = ("x86", "sv-napot", "arm16k")
CONFIGS = ("2MB-THP", "Trident")

CSV_NAME = "cross_isa"
TITLE = "Extension: Trident vs THP reach across page-size geometries"
QUICK_KWARGS = {"workloads": ("GUPS",), "n_accesses": 6_000}


def _mapped_fraction(metrics, levels) -> float:
    """Fraction of this run's mapped bytes held at the given levels."""
    by_size = metrics.mapped_bytes_by_size or {}
    total = sum(by_size.values())
    if not total:
        return 0.0
    return sum(by_size.get(level, 0) for level in levels) / total


def run(
    workloads: tuple[str, ...] = WORKLOADS,
    geometries: tuple[str, ...] = GEOMETRIES,
    n_accesses: int = 60_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        row: dict = {"workload": workload}
        for name in geometries:
            geometry = resolve_geometry(name).geometry
            metrics = {}
            for cfg in CONFIGS:
                metrics[cfg] = NativeRunner(
                    RunConfig(
                        workload,
                        cfg,
                        n_accesses=n_accesses,
                        seed=seed,
                        geometry_name=name,
                    )
                ).run()
            trident = metrics["Trident"]
            thp = metrics["2MB-THP"]
            row[f"{name}:trident_vs_thp"] = thp.runtime_ns / trident.runtime_ns
            row[f"{name}:walk_cpa_thp"] = thp.walk_cycles_per_access
            row[f"{name}:walk_cpa_trident"] = trident.walk_cycles_per_access
            # Reach: THP tops out at the geometry's thp_target level;
            # Trident additionally uses everything above it.
            above_thp = tuple(
                level
                for level in geometry.all_levels
                if level > geometry.thp_level
            )
            row[f"{name}:thp_reach"] = _mapped_fraction(
                thp, (geometry.thp_level,)
            )
            row[f"{name}:trident_reach"] = _mapped_fraction(
                trident, (geometry.thp_level, *above_thp)
            )
            row[f"{name}:trident_above_thp"] = _mapped_fraction(
                trident, above_thp
            )
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
