"""Parallel experiment orchestrator with deterministic replay.

The full sweep (every figure/table of the paper) is embarrassingly
parallel: each ``run_all`` module is independent, and inside the grid
experiments every workload's cell is independent of every other cell.
This module fans those *units* out across a pool of worker processes
while keeping the outputs bit-for-bit identical to a serial run:

* **deterministic seeds** — every unit derives its seed from the sweep's
  root seed and its stable unit id (:func:`derive_seed`); results depend
  only on (root seed, unit id), never on scheduling order or ``--jobs``.
* **isolation** — each unit runs in its own worker process; a crash,
  uncaught exception or wall-clock timeout kills only that unit.
* **bounded retry** — failed units are retried with exponential backoff
  (``backoff_base_s * 2**(attempt-1)``); every backoff is recorded.
* **graceful degradation** — a unit that exhausts its retries is recorded
  in the run manifest with its failure status and the report compiler
  merges whatever survived instead of aborting the sweep.
* **run manifest** — ``sweep_manifest.json`` records (unit, seed, status,
  attempts, durations, backoffs, outputs, metrics files) plus merged CSV
  paths and a merged obs-metrics summary; ``--resume MANIFEST`` skips
  units that already completed, re-running only failures and new units.

Unit granularity
----------------

``build_plan`` registers two kinds of units:

* a **module unit** per non-grid module (``latency_micro``,
  ``sensitivity``, ``kernel_directmap``, ``figure2_full``): the worker
  calls ``module.main(quick=..., seed=...)`` with the report directory
  redirected, so the module writes its own CSVs exactly as today.
* a **grid cell** per (module, workload) for every module whose ``run``
  accepts a ``workloads`` tuple: the worker calls
  ``module.run(workloads=(w,), seed=..., ...)`` and dumps the rows to
  ``partial/<module>__<workload>.json``.  After the pool drains, the
  compiler concatenates surviving cells in the module's canonical
  workload order, applies the module's ``summarize`` hook (geomean rows)
  when present, and writes the final ``<module>.csv`` via
  :func:`repro.experiments.report.write_csv`.

Because cells split along the workload axis, cross-policy normalization
inside a cell (every figure normalizes against a baseline policy *per
workload*) is preserved unchanged.
"""

from __future__ import annotations

import contextlib
import hashlib
import heapq
import importlib
import inspect
import json
import multiprocessing as mp
import os
import time
import traceback
from dataclasses import asdict, dataclass, field

from repro.experiments.report import write_csv

#: manifest schema version (bump on incompatible changes)
MANIFEST_VERSION = 1

MODULE_TARGET = "repro.experiments.orchestrator:run_module_unit"
GRID_TARGET = "repro.experiments.orchestrator:run_grid_cell"


# ---------------------------------------------------------------------------
# deterministic seed derivation


def derive_seed(root_seed: int, unit_id: str) -> int:
    """A unit's seed: a pure function of (root seed, unit id).

    sha256 over both, folded to 63 bits — stable across Python versions,
    platforms and unit orderings, and collision-free for any realistic
    number of units.  Scheduling order can never influence a unit's RNG.
    """
    digest = hashlib.sha256(
        f"{root_seed}\x1f{unit_id}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") & (2**63 - 1)


# ---------------------------------------------------------------------------
# unit specs, results, plan


@dataclass(frozen=True)
class UnitSpec:
    """One schedulable unit of work (picklable; kwargs JSON-able)."""

    unit_id: str
    target: str  # "module:function" resolved inside the worker
    kwargs: dict
    seed: int
    timeout_s: float = 900.0
    max_retries: int = 1


@dataclass
class UnitResult:
    """What the manifest records for one unit."""

    unit_id: str
    seed: int
    status: str = "pending"  # ok | failed | timeout | crashed
    attempts: int = 0
    duration_s: float = 0.0
    durations_s: list = field(default_factory=list)
    backoffs_s: list = field(default_factory=list)
    error: str | None = None
    outputs: list = field(default_factory=list)
    metrics: list = field(default_factory=list)
    cached: bool = False


@dataclass
class GridPlan:
    """Merge recipe for one grid module: cells in canonical order."""

    module_name: str
    csv_name: str
    cells: list  # [(workload, unit_id, partial_path)]


@dataclass
class SweepPlan:
    specs: list
    grids: dict  # module_name -> GridPlan


@dataclass
class SweepConfig:
    jobs: int = 1
    timeout_s: float = 900.0
    root_seed: int = 7
    quick: bool = False
    out_dir: str = "report"
    max_retries: int = 1
    backoff_base_s: float = 0.5
    modules: tuple = ()
    resume: str | None = None
    manifest_path: str | None = None
    #: attach sampled invariant auditors (repro.lint.invariants) in every
    #: worker; audit failures surface as unit failures in the manifest
    audit: bool = False
    #: record the simulated-time timeline in every worker's runs and
    #: aggregate the per-run sections into ``sweep_report.html``
    timeline: bool = False


def _unit_slug(unit_id: str) -> str:
    return unit_id.replace(":", "__").replace("/", "_")


def build_plan(
    modules: tuple = (),
    quick: bool = False,
    root_seed: int = 7,
    out_dir: str = "report",
    timeout_s: float = 900.0,
    max_retries: int = 1,
    audit: bool = False,
    timeline: bool = False,
) -> SweepPlan:
    """Register one unit per module, one per workload cell for grids."""
    from repro.experiments.run_all import MODULES, validate_quick_support

    table = dict(MODULES)
    unknown = sorted(set(modules) - set(table))
    if unknown:
        raise KeyError(
            f"unknown experiment module(s) {unknown}; "
            f"choose from {sorted(table)}"
        )
    selected = [
        (name, module)
        for name, module in MODULES
        if not modules or name in modules
    ]
    specs: list[UnitSpec] = []
    grids: dict[str, GridPlan] = {}
    for name, module in selected:
        validate_quick_support(name, module)
        run_params = inspect.signature(module.run).parameters
        if "workloads" in run_params:
            quick_kwargs = dict(getattr(module, "QUICK_KWARGS", {})) if quick else {}
            workloads = quick_kwargs.pop(
                "workloads", run_params["workloads"].default
            )
            csv_name = getattr(module, "CSV_NAME", name)
            cells = []
            for workload in workloads:
                unit_id = f"{name}:{workload}"
                partial = os.path.join(
                    out_dir, "partial", f"{_unit_slug(unit_id)}.json"
                )
                specs.append(
                    UnitSpec(
                        unit_id=unit_id,
                        target=GRID_TARGET,
                        kwargs={
                            "module_name": name,
                            "workload": workload,
                            "out_dir": out_dir,
                            "out_path": partial,
                            "seed": derive_seed(root_seed, unit_id),
                            "extra_kwargs": quick_kwargs,
                            "unit_slug": _unit_slug(unit_id),
                            "audit": audit,
                            "timeline": timeline,
                        },
                        seed=derive_seed(root_seed, unit_id),
                        timeout_s=timeout_s,
                        max_retries=max_retries,
                    )
                )
                cells.append((workload, unit_id, partial))
            grids[name] = GridPlan(name, csv_name, cells)
        else:
            specs.append(
                UnitSpec(
                    unit_id=name,
                    target=MODULE_TARGET,
                    kwargs={
                        "module_name": name,
                        "out_dir": out_dir,
                        "quick": quick,
                        "seed": derive_seed(root_seed, name),
                        "unit_slug": _unit_slug(name),
                        "audit": audit,
                        "timeline": timeline,
                    },
                    seed=derive_seed(root_seed, name),
                    timeout_s=timeout_s,
                    max_retries=max_retries,
                )
            )
    return SweepPlan(specs=specs, grids=grids)


# ---------------------------------------------------------------------------
# worker-side unit targets


def _jsonable(value):
    """JSON encoder fallback: numpy scalars become Python numbers."""
    for cast in (int, float):
        try:
            return cast(value)
        except (TypeError, ValueError):
            continue
    return str(value)


def _redirect_into(
    out_dir: str, unit_slug: str, audit: bool = False, timeline: bool = False
):
    """Point the report + obs plumbing of this worker at the sweep dirs."""
    from repro.experiments import report as report_mod
    from repro.experiments import runner as runner_mod

    report_mod.REPORT_DIR = out_dir
    metrics_dir = os.path.join(out_dir, "metrics", unit_slug)
    runner_mod.METRICS_DIR = metrics_dir
    runner_mod.set_audit(audit)
    runner_mod.set_timeline(timeline)
    return metrics_dir


def _collect_metrics_files(metrics_dir: str) -> list:
    if not os.path.isdir(metrics_dir):
        return []
    return sorted(
        os.path.join(metrics_dir, f)
        for f in os.listdir(metrics_dir)
        if f.endswith(".json")
    )


def _open_log(out_dir: str, unit_slug: str):
    log_dir = os.path.join(out_dir, "logs")
    os.makedirs(log_dir, exist_ok=True)
    return open(os.path.join(log_dir, f"{unit_slug}.log"), "w")


def run_module_unit(
    module_name: str,
    out_dir: str,
    quick: bool,
    seed: int,
    unit_slug: str,
    audit: bool = False,
    timeline: bool = False,
) -> dict:
    """Worker target: run one whole module's ``main`` (non-grid unit)."""
    module = importlib.import_module(f"repro.experiments.{module_name}")
    metrics_dir = _redirect_into(
        out_dir, unit_slug, audit=audit, timeline=timeline
    )
    with _open_log(out_dir, unit_slug) as log:
        with contextlib.redirect_stdout(log):
            module.main(quick=quick, seed=seed)
    csv_names = getattr(module, "CSV_NAME", ())
    if isinstance(csv_names, str):
        csv_names = (csv_names,)
    outputs = [os.path.join(out_dir, f"{n}.csv") for n in csv_names]
    return {
        "outputs": [p for p in outputs if os.path.exists(p)],
        "metrics": _collect_metrics_files(metrics_dir),
    }


def run_grid_cell(
    module_name: str,
    workload: str,
    out_dir: str,
    out_path: str,
    seed: int,
    unit_slug: str,
    extra_kwargs: dict | None = None,
    audit: bool = False,
    timeline: bool = False,
) -> dict:
    """Worker target: run one (module, workload) cell, dump rows as JSON."""
    module = importlib.import_module(f"repro.experiments.{module_name}")
    metrics_dir = _redirect_into(
        out_dir, unit_slug, audit=audit, timeline=timeline
    )
    with _open_log(out_dir, unit_slug) as log:
        with contextlib.redirect_stdout(log):
            rows = module.run(
                workloads=(workload,), seed=seed, **(extra_kwargs or {})
            )
    os.makedirs(os.path.dirname(out_path), exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(rows, f, default=_jsonable)
    return {
        "outputs": [out_path],
        "metrics": _collect_metrics_files(metrics_dir),
    }


# ---------------------------------------------------------------------------
# the process-pool engine


def _resolve_target(target: str):
    module_name, func_name = target.split(":")
    return getattr(importlib.import_module(module_name), func_name)


def _child_main(conn, target: str, kwargs: dict) -> None:
    """Entry point of every worker process."""
    try:
        payload = _resolve_target(target)(**kwargs)
        conn.send({"ok": True, "payload": payload or {}})
    except BaseException as exc:  # noqa: BLE001 - report, don't die silently
        with contextlib.suppress(Exception):
            conn.send(
                {
                    "ok": False,
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                }
            )
    finally:
        with contextlib.suppress(Exception):
            conn.close()


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


@dataclass
class _Running:
    spec: UnitSpec
    attempt: int
    proc: object
    conn: object
    started: float
    deadline: float
    result: UnitResult


def execute_units(
    specs: list,
    jobs: int = 1,
    backoff_base_s: float = 0.5,
    progress=None,
    poll_interval_s: float = 0.02,
) -> dict:
    """Run every spec to completion; returns ``{unit_id: UnitResult}``.

    ``jobs`` workers run concurrently.  A unit that raises, exceeds its
    wall-clock timeout, or kills its worker process is retried up to
    ``spec.max_retries`` times with exponential backoff; the final status
    lands in its :class:`UnitResult` and the sweep continues regardless.
    """
    ctx = _mp_context()
    jobs = max(1, int(jobs))
    results = {
        s.unit_id: UnitResult(unit_id=s.unit_id, seed=s.seed) for s in specs
    }
    ready: list = [(s, 1) for s in specs]
    ready.reverse()  # pop() from the end preserves registration order
    delayed: list = []  # heap of (ready_at, tiebreak, spec, attempt)
    running: list[_Running] = []
    tiebreak = 0

    def launch(spec: UnitSpec, attempt: int) -> None:
        recv, send = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_child_main, args=(send, spec.target, spec.kwargs)
        )
        proc.start()
        send.close()
        now = time.monotonic()
        running.append(
            _Running(
                spec=spec,
                attempt=attempt,
                proc=proc,
                conn=recv,
                started=now,
                deadline=now + spec.timeout_s,
                result=results[spec.unit_id],
            )
        )
        if progress:
            progress(f"start {spec.unit_id} (attempt {attempt})")

    def finish(run: _Running, status: str, error: str | None, payload: dict):
        res = run.result
        duration = time.monotonic() - run.started
        res.attempts = run.attempt
        res.durations_s.append(round(duration, 4))
        res.duration_s = round(duration, 4)
        res.status = status
        res.error = error
        if status == "ok":
            res.outputs = payload.get("outputs", [])
            res.metrics = payload.get("metrics", [])
        run.conn.close()
        run.proc.join()
        if status != "ok" and run.attempt <= run.spec.max_retries:
            nonlocal tiebreak
            backoff = backoff_base_s * (2 ** (run.attempt - 1))
            res.backoffs_s.append(round(backoff, 4))
            tiebreak += 1
            heapq.heappush(
                delayed,
                (time.monotonic() + backoff, tiebreak, run.spec, run.attempt + 1),
            )
        elif progress:
            progress(
                f"done  {run.spec.unit_id}: {status} "
                f"({duration:.1f}s, attempt {run.attempt})"
            )

    def poll_one(run: _Running) -> bool:
        """True when the unit reached a terminal state for this attempt."""
        if run.conn.poll():
            try:
                message = run.conn.recv()
            except EOFError:
                message = None
            if message is None:
                run.proc.join(timeout=5)
                finish(
                    run,
                    "crashed",
                    f"worker exited without reply "
                    f"(exitcode {run.proc.exitcode})",
                    {},
                )
            elif message.get("ok"):
                finish(run, "ok", None, message.get("payload", {}))
            else:
                finish(run, "failed", message.get("error"), {})
            return True
        if not run.proc.is_alive():
            run.proc.join()
            finish(
                run,
                "crashed",
                f"worker died (exitcode {run.proc.exitcode})",
                {},
            )
            return True
        if time.monotonic() > run.deadline:
            run.proc.terminate()
            run.proc.join(timeout=2)
            if run.proc.is_alive():
                run.proc.kill()
                run.proc.join()
            finish(
                run,
                "timeout",
                f"exceeded {run.spec.timeout_s:.1f}s wall-clock timeout",
                {},
            )
            return True
        return False

    while ready or delayed or running:
        now = time.monotonic()
        while delayed and delayed[0][0] <= now:
            _, _, spec, attempt = heapq.heappop(delayed)
            ready.append((spec, attempt))
        while ready and len(running) < jobs:
            spec, attempt = ready.pop()
            launch(spec, attempt)
        if not running:
            if delayed:
                time.sleep(
                    max(0.0, min(delayed[0][0] - time.monotonic(), 0.1))
                )
            continue
        running = [run for run in running if not poll_one(run)]
        if running:
            time.sleep(poll_interval_s)
    return results


# ---------------------------------------------------------------------------
# report compiler + metrics merge


def compile_report(plan: SweepPlan, results: dict, out_dir: str) -> dict:
    """Merge surviving grid cells into final CSVs; skip failed units.

    Cells are concatenated in the module's canonical workload order (never
    completion order), then the module's ``summarize`` hook — when it has
    one — appends its aggregate rows, so ``--jobs N`` output is
    byte-identical to ``--jobs 1``.
    """
    merged: dict = {}
    for name, grid in plan.grids.items():
        rows: list = []
        missing: list = []
        for workload, unit_id, partial in grid.cells:
            result = results.get(unit_id)
            if (
                result is not None
                and result.status == "ok"
                and os.path.exists(partial)
            ):
                with open(partial) as f:
                    rows.extend(json.load(f))
            else:
                missing.append(workload)
        entry: dict = {"csv": None, "missing_workloads": missing}
        if rows:
            module = importlib.import_module(f"repro.experiments.{name}")
            summarize = getattr(module, "summarize", None)
            if callable(summarize):
                rows = rows + summarize(rows)
            entry["csv"] = write_csv(rows, grid.csv_name, directory=out_dir)
        merged[name] = entry
    return merged


def merge_metrics(results: dict, out_dir: str) -> str | None:
    """Fold every unit's per-run obs metrics_*.json into one summary."""
    runs = []
    totals: dict = {}
    for unit_id in sorted(results):
        for path in results[unit_id].metrics:
            if not os.path.exists(path):
                continue
            try:
                with open(path) as f:
                    payload = json.load(f)
            except (OSError, ValueError):
                continue
            section = payload.get("run", {})
            runs.append(
                {"unit": unit_id, "file": os.path.basename(path), **section}
            )
            for key, value in section.items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
    if not runs:
        return None
    summary = {"files": len(runs), "totals": totals, "runs": runs}
    path = os.path.join(out_dir, "sweep_metrics.json")
    with open(path, "w") as f:
        json.dump(summary, f, indent=2, default=_jsonable)
    return path


# ---------------------------------------------------------------------------
# manifest + resume


def build_sweep_report(results: dict, out_dir: str) -> str | None:
    """Aggregate every unit's timeline sections into one HTML report.

    Sections are ordered by unit id and metrics filename (both sorted), so
    the report is byte-identical regardless of ``--jobs``.
    """
    from repro.obs.report import runs_from_units, write_report

    units = [
        {"unit_id": unit_id, "metrics": results[unit_id].metrics}
        for unit_id in sorted(results)
    ]
    runs = runs_from_units(units)
    if not runs:
        return None
    path = os.path.join(out_dir, "sweep_report.html")
    return write_report(path, runs, title="sweep timeline report")


def write_manifest(manifest: dict, path: str) -> str:
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w") as f:
        json.dump(manifest, f, indent=2, default=_jsonable)
    return path


def load_manifest(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def _cached_results(plan: SweepPlan, resume_path: str) -> dict:
    """Units already 'ok' in a prior manifest, with outputs still on disk."""
    previous = {
        unit["unit_id"]: unit
        for unit in load_manifest(resume_path).get("units", [])
    }
    cached: dict = {}
    for spec in plan.specs:
        unit = previous.get(spec.unit_id)
        if not unit or unit.get("status") != "ok":
            continue
        if unit.get("seed") != spec.seed:
            continue  # different root seed: results are not reusable
        outputs = unit.get("outputs", [])
        if not all(os.path.exists(p) for p in outputs):
            continue
        cached[spec.unit_id] = UnitResult(
            unit_id=spec.unit_id,
            seed=spec.seed,
            status="ok",
            attempts=unit.get("attempts", 1),
            duration_s=unit.get("duration_s", 0.0),
            durations_s=unit.get("durations_s", []),
            backoffs_s=unit.get("backoffs_s", []),
            outputs=outputs,
            metrics=unit.get("metrics", []),
            cached=True,
        )
    return cached


def run_sweep(config: SweepConfig, progress=None) -> dict:
    """Plan, execute, compile, and write the manifest.  Returns it."""
    started = time.time()
    os.makedirs(config.out_dir, exist_ok=True)
    plan = build_plan(
        modules=tuple(config.modules),
        quick=config.quick,
        root_seed=config.root_seed,
        out_dir=config.out_dir,
        timeout_s=config.timeout_s,
        max_retries=config.max_retries,
        audit=config.audit,
        timeline=config.timeline,
    )
    cached = _cached_results(plan, config.resume) if config.resume else {}
    pending = [s for s in plan.specs if s.unit_id not in cached]
    if progress:
        progress(
            f"sweep: {len(plan.specs)} units "
            f"({len(cached)} cached, {len(pending)} to run), "
            f"jobs={config.jobs}"
        )
    results = execute_units(
        pending,
        jobs=config.jobs,
        backoff_base_s=config.backoff_base_s,
        progress=progress,
    )
    results.update(cached)
    merged = compile_report(plan, results, config.out_dir)
    metrics_summary = merge_metrics(results, config.out_dir)
    report_path = (
        build_sweep_report(results, config.out_dir) if config.timeline else None
    )
    wall_s = time.time() - started
    units = [asdict(results[s.unit_id]) for s in plan.specs]
    counts: dict = {}
    for unit in units:
        counts[unit["status"]] = counts.get(unit["status"], 0) + 1
    manifest = {
        "version": MANIFEST_VERSION,
        "root_seed": config.root_seed,
        "quick": config.quick,
        "audit": config.audit,
        "timeline": config.timeline,
        "jobs": config.jobs,
        "timeout_s": config.timeout_s,
        "max_retries": config.max_retries,
        "out_dir": config.out_dir,
        "wall_s": round(wall_s, 3),
        "serial_equivalent_s": round(
            sum(u["duration_s"] for u in units), 3
        ),
        "counts": counts,
        "units": units,
        "merged": merged,
        "metrics_summary": metrics_summary,
        "report": report_path,
    }
    manifest_path = config.manifest_path or os.path.join(
        config.out_dir, "sweep_manifest.json"
    )
    write_manifest(manifest, manifest_path)  # trd: ignore[TRD007] wall_s is host-timing metadata; determinism compares exclude it
    manifest["manifest_path"] = manifest_path
    return manifest
