"""Section 7 "Memory bloat": Trident's bloat and HawkEye-style recovery.

Large pages map memory the application never touches (internal
fragmentation).  The paper: Trident adds 38GB (Memcached) and 13GB (Btree)
of bloat over THP, recoverable by HawkEye's demote-and-dedup technique.
This experiment measures mapped-but-untouched bytes per policy and shows
HawkEye's recovery bringing it back down.
"""

from __future__ import annotations

from repro.config import SCALE_FACTOR
from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig

WORKLOADS = ("Memcached", "Btree")
CONFIGS = ("2MB-THP", "Trident", "HawkEye")

CSV_NAME = "bloat"
TITLE = (
    "Memory bloat (paper-scale GB): mapped-but-untouched bytes per policy"
)
QUICK_KWARGS = {"workloads": ("Btree",), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = WORKLOADS,
    n_accesses: int = 40_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for workload in workloads:
        row: dict = {"workload": workload}
        for cfg in CONFIGS:
            metrics = NativeRunner(
                RunConfig(workload, cfg, n_accesses=n_accesses, seed=seed)
            ).run()
            row[f"bloat_gb:{cfg}"] = metrics.bloat_bytes * SCALE_FACTOR / (1 << 30)
        row["trident_over_thp_gb"] = (
            row["bloat_gb:Trident"] - row["bloat_gb:2MB-THP"]
        )
        rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
