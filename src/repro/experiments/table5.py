"""Table 5: p99 request latency for Redis and Memcached.

Transactional stores must meet SLAs; the worry with 1GB pages is that a
400 ms synchronous zero-fill or a long compaction lands on the request
path.  Trident avoids that by doing zeroing, compaction and promotion in
the background, so its p99 stays at or below THP's and 4KB's — the property
this experiment checks by sampling per-request latencies.
"""

from __future__ import annotations

from repro.experiments.report import print_and_save
from repro.experiments.runner import NativeRunner, RunConfig

WORKLOADS = ("Redis", "Memcached")
CONFIGS = ("4KB", "2MB-THP", "Trident")

CSV_NAME = "table5"
TITLE = "Table 5: request tail latency (us), Redis & Memcached"
QUICK_KWARGS = {"workloads": ("Redis",), "n_accesses": 5_000}


def run(
    workloads: tuple[str, ...] = WORKLOADS,
    n_accesses: int = 60_000,
    seed: int = 7,
) -> list[dict]:
    rows = []
    for fragmented in (False, True):
        state = "frag" if fragmented else "unfrag"
        for workload in workloads:
            row: dict = {"state": state, "workload": workload}
            for cfg in CONFIGS:
                metrics = NativeRunner(
                    RunConfig(
                        workload,
                        cfg,
                        fragmented=fragmented,
                        n_accesses=n_accesses,
                        seed=seed,
                        record_requests=True,
                    )
                ).run()
                row[f"p99_us:{cfg}"] = metrics.percentile_latency_ns(99) / 1000.0
                row[f"p50_us:{cfg}"] = metrics.percentile_latency_ns(50) / 1000.0
            rows.append(row)
    return rows


def main(quick: bool = False, seed: int = 7) -> None:
    rows = run(seed=seed, **(QUICK_KWARGS if quick else {}))
    print_and_save(rows, CSV_NAME, TITLE)


if __name__ == "__main__":
    main()
