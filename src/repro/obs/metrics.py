"""A kernel-style metrics registry: counters, gauges and histograms.

The simulator's claims live in counters (zero-fill pool hit rates,
compaction bytes copied, promotion attempt/failure ratios — Figures 5, 7,
11 and Tables 4, 5 of the paper), so the registry is designed the way
``/proc/vmstat`` and tracefs are: a flat namespace of named metrics, each
optionally qualified by a small set of labels, cheap enough to update from
hot paths.

Three metric kinds:

* :class:`Counter` — monotonically increasing value (events, bytes, ns).
* :class:`Gauge` — point-in-time value (pool size, free-list depth).
* :class:`Histogram` — fixed-boundary bucketed distribution (walk latency).

Hot paths hold direct references to metric objects (``self._c_alloc[order]``
style) so the per-event cost is one attribute increment — the registry's
name/label lookup happens only at registration time.  Derived or aggregate
metrics that would be expensive to maintain incrementally are filled in by
*collectors*: callbacks run once per :meth:`MetricsRegistry.snapshot`,
mirroring authoritative simulator state (``PolicyStats``,
``TranslationStats``) into the registry — the same split the kernel makes
between per-cpu event counters and fill-on-read ``/proc`` files.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from typing import Callable, Iterable


def nearest_rank(n: int, pct: float) -> int:
    """Ceil-based nearest-rank index into ``n`` sorted samples.

    The p-th percentile is the smallest sample such that at least p% of
    the samples are <= it (the same rule
    :meth:`repro.sim.perfmodel.RunMetrics.percentile_latency_ns` uses for
    Table 5's tails — ``round``-based indexing under-reports them).
    """
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"pct must be in [0, 100], got {pct}")
    return max(0, math.ceil(pct / 100.0 * n) - 1)


def percentile_from_buckets(export: dict, pct: float) -> float:
    """Nearest-rank percentile from a :meth:`Histogram.export` dict.

    Returns the upper bound of the bucket holding the nearest-rank sample
    (the resolution a fixed-boundary histogram offers).  A rank landing in
    the open-ended overflow bucket yields the maximum observed sample when
    the export carries one (the ``max`` key) instead of ``math.inf``, so
    p99/p100 stay finite in reports; exports written before ``max`` was
    recorded keep the old behaviour (``inf``).  Empty histograms are 0.0.

    Buckets are sorted numerically here rather than trusted in dict order:
    a JSON round-trip through ``sort_keys=True`` reorders the keys
    lexicographically ("+Inf" before "100").
    """
    count = export.get("count", 0)
    if not count:
        return 0.0
    observed_max = export.get("max")
    rank = nearest_rank(count, pct) + 1  # 1-based cumulative rank
    cumulative = 0
    items = sorted(
        export["buckets"].items(),
        key=lambda kv: math.inf if kv[0] == "+Inf" else float(kv[0]),
    )
    for bound, n in items:
        cumulative += n
        if cumulative >= rank:
            if bound != "+Inf":
                return float(bound)
            break
    # Overflow bucket: clamp the open upper bound to the observed max.
    return math.inf if observed_max is None else float(observed_max)


#: label-value characters that render bare (unquoted) in a flat key;
#: anything else forces the quoted-and-escaped form so keys stay
#: unambiguous and machine-parseable (``parse_key`` is the exact inverse)
_BARE_LABEL_CHARS = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_.:+/-"
)


def escape_label_value(value: str) -> str:
    """Backslash-escape ``\\``, ``"`` and newlines (Prometheus label rules)."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def unescape_label_value(value: str) -> str:
    """Inverse of :func:`escape_label_value`."""
    out: list[str] = []
    i = 0
    while i < len(value):
        ch = value[i]
        if ch == "\\" and i + 1 < len(value):
            nxt = value[i + 1]
            if nxt == "n":
                out.append("\n")
            elif nxt in ('"', "\\"):
                out.append(nxt)
            else:  # unknown escape: keep both chars verbatim
                out.append(ch)
                out.append(nxt)
            i += 2
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def render_key(name: str, labels: dict) -> str:
    """Canonical flat key: ``name`` or ``name{k=v,...}`` with sorted keys.

    Simple values (alphanumerics plus ``_.:+/-``) render bare, keeping the
    historical key format byte-for-byte.  Values containing anything else —
    ``"``, ``\\``, newlines, commas, ``=``, ``}`` ... — render quoted with
    Prometheus-style escapes; a bare value never starts with ``"``, so the
    two forms cannot collide and :func:`parse_key` can invert exactly.
    """
    if not labels:
        return name
    parts = []
    for k in sorted(labels):
        value = str(labels[k])
        if value and all(ch in _BARE_LABEL_CHARS for ch in value):
            parts.append(f"{k}={value}")
        else:
            parts.append(f'{k}="{escape_label_value(value)}"')
    return f"{name}{{{','.join(parts)}}}"


def parse_key(key: str) -> tuple[str, dict]:
    """Split a :func:`render_key` flat key back into ``(name, labels)``.

    Exact inverse for both the bare and the quoted-escaped label forms;
    raises ``ValueError`` on malformed keys (the exposition layer depends
    on this being strict, not best-effort).
    """
    brace = key.find("{")
    if brace < 0:
        return key, {}
    if not key.endswith("}"):
        raise ValueError(f"malformed metric key (unclosed labels): {key!r}")
    name = key[:brace]
    body = key[brace + 1 : -1]
    labels: dict = {}
    i = 0
    while i < len(body):
        eq = body.find("=", i)
        if eq < 0:
            raise ValueError(f"malformed label pair in key: {key!r}")
        label = body[i:eq]
        if body[eq + 1 : eq + 2] == '"':  # quoted-escaped value
            j = eq + 2
            raw: list[str] = []
            while j < len(body):
                ch = body[j]
                if ch == "\\" and j + 1 < len(body):
                    raw.append(body[j : j + 2])
                    j += 2
                    continue
                if ch == '"':
                    break
                raw.append(ch)
                j += 1
            else:
                raise ValueError(f"unterminated label quote in key: {key!r}")
            labels[label] = unescape_label_value("".join(raw))
            i = j + 1
            if i < len(body):
                if body[i] != ",":
                    raise ValueError(f"malformed label list in key: {key!r}")
                i += 1
        else:  # bare value: runs to the next comma
            comma = body.find(",", eq + 1)
            end = comma if comma >= 0 else len(body)
            labels[label] = body[eq + 1 : end]
            i = end + 1 if comma >= 0 else end
    return name, labels


class Counter:
    """Monotonic event counter.  ``inc`` is the hot-path entry point."""

    __slots__ = ("name", "labels", "value")
    kind = "counter"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def set(self, value: int | float) -> None:
        """Overwrite the value (collector mirroring only — not hot paths)."""
        self.value = value


class Gauge:
    """Point-in-time value; hot paths assign :attr:`value` directly."""

    __slots__ = ("name", "labels", "value")
    kind = "gauge"

    def __init__(self, name: str, labels: dict) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def dec(self, amount: int | float = 1) -> None:
        self.value -= amount


#: default bucket upper bounds — powers of four from 1 to ~10^9, a decade
#: ladder wide enough for cycle counts and nanosecond latencies alike
DEFAULT_BUCKETS = tuple(4**i for i in range(16))


class Histogram:
    """Fixed-boundary histogram (cumulative-style buckets on export).

    ``bounds`` are upper bounds of the finite buckets; one implicit
    overflow bucket catches everything above the last bound.
    """

    __slots__ = (
        "name", "labels", "bounds", "bucket_counts", "count", "sum", "max"
    )
    kind = "histogram"

    def __init__(
        self, name: str, labels: dict, bounds: Iterable[float] = DEFAULT_BUCKETS
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        #: largest observed sample; lets percentile readers clamp the
        #: open-ended overflow bucket to a finite value
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile at bucket-bound resolution."""
        return percentile_from_buckets(self.export(), pct)

    def export(self) -> dict:
        buckets = {}
        for bound, n in zip(self.bounds, self.bucket_counts):
            buckets[str(bound)] = n
        buckets["+Inf"] = self.bucket_counts[-1]
        out = {"count": self.count, "sum": self.sum, "buckets": buckets}
        if self.max is not None:
            out["max"] = self.max
        return out


class MetricsRegistry:
    """Flat namespace of metrics plus snapshot-time collectors."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[["MetricsRegistry"], None]] = []

    # -- registration (get-or-create) --------------------------------------
    def _get_or_create(self, cls, name: str, labels: dict, **kwargs):
        key = render_key(name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {key!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(
        self, name: str, buckets: Iterable[float] | None = None, **labels
    ) -> Histogram:
        kwargs = {} if buckets is None else {"bounds": buckets}
        return self._get_or_create(Histogram, name, labels, **kwargs)

    # -- collectors ---------------------------------------------------------
    def add_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run once per snapshot (fill-on-read metrics)."""
        self._collectors.append(fn)

    def collect(self) -> None:
        for fn in self._collectors:
            fn(self)

    # -- read side ----------------------------------------------------------
    def get(self, name: str, **labels) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(render_key(name, labels))

    def value(self, name: str, **labels) -> int | float:
        """Current value of a counter/gauge (0 if never registered)."""
        metric = self.get(name, **labels)
        if metric is None:
            return 0
        if isinstance(metric, Histogram):
            raise TypeError(f"{name} is a histogram; read .export() instead")
        return metric.value

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def snapshot(self) -> dict:
        """Run collectors, then export everything as plain JSON-able dicts."""
        self.collect()
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for key in sorted(self._metrics):
            metric = self._metrics[key]
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                out["histograms"][key] = metric.export()
        return out

    def write_json(self, path: str, extra: dict | None = None) -> str:
        """Write a snapshot (plus optional extra sections) to ``path``."""
        data = self.snapshot()
        if extra:
            data.update(extra)
        with open(path, "w") as f:
            json.dump(data, f, indent=2, sort_keys=True)
            f.write("\n")
        return path
