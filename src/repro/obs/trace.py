"""Bounded structured-event tracer — the simulator's tracefs.

Events are (seq, subsystem, event, fields) records appended to a ring
buffer of fixed capacity: old events fall off the front under pressure
(``dropped`` counts them), exactly like a ftrace per-cpu ring.  Each
subsystem is gated by its own enable flag; with nothing enabled the tracer
costs one attribute read per *guarded* call site::

    tr = self._tracer
    if tr is not None and tr.active:
        tr.emit("buddy", "alloc", pfn=pfn, order=order)

``active`` is maintained eagerly by :meth:`enable`/:meth:`disable`, so the
disabled-path cost is a None check plus a bool read — near-zero, which is
what lets the instrumentation live permanently in the hot layers (the
eBPF-mm argument: observability must be cheap enough to never remove).

Export is JSONL (one event object per line), the format every trace
tooling pipeline ingests.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import deque
from typing import IO, Iterable, Iterator

#: every subsystem with permanent instrumentation (``enable_all`` scope).
#: ``span`` is the begin/end pair stream of :mod:`repro.obs.spans`.
#: ``telemetry`` carries the alert engine's firing/resolved transitions.
SUBSYSTEMS = (
    "buddy", "zerofill", "regions", "compaction", "policy", "tlb", "span",
    "telemetry",
)

#: envelope keys an event's fields may not shadow: ``{**fields}`` in
#: :meth:`Tracer.events` would silently overwrite them otherwise
RESERVED_FIELDS = frozenset({"seq", "ts_ns", "subsystem", "event"})


class Tracer:
    """Per-subsystem gated ring buffer of structured events."""

    def __init__(
        self,
        capacity: int = 65536,
        subsystems: Iterable[str] = (),
        clock=None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: the simulated-time source stamping ``ts_ns``; without one every
        #: event carries ts_ns 0.0 (ordering still given by ``seq``)
        self.clock = clock
        self._events: deque[tuple[int, float, str, str, dict]] = deque(
            maxlen=capacity
        )
        self._enabled: set[str] = set(subsystems)
        self.active = bool(self._enabled)
        self.emitted = 0
        self.dropped = 0
        self._seq = 0
        #: (subsystem, event) -> lifetime emit count (survives ring overflow)
        self.tallies: TallyCounter = TallyCounter()

    # -- enable flags -------------------------------------------------------
    def enable(self, *subsystems: str) -> None:
        self._enabled.update(subsystems)
        self.active = bool(self._enabled)

    def enable_all(self) -> None:
        self.enable(*SUBSYSTEMS)

    def disable(self, *subsystems: str) -> None:
        if subsystems:
            self._enabled.difference_update(subsystems)
        else:
            self._enabled.clear()
        self.active = bool(self._enabled)

    def is_enabled(self, subsystem: str) -> bool:
        return subsystem in self._enabled

    @property
    def enabled_subsystems(self) -> frozenset:
        return frozenset(self._enabled)

    # -- emission -----------------------------------------------------------
    def emit(self, subsystem: str, event: str, /, **fields) -> None:
        """Record one event if ``subsystem`` is enabled; else a no-op.

        Fields named like envelope keys (``seq``, ``ts_ns``, ``subsystem``,
        ``event``) are rejected: they would silently overwrite the envelope
        when :meth:`events` flattens the record.  The envelope parameters
        are positional-only so the collision always surfaces as this
        ValueError rather than sometimes as a TypeError.
        """
        if subsystem not in self._enabled:
            return
        if RESERVED_FIELDS & fields.keys():
            bad = sorted(RESERVED_FIELDS & fields.keys())
            raise ValueError(
                f"event field(s) {bad} shadow the trace envelope; "
                "rename them at the emit site"
            )
        ts = self.clock.now_ns if self.clock is not None else 0.0
        self._append(ts, subsystem, event, fields)

    def emit_at(
        self, ts_ns: float, subsystem: str, event: str, /, **fields
    ) -> None:
        """Like :meth:`emit` with an explicit timestamp.

        For retrospective records (a span whose duration is only known at
        its end): the caller is responsible for ``ts_ns`` not running
        backwards relative to already-recorded events.
        """
        if subsystem not in self._enabled:
            return
        if RESERVED_FIELDS & fields.keys():
            bad = sorted(RESERVED_FIELDS & fields.keys())
            raise ValueError(
                f"event field(s) {bad} shadow the trace envelope; "
                "rename them at the emit site"
            )
        self._append(ts_ns, subsystem, event, fields)

    def _append(self, ts: float, subsystem: str, event: str, fields: dict) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._seq += 1
        self.emitted += 1
        self.tallies[(subsystem, event)] += 1
        self._events.append((self._seq, ts, subsystem, event, fields))

    def clear(self) -> None:
        self._events.clear()
        self.tallies.clear()
        self.emitted = 0
        self.dropped = 0

    # -- read side ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(
        self, subsystem: str | None = None, event: str | None = None
    ) -> Iterator[dict]:
        """Buffered events, oldest first, as flat dicts."""
        for seq, ts, sub, name, fields in self._events:
            if subsystem is not None and sub != subsystem:
                continue
            if event is not None and name != event:
                continue
            yield {
                "seq": seq,
                "ts_ns": ts,
                "subsystem": sub,
                "event": name,
                **fields,
            }

    def summary(self) -> dict:
        """Lifetime emit tallies plus buffer health, for CLI display."""
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "buffered": len(self._events),
            "events": {
                f"{sub}:{name}": count
                for (sub, name), count in sorted(self.tallies.items())
            },
        }

    def export_jsonl(self, dest: str | IO[str]) -> int:
        """Write buffered events as JSON Lines; returns the event count."""
        if isinstance(dest, str):
            with open(dest, "w") as f:
                return self.export_jsonl(f)
        n = 0
        for record in self.events():
            dest.write(json.dumps(record, sort_keys=True))
            dest.write("\n")
            n += 1
        return n
