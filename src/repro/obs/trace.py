"""Bounded structured-event tracer — the simulator's tracefs.

Events are (seq, subsystem, event, fields) records appended to a ring
buffer of fixed capacity: old events fall off the front under pressure
(``dropped`` counts them), exactly like a ftrace per-cpu ring.  Each
subsystem is gated by its own enable flag; with nothing enabled the tracer
costs one attribute read per *guarded* call site::

    tr = self._tracer
    if tr is not None and tr.active:
        tr.emit("buddy", "alloc", pfn=pfn, order=order)

``active`` is maintained eagerly by :meth:`enable`/:meth:`disable`, so the
disabled-path cost is a None check plus a bool read — near-zero, which is
what lets the instrumentation live permanently in the hot layers (the
eBPF-mm argument: observability must be cheap enough to never remove).

Export is JSONL (one event object per line), the format every trace
tooling pipeline ingests.
"""

from __future__ import annotations

import json
from collections import Counter as TallyCounter
from collections import deque
from typing import IO, Iterable, Iterator

#: every subsystem with permanent instrumentation (``enable_all`` scope)
SUBSYSTEMS = ("buddy", "zerofill", "regions", "compaction", "policy", "tlb")


class Tracer:
    """Per-subsystem gated ring buffer of structured events."""

    def __init__(
        self,
        capacity: int = 65536,
        subsystems: Iterable[str] = (),
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._events: deque[tuple[int, str, str, dict]] = deque(maxlen=capacity)
        self._enabled: set[str] = set(subsystems)
        self.active = bool(self._enabled)
        self.emitted = 0
        self.dropped = 0
        self._seq = 0
        #: (subsystem, event) -> lifetime emit count (survives ring overflow)
        self.tallies: TallyCounter = TallyCounter()

    # -- enable flags -------------------------------------------------------
    def enable(self, *subsystems: str) -> None:
        self._enabled.update(subsystems)
        self.active = bool(self._enabled)

    def enable_all(self) -> None:
        self.enable(*SUBSYSTEMS)

    def disable(self, *subsystems: str) -> None:
        if subsystems:
            self._enabled.difference_update(subsystems)
        else:
            self._enabled.clear()
        self.active = bool(self._enabled)

    def is_enabled(self, subsystem: str) -> bool:
        return subsystem in self._enabled

    @property
    def enabled_subsystems(self) -> frozenset:
        return frozenset(self._enabled)

    # -- emission -----------------------------------------------------------
    def emit(self, subsystem: str, event: str, **fields) -> None:
        """Record one event if ``subsystem`` is enabled; else a no-op."""
        if subsystem not in self._enabled:
            return
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._seq += 1
        self.emitted += 1
        self.tallies[(subsystem, event)] += 1
        self._events.append((self._seq, subsystem, event, fields))

    def clear(self) -> None:
        self._events.clear()
        self.tallies.clear()
        self.emitted = 0
        self.dropped = 0

    # -- read side ----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def events(
        self, subsystem: str | None = None, event: str | None = None
    ) -> Iterator[dict]:
        """Buffered events, oldest first, as flat dicts."""
        for seq, sub, name, fields in self._events:
            if subsystem is not None and sub != subsystem:
                continue
            if event is not None and name != event:
                continue
            yield {"seq": seq, "subsystem": sub, "event": name, **fields}

    def summary(self) -> dict:
        """Lifetime emit tallies plus buffer health, for CLI display."""
        return {
            "emitted": self.emitted,
            "dropped": self.dropped,
            "buffered": len(self._events),
            "events": {
                f"{sub}:{name}": count
                for (sub, name), count in sorted(self.tallies.items())
            },
        }

    def export_jsonl(self, dest: str | IO[str]) -> int:
        """Write buffered events as JSON Lines; returns the event count."""
        if isinstance(dest, str):
            with open(dest, "w") as f:
                return self.export_jsonl(f)
        n = 0
        for record in self.events():
            dest.write(json.dumps(record, sort_keys=True))
            dest.write("\n")
            n += 1
        return n
