"""Begin/end spans over the simulated clock, with latency attribution.

A span brackets one cost-bearing operation on the :class:`SimClock` axis::

    with obs.spans.span("fault") as sp:
        ...            # clock advances inside
        sp.set(order=18)

Span begin/end events ride the same gated ring buffer as every other
trace event (subsystem ``span``, ``phase`` field ``B``/``E``/``I``), so
they interleave chronologically with instants from the other subsystems
and export to Chrome Trace Event Format without re-sorting.  Aggregates —
per-kind duration histograms and the **latency attribution table**
(count, total, self-vs-child time, keyed by kind and the optional
``order`` field) — live in the recorder and survive ring overflow, like
the tracer's lifetime tallies.

Nesting is tracked with an explicit stack (the simulation is
single-threaded): when a child closes, its duration is charged to the
parent's child time, so ``self_ns = total_ns - child_ns`` answers "where
did the nanoseconds actually go" without double counting nested work.

A disabled recorder hands out one shared no-op span; the guarded call
site costs an attribute read and a bool test, the same budget as the
tracer's emit guard.
"""

from __future__ import annotations


class _NullSpan:
    """Shared no-op span for disabled recorders."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        return None

    def set(self, **fields) -> None:
        return None


NULL_SPAN = _NullSpan()

#: duration bucket upper bounds in ns: decade ladder from 100ns to ~1s,
#: wide enough for both ~500us pv promotions and ~400ms sync zero-fills
SPAN_DURATION_BUCKETS = tuple(
    b for d in range(2, 9) for b in (10**d, 3 * 10**d)
)


class Span:
    """One open span; created by :meth:`SpanRecorder.span` only."""

    __slots__ = ("_recorder", "kind", "fields", "begin_ns", "child_ns")

    def __init__(self, recorder: "SpanRecorder", kind: str, fields: dict) -> None:
        self._recorder = recorder
        self.kind = kind
        self.fields = fields
        self.begin_ns = 0.0
        self.child_ns = 0.0

    def set(self, **fields) -> None:
        """Attach/override fields; they land on the end event."""
        self.fields.update(fields)

    def __enter__(self) -> "Span":
        self.begin_ns = self._recorder.clock.now_ns
        self._recorder._open(self)
        return self

    def __exit__(self, *exc) -> None:
        self._recorder._close(self)


class SpanRecorder:
    """Span factory + nesting stack + attribution aggregates."""

    def __init__(self, clock, tracer=None, metrics=None) -> None:
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics
        #: master switch: off, ``span`` returns the shared no-op span
        self.enabled = False
        self._stack: list[Span] = []
        #: (kind, order-or-None) -> [count, total_ns, self_ns]
        self._attribution: dict[tuple, list] = {}
        self._histograms: dict = {}
        self.spans_closed = 0

    # -- recording ----------------------------------------------------------
    def span(self, kind: str, **fields) -> Span | _NullSpan:
        """Open a span; use as a context manager."""
        if not self.enabled:
            return NULL_SPAN
        return Span(self, kind, fields)

    def mark(self, kind: str, **fields) -> None:
        """Record an instant (phase marker) on the span track."""
        if not self.enabled:
            return
        self._emit(kind, "I", fields)

    def record_complete(self, kind: str, duration_ns: float, **fields) -> None:
        """Record an already-elapsed span ending *now*.

        For operations whose cost is only known after the fact (a
        compaction attempt's accrued ``time_ns``): the caller advances the
        clock by the duration first, so ``now - duration_ns`` is exactly
        the simulated instant the operation began and chronology in the
        ring is preserved.
        """
        if not self.enabled:
            return
        end = self.clock.now_ns
        self._emit(kind, "B", fields, ts=end - duration_ns)
        self._emit(kind, "E", fields, ts=end, duration_ns=duration_ns)
        if self._stack:
            self._stack[-1].child_ns += duration_ns
        self._account(kind, fields, duration_ns, 0.0)

    # -- recorder internals --------------------------------------------------
    def _open(self, span: Span) -> None:
        self._stack.append(span)
        self._emit(span.kind, "B", span.fields)

    def _close(self, span: Span) -> None:
        end = self.clock.now_ns
        duration = end - span.begin_ns
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        if self._stack:
            self._stack[-1].child_ns += duration
        self._emit(span.kind, "E", span.fields, duration_ns=duration)
        self._account(span.kind, span.fields, duration, span.child_ns)

    def _emit(
        self, kind: str, phase: str, fields: dict, ts: float | None = None,
        duration_ns: float | None = None,
    ) -> None:
        tr = self.tracer
        if tr is None or not tr.active:
            return
        extra = dict(fields)
        extra["phase"] = phase
        if duration_ns is not None:
            extra["duration_ns"] = duration_ns
        if ts is not None:
            # Retrospective begin: stamp the computed instant, not "now".
            tr.emit_at(ts, "span", kind, **extra)
        else:
            tr.emit("span", kind, **extra)

    def _account(
        self, kind: str, fields: dict, duration: float, child_ns: float
    ) -> None:
        key = (kind, fields.get("order"))
        row = self._attribution.get(key)
        if row is None:
            row = self._attribution[key] = [0, 0.0, 0.0]
        row[0] += 1
        row[1] += duration
        row[2] += duration - child_ns
        self.spans_closed += 1
        if self.metrics is not None:
            hist = self._histograms.get(kind)
            if hist is None:
                hist = self._histograms[kind] = self.metrics.histogram(
                    "span_duration_ns",
                    buckets=SPAN_DURATION_BUCKETS,
                    kind=kind,
                )
            hist.observe(duration)

    # -- read side ----------------------------------------------------------
    def attribution(self) -> list[dict]:
        """The latency attribution table, one row per (kind, order).

        Sorted by descending total time — "where did the simulated
        nanoseconds go", most expensive first.
        """
        rows = []
        for (kind, order), (count, total, self_ns) in self._attribution.items():
            rows.append(
                {
                    "kind": kind,
                    "order": order,
                    "count": count,
                    "total_ns": total,
                    "self_ns": self_ns,
                    "child_ns": total - self_ns,
                    "mean_ns": total / count if count else 0.0,
                }
            )
        rows.sort(key=lambda r: (-r["total_ns"], r["kind"], str(r["order"])))
        return rows

    def total_ns(self, kind: str) -> float:
        """Total recorded time across every ``kind`` span (all orders)."""
        return sum(
            row[1] for key, row in self._attribution.items() if key[0] == kind
        )

    def export(self) -> dict:
        """JSON-able summary (embedded in metrics.json under ``timeline``)."""
        return {
            "spans_closed": self.spans_closed,
            "attribution": self.attribution(),
        }
