"""Observability: metrics registry + tracer + simulated-time timeline.

One :class:`Observability` instance accompanies one simulated machine
(:class:`repro.sim.system.System` creates its own by default).  The memory
substrate (buddy, zero-fill, regions, compactors), the OS policies and the
TLB hierarchy all accept it optionally and instrument themselves when it is
present; construction without one keeps every component fully functional
with zero observability overhead.

The timeline layer adds a shared simulated-time axis: a :class:`SimClock`
advanced by cost-bearing operations, a :class:`SpanRecorder` for begin/end
latency attribution, and an optional :class:`TimelineSampler` snapshotting
gauges at a fixed simulated cadence.  See ``docs/observability.md`` for
the event schema, metric names, the clock-advancement discipline and
overhead notes, and ``repro metrics`` for the live catalog.
"""

from __future__ import annotations

from repro.obs.clock import SimClock
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    escape_label_value,
    nearest_rank,
    parse_key,
    percentile_from_buckets,
    render_key,
)
from repro.obs.spans import NULL_SPAN, Span, SpanRecorder
from repro.obs.timeline import TimelineSampler, TimeSeries
from repro.obs.trace import RESERVED_FIELDS, SUBSYSTEMS, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Tracer",
    "Observability",
    "SimClock",
    "Span",
    "SpanRecorder",
    "NULL_SPAN",
    "TimelineSampler",
    "TimeSeries",
    "SUBSYSTEMS",
    "RESERVED_FIELDS",
    "DEFAULT_BUCKETS",
    "METRIC_CATALOG",
    "render_key",
    "parse_key",
    "escape_label_value",
    "nearest_rank",
    "percentile_from_buckets",
]


class Observability:
    """The per-machine bundle: metrics, tracer, clock, spans, timeline."""

    def __init__(
        self,
        trace_subsystems: tuple[str, ...] | str = (),
        trace_capacity: int = 65536,
        timeline: bool = False,
        timeline_interval_ms: float = 0.5,
        timeline_max_points: int = 2048,
    ) -> None:
        if trace_subsystems == "all":
            trace_subsystems = SUBSYSTEMS
        self.metrics = MetricsRegistry()
        self.clock = SimClock()
        self.tracer = Tracer(
            capacity=trace_capacity,
            subsystems=trace_subsystems,
            clock=self.clock,
        )
        self.spans = SpanRecorder(self.clock, tracer=self.tracer, metrics=self.metrics)
        self.timeline: TimelineSampler | None = None
        if timeline:
            # The timeline implies the span stream: enable both so the
            # attribution table and the trace's span track are populated.
            self.spans.enabled = True
            self.tracer.enable("span")
            self.timeline = TimelineSampler(
                self.clock,
                interval_ms=timeline_interval_ms,
                max_points=timeline_max_points,
                metrics=self.metrics,
            )

    def timeline_export(self) -> dict:
        """The ``timeline`` section embedded in ``metrics.json``."""
        out: dict = {
            "clock_ns": self.clock.now_ns,
            "spans": self.spans.export(),
        }
        if self.timeline is not None:
            out["sampler"] = self.timeline.export()
        return out

    def write_metrics_json(self, path: str, extra: dict | None = None) -> str:
        """Snapshot the registry (and trace health) into one JSON file."""
        sections = {"trace": self.tracer.summary()}
        if self.spans.enabled or self.timeline is not None:
            sections["timeline"] = self.timeline_export()
        if extra:
            sections.update(extra)
        return self.metrics.write_json(path, extra=sections)


#: (name, kind, labels, description) for every permanently instrumented
#: metric — what ``repro metrics`` prints.  Collector-mirrored metrics are
#: authoritative copies of the simulator's own stats structs, so figures
#: built from either source agree by construction.
METRIC_CATALOG: tuple[tuple[str, str, str, str], ...] = (
    # buddy allocator (incrementally maintained)
    ("buddy_alloc_total", "counter", "order", "block allocations at order"),
    ("buddy_free_total", "counter", "order", "block frees at order"),
    ("buddy_split_total", "counter", "", "block splits while allocating"),
    ("buddy_coalesce_total", "counter", "", "buddy merges while freeing"),
    ("buddy_free_blocks", "gauge", "order", "free-list depth at order"),
    ("buddy_free_frames", "gauge", "", "total free base frames"),
    # zero-fill engine (incrementally maintained)
    ("zerofill_fill_total", "counter", "", "blocks pre-zeroed into the pool"),
    ("zerofill_take_hit_total", "counter", "", "take_zeroed served from pool"),
    ("zerofill_take_miss_total", "counter", "", "take_zeroed on empty pool"),
    ("zerofill_release_total", "counter", "", "blocks released under pressure"),
    ("zerofill_credit_dropped_ns_total", "counter", "", "zeroing credit surrendered"),
    ("zerofill_pool_size", "gauge", "", "pre-zeroed blocks currently pooled"),
    # compaction (incrementally maintained)
    ("compaction_attempt_total", "counter", "kind", "compact() calls"),
    ("compaction_success_total", "counter", "kind", "attempts that produced a block"),
    ("compaction_bytes_copied_total", "counter", "kind", "bytes physically copied"),
    ("compaction_bytes_exchanged_total", "counter", "kind", "bytes moved via pv exchange"),
    ("compaction_wasted_bytes_total", "counter", "kind", "bytes copied then abandoned"),
    ("compaction_blocks_moved_total", "counter", "kind", "blocks migrated"),
    ("compaction_regions_freed_total", "counter", "kind", "source regions fully evacuated"),
    ("compaction_abort_total", "counter", "kind,reason", "evacuations aborted, by reason"),
    # region counters (collector-mirrored from RegionTracker)
    ("regions_fully_free", "gauge", "", "large regions with every frame free"),
    ("regions_with_unmovable", "gauge", "", "large regions pinned by unmovable frames"),
    # policy layer (collector-mirrored from PolicyStats)
    ("policy_faults_total", "counter", "", "page faults handled"),
    ("policy_fault_ns_total", "counter", "", "cumulative fault latency"),
    ("policy_fault_mapped_total", "counter", "size", "fault-time mappings by page size"),
    ("policy_promoted_total", "counter", "size", "promotions by target page size"),
    ("policy_demoted_total", "counter", "size", "demotions by source page size"),
    ("policy_fault_large_attempts_total", "counter", "", "1GB attempts at fault time"),
    ("policy_fault_large_failures_total", "counter", "", "1GB fault attempts that fell back"),
    ("policy_promo_large_attempts_total", "counter", "", "1GB promotion attempts"),
    ("policy_promo_large_failures_total", "counter", "", "1GB promotions that fell back"),
    ("policy_promo_copy_bytes_total", "counter", "", "bytes copied by promotion"),
    ("policy_daemon_ns_total", "counter", "", "background daemon CPU consumed"),
    ("policy_bloat_recovered_bytes_total", "counter", "", "bloat bytes recovered"),
    # TLB (histogram incremental; totals collector-mirrored)
    ("tlb_walk_cycles", "histogram", "size", "page-walk latency distribution"),
    ("tlb_accesses_total", "counter", "", "translations requested"),
    ("tlb_l1_hits_total", "counter", "", "L1 TLB hits"),
    ("tlb_l2_hits_total", "counter", "", "L2 TLB hits"),
    ("tlb_walks_total", "counter", "size", "page walks by page size"),
    # system-level (collector-mirrored)
    ("system_fmfi", "gauge", "", "free-memory fragmentation index at large order"),
    ("system_daemon_ns_total", "counter", "", "daemon ns across all ticks"),
    # NUMA layer (repro.mem.numa + System penalties; multi-node runs only)
    ("numa_alloc_local_total", "counter", "", "allocations placed on the preferred node"),
    ("numa_alloc_remote_total", "counter", "", "allocations spilled to a remote node"),
    ("numa_remote_walk_penalty_ns_total", "counter", "", "extra ns for remote page walks"),
    ("numa_remote_access_penalty_ns_total", "counter", "", "extra ns for remote data accesses"),
    ("numa_replica_updates_total", "counter", "", "page-table replica entries written"),
    ("numa_replica_update_ns_total", "counter", "", "ns spent maintaining pt replicas"),
    ("numa_node_free_frames", "gauge", "node", "free frames on one NUMA node"),
    ("numa_node_fmfi", "gauge", "node", "per-node fragmentation index at large order"),
    # simulated-time timeline layer (repro.obs.clock/spans/timeline)
    ("sim_clock_ns", "gauge", "", "simulated clock position at snapshot"),
    ("span_duration_ns", "histogram", "kind", "span durations by span kind"),
    ("timeline_samples_total", "counter", "", "timeline sampling instants taken"),
    # invariant audit layer (repro.lint.invariants; --audit runs only)
    ("audit_runs_total", "counter", "", "sampled invariant audits executed"),
    ("audit_checks_total", "counter", "", "elementary invariant checks performed"),
    ("audit_violations_total", "counter", "", "invariant violations detected"),
    # service layer (repro.service; loadgen/serve runs only)
    ("service_requests_total", "counter", "workload,policy", "service requests completed"),
    ("service_slo_violations_total", "counter", "workload,policy", "requests over the SLO bound"),
    ("service_request_latency_ns", "histogram", "workload,policy", "request latency incl. queueing"),
    ("service_queue_delay_ns", "histogram", "workload,policy", "open-loop queueing delay"),
    ("service_queue_depth", "gauge", "workload,policy", "requests arrived but not completed"),
    ("service_completed_requests", "gauge", "workload,policy", "requests completed so far"),
    # telemetry pipeline (repro.obs.telemetry; scrape-enabled runs only)
    ("telemetry_frames_total", "counter", "", "scrape frames rendered"),
    ("alert_transitions_total", "counter", "rule", "alert firing/resolved transitions"),
    ("alerts_active", "gauge", "", "alert instances currently firing"),
)
