"""Periodic time-series samplers over the simulated clock.

The paper's figures are functions of time — fragmentation decaying as
compaction works, the zero-fill pool draining under a fault burst — but
counters only give end-of-run totals.  A :class:`TimelineSampler` hangs
off the :class:`repro.obs.clock.SimClock` and snapshots a set of
configured gauges (callables reading authoritative simulator state, the
same sources the metric collectors mirror) every ``interval_ms`` of
*simulated* time into bounded :class:`TimeSeries`.

Boundedness uses flight-recorder decimation: when a series hits
``max_points`` it drops every second point and doubles its sampling
interval, so memory stays O(max_points) for arbitrarily long runs while
the retained points stay evenly spread over the whole run.  Decimation is
a pure function of the sample stream, so a seeded run reproduces its
series byte-for-byte regardless of wall-clock scheduling.
"""

from __future__ import annotations

from typing import Callable


class TimeSeries:
    """One bounded (ts_ms, value) series with decimate-on-overflow."""

    __slots__ = ("name", "unit", "max_points", "points")

    def __init__(self, name: str, unit: str = "", max_points: int = 2048) -> None:
        if max_points < 2:
            raise ValueError(f"max_points must be >= 2, got {max_points}")
        self.name = name
        self.unit = unit
        self.max_points = max_points
        self.points: list[tuple[float, float]] = []

    def append(self, ts_ms: float, value: float) -> bool:
        """Add one sample; returns True when this append decimated."""
        self.points.append((ts_ms, value))
        if len(self.points) >= self.max_points:
            # Keep every second point plus both buffer boundaries — the
            # run's first and newest samples always survive, so decimation
            # halves density without shrinking time coverage at either end.
            kept = self.points[::2]
            if kept[-1] is not self.points[-1]:
                kept.append(self.points[-1])
            self.points = kept
            return True
        return False

    def export(self) -> dict:
        return {
            "unit": self.unit,
            "points": [[round(ts, 6), value] for ts, value in self.points],
        }


class TimelineSampler:
    """Snapshot configured gauges every N simulated milliseconds."""

    def __init__(
        self,
        clock,
        interval_ms: float = 0.5,
        max_points: int = 2048,
        metrics=None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.clock = clock
        self.interval_ns = interval_ms * 1e6
        self.max_points = max_points
        self._series: list[tuple[TimeSeries, Callable[[], float]]] = []
        self._next_due_ns = 0.0
        self.samples = 0
        self._c_samples = None
        if metrics is not None:
            self._c_samples = metrics.counter("timeline_samples_total")
        clock.add_listener(self._on_advance)

    def add_series(
        self, name: str, fn: Callable[[], float], unit: str = ""
    ) -> TimeSeries:
        """Register a gauge; ``fn`` is polled at every sampling instant."""
        series = TimeSeries(name, unit=unit, max_points=self.max_points)
        self._series.append((series, fn))
        return series

    def _on_advance(self, now_ns: float) -> None:
        if now_ns < self._next_due_ns or not self._series:
            return
        self.sample(now_ns)
        self._next_due_ns = now_ns + self.interval_ns

    def sample(self, now_ns: float | None = None) -> None:
        """Take one sample of every series at the current instant."""
        ts_ms = (self.clock.now_ns if now_ns is None else now_ns) / 1e6
        self.samples += 1
        if self._c_samples is not None:
            self._c_samples.inc()
        decimated = False
        for series, fn in self._series:
            decimated |= series.append(ts_ms, float(fn()))
        if decimated:
            # Keep all series on one cadence after any of them halves.
            self.interval_ns *= 2.0

    def export(self) -> dict:
        """JSON-able series map (embedded under ``timeline.series``)."""
        return {
            "interval_ms": self.interval_ns / 1e6,
            "samples": self.samples,
            "series": {s.name: s.export() for s, _ in sorted(
                self._series, key=lambda pair: pair[0].name
            )},
        }
