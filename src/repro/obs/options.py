"""Unified observability options shared by ``run``, ``experiment``, ``sweep``.

Historically each CLI command declared its own subset of observability
flags (``--trace``, ``--metrics-out``, ``--audit``, ``--timeline``,
``--timeline-out``, ``--report-out``) and threaded them into
:class:`repro.experiments.runner.RunConfig` by hand, so the flag surfaces
drifted.  :class:`ObsOptions` is the one source of truth: every command
registers its flags through :func:`add_obs_args`, parses them back with
:func:`obs_options_from_args`, and hands runners the exact ``RunConfig``
fields via :meth:`ObsOptions.run_kwargs`.

Scopes
------

``run``
    The full surface: tracing (ring buffer, subsystem filter, capacity,
    JSONL export), metrics snapshot, invariant auditing, and the
    simulated-time timeline with its Chrome-trace / HTML exports.
``experiment`` / ``sweep``
    The ambient toggles that make sense across many runs: ``--audit``
    and ``--timeline``.  (Their output *paths* stay per-command —
    experiments write per-run files into a directory, sweeps into their
    ``--out`` tree.)
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass


@dataclass(frozen=True)
class ObsOptions:
    """Parsed observability selections for one CLI invocation."""

    #: record structured events in the bounded ring buffer
    trace: bool = False
    #: subsystems to trace; ``None`` = all of ``repro.obs.trace.SUBSYSTEMS``
    trace_subsystems: tuple[str, ...] | None = None
    #: ring-buffer size in events (oldest dropped first)
    trace_capacity: int = 65536
    #: write traced events as JSON lines here (implies :attr:`trace`)
    trace_out: str | None = None
    #: write the metrics registry snapshot here as JSON
    metrics_out: str | None = None
    #: attach a sampled invariant auditor (``repro.lint.invariants``)
    audit: bool = False
    #: buddy events between sampled audits (smaller = tighter, slower)
    audit_every: int = 4096
    #: advance the simulated clock through spans and samplers
    timeline: bool = False
    #: write a Chrome Trace Event Format JSON here (implies timeline)
    timeline_out: str | None = None
    #: write a self-contained single-file HTML report here (implies timeline)
    report_out: str | None = None
    #: append Prometheus-text scrape frames (SimClock cadence) here
    telemetry_out: str | None = None
    #: simulated milliseconds between scrape frames
    telemetry_interval_ms: float = 1.0

    @property
    def trace_enabled(self) -> bool:
        """Tracing is on — requested directly or implied by an export path."""
        return self.trace or self.trace_out is not None

    def run_kwargs(self, primary: bool = True) -> dict:
        """The observability fields of a ``RunConfig``/``VirtRunConfig``.

        ``primary=False`` is for companion runs (e.g. ``--baseline``):
        ambient toggles still apply, but per-run artifacts (trace buffer,
        metrics snapshot, timeline exports) belong to the primary run
        only.  ``audit``/``timeline`` map to ``None`` when their flag is
        off so the runner's ambient ``audit_enabled()``/
        ``timeline_enabled()`` defaults still get a say.
        """
        return dict(
            trace=self.trace_enabled and primary,
            trace_subsystems=self.trace_subsystems,
            trace_capacity=self.trace_capacity,
            metrics_out=self.metrics_out if primary else None,
            audit=self.audit or None,
            audit_every=self.audit_every,
            timeline=self.timeline or None,
            timeline_out=self.timeline_out if primary else None,
            report_out=self.report_out if primary else None,
            telemetry_out=self.telemetry_out if primary else None,
            telemetry_interval_ms=self.telemetry_interval_ms,
        )


def add_obs_args(
    parser: argparse.ArgumentParser, scope: str = "run"
) -> None:
    """Register the observability flags for ``scope`` on ``parser``.

    ``scope`` is ``"run"`` (the full surface) or ``"experiment"`` /
    ``"sweep"`` (the ambient ``--audit`` / ``--timeline`` toggles).
    """
    if scope not in ("run", "experiment", "sweep"):
        raise ValueError(f"unknown obs-args scope: {scope!r}")
    many = "in every run" if scope == "experiment" else "in every worker"
    if scope == "run":
        parser.add_argument(
            "--audit",
            action="store_true",
            help="attach a sampled invariant auditor (repro.lint.invariants)",
        )
        parser.add_argument(
            "--audit-every",
            type=int,
            default=4096,
            metavar="N",
            help="audit at the next checkpoint after every N buddy events",
        )
    else:
        parser.add_argument(
            "--audit",
            action="store_true",
            help=f"attach sampled invariant auditors {many}"
            + (
                "; audit failures surface as unit failures in the manifest"
                if scope == "sweep"
                else ""
            ),
        )
    if scope != "run":
        parser.add_argument(
            "--timeline",
            action="store_true",
            help=f"record the simulated-time timeline {many}"
            + (
                " and aggregate the sections into sweep_report.html"
                if scope == "sweep"
                else ""
            ),
        )
        return

    from repro.obs.trace import SUBSYSTEMS

    parser.add_argument(
        "--trace",
        action="store_true",
        help="record structured events in a bounded ring buffer",
    )
    parser.add_argument(
        "--trace-subsystems",
        default=None,
        metavar="NAMES",
        help=f"comma-separated subset of {','.join(SUBSYSTEMS)} (default: all)",
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=65536,
        metavar="N",
        help="ring-buffer size in events (oldest dropped first)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write traced events as JSON lines to PATH (implies --trace)",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write the metrics registry snapshot to PATH as JSON",
    )
    parser.add_argument(
        "--timeline",
        action="store_true",
        help="advance the simulated clock through spans and samplers "
        "(implied by --timeline-out / --report-out)",
    )
    parser.add_argument(
        "--timeline-out",
        default=None,
        metavar="PATH",
        help="write a Chrome Trace Event Format JSON (Perfetto-loadable)",
    )
    parser.add_argument(
        "--report-out",
        default=None,
        metavar="PATH",
        help="write a self-contained single-file HTML timeline report",
    )
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="PATH",
        help="append Prometheus-text scrape frames to PATH on the "
        "simulated-clock cadence",
    )
    parser.add_argument(
        "--telemetry-interval-ms",
        type=float,
        default=1.0,
        metavar="MS",
        help="simulated milliseconds between scrape frames (default: 1)",
    )


def obs_options_from_args(args: argparse.Namespace) -> ObsOptions:
    """Build :class:`ObsOptions` from parsed args of any scope.

    Flags a scope did not register fall back to the dataclass defaults,
    so one construction site serves ``run``, ``experiment`` and
    ``sweep`` alike.
    """
    raw_subsystems = getattr(args, "trace_subsystems", None)
    subsystems = (
        tuple(s for s in raw_subsystems.split(",") if s)
        if raw_subsystems
        else None
    )
    return ObsOptions(
        trace=getattr(args, "trace", False),
        trace_subsystems=subsystems,
        trace_capacity=getattr(args, "trace_capacity", 65536),
        trace_out=getattr(args, "trace_out", None),
        metrics_out=getattr(args, "metrics_out", None),
        audit=getattr(args, "audit", False),
        audit_every=getattr(args, "audit_every", 4096),
        timeline=getattr(args, "timeline", False),
        timeline_out=getattr(args, "timeline_out", None),
        report_out=getattr(args, "report_out", None),
        telemetry_out=getattr(args, "telemetry_out", None),
        telemetry_interval_ms=getattr(args, "telemetry_interval_ms", 1.0),
    )
