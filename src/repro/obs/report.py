"""Self-contained single-file HTML reports with inline SVG sparklines.

The report is the human half of the timeline pipeline: the Chrome trace
is for zooming (Perfetto), the report is for glancing — one file,
no external assets or scripts, e-mailable and artifact-uploadable.  It is
rendered from **exported metrics dicts** (the ``metrics.json`` schema),
not live objects, so ``repro report`` can rebuild it after the fact and
the sweep orchestrator can aggregate workers' JSON into one page.

Determinism is a hard requirement (byte-identical output for a fixed
seed, regardless of ``--jobs``): every iteration is over sorted keys,
floats render through one ``%.6g`` formatter, and nothing touches the
wall clock.
"""

from __future__ import annotations

import html
import json
import math
import os

_CSS = """
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem;
       color: #1a1a2e; }
h1 { border-bottom: 2px solid #1a1a2e; padding-bottom: .3rem; }
h2 { margin-top: 2rem; color: #16213e; }
h3 { margin-bottom: .3rem; }
table { border-collapse: collapse; margin: .5rem 0 1rem; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .6rem; text-align: right; }
th { background: #e2e8f0; }
td.l, th.l { text-align: left; }
.spark { display: inline-block; vertical-align: middle; margin-right: .6rem; }
.series { margin: .4rem 0; }
.series .meta { color: #475569; font-size: .85rem; }
.empty { color: #94a3b8; font-style: italic; }
svg polyline { fill: none; stroke: #2563eb; stroke-width: 1.5; }
svg line.axis { stroke: #cbd5e1; stroke-width: 1; }
"""


def fmt(value) -> str:
    """The one float formatter every cell goes through (determinism)."""
    if value is None:
        return "-"
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return "%.6g" % value
    return str(value)


def _esc(value) -> str:
    return html.escape(str(value), quote=True)


def sparkline(points, width: int = 300, height: int = 44) -> str:
    """Inline SVG polyline over [[ts_ms, value], ...] samples."""
    if len(points) < 2:
        return '<span class="empty">not enough samples</span>'
    ts = [p[0] for p in points]
    vs = [p[1] for p in points]
    t0, t1 = min(ts), max(ts)
    v0, v1 = min(vs), max(vs)
    tspan = (t1 - t0) or 1.0
    vspan = (v1 - v0) or 1.0
    pad = 2.0
    coords = " ".join(
        "%.2f,%.2f"
        % (
            pad + (t - t0) / tspan * (width - 2 * pad),
            height - pad - (v - v0) / vspan * (height - 2 * pad),
        )
        for t, v in zip(ts, vs)
    )
    return (
        f'<svg class="spark" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">'
        f'<line class="axis" x1="0" y1="{height - 1}" x2="{width}" '
        f'y2="{height - 1}"/>'
        f'<polyline points="{coords}"/></svg>'
    )


def _attribution_table(rows) -> str:
    if not rows:
        return '<p class="empty">no spans recorded</p>'
    out = [
        "<table><tr>"
        '<th class="l">kind</th><th>order</th><th>count</th>'
        "<th>total ns</th><th>self ns</th><th>child ns</th><th>mean ns</th>"
        "</tr>"
    ]
    for r in rows:
        out.append(
            "<tr>"
            f'<td class="l">{_esc(r["kind"])}</td>'
            f'<td>{fmt(r.get("order"))}</td>'
            f'<td>{fmt(r["count"])}</td>'
            f'<td>{fmt(r["total_ns"])}</td>'
            f'<td>{fmt(r["self_ns"])}</td>'
            f'<td>{fmt(r["child_ns"])}</td>'
            f'<td>{fmt(r["mean_ns"])}</td>'
            "</tr>"
        )
    out.append("</table>")
    return "".join(out)


def _series_section(series: dict) -> str:
    if not series:
        return '<p class="empty">no timeline series</p>'
    out = []
    for name in sorted(series):
        s = series[name]
        points = s.get("points", [])
        unit = s.get("unit", "")
        last = points[-1][1] if points else None
        lo = min((p[1] for p in points), default=None)
        hi = max((p[1] for p in points), default=None)
        unit_sfx = f" {_esc(unit)}" if unit else ""
        out.append(
            f'<div class="series"><h3>{_esc(name)}</h3>'
            f"{sparkline(points)}"
            f'<span class="meta">{len(points)} pts &middot; '
            f"min {fmt(lo)}{unit_sfx} &middot; max {fmt(hi)}{unit_sfx} "
            f"&middot; last {fmt(last)}{unit_sfx}</span></div>"
        )
    return "".join(out)


def _histogram_table(histograms: dict) -> str:
    from .metrics import percentile_from_buckets

    if not histograms:
        return '<p class="empty">no histograms</p>'
    out = [
        "<table><tr>"
        '<th class="l">histogram</th><th>count</th><th>mean</th>'
        "<th>p50</th><th>p90</th><th>p99</th></tr>"
    ]
    for key in sorted(histograms):
        h = histograms[key]
        count = h.get("count", 0)
        mean = h["sum"] / count if count else 0.0
        out.append(
            "<tr>"
            f'<td class="l">{_esc(key)}</td>'
            f"<td>{fmt(count)}</td><td>{fmt(mean)}</td>"
            f"<td>{fmt(percentile_from_buckets(h, 50.0))}</td>"
            f"<td>{fmt(percentile_from_buckets(h, 90.0))}</td>"
            f"<td>{fmt(percentile_from_buckets(h, 99.0))}</td>"
            "</tr>"
        )
    out.append("</table>")
    return "".join(out)


def _run_section(title: str, data: dict, heading: str = "h2") -> str:
    timeline = data.get("timeline") or {}
    spans = timeline.get("spans") or {}
    sampler = timeline.get("sampler") or {}
    parts = [f"<{heading}>{_esc(title)}</{heading}>"]
    info = []
    if "clock_ns" in timeline:
        info.append(f"simulated time {fmt(timeline['clock_ns'])} ns")
    if spans:
        info.append(f"{fmt(spans.get('spans_closed', 0))} spans")
    if sampler:
        info.append(f"{fmt(sampler.get('samples', 0))} timeline samples")
    if info:
        parts.append(f'<p class="meta">{" &middot; ".join(info)}</p>')
    parts.append("<h3>Latency attribution</h3>")
    parts.append(_attribution_table(spans.get("attribution", [])))
    parts.append("<h3>Time series</h3>")
    parts.append(_series_section(sampler.get("series", {})))
    parts.append("<h3>Histogram percentiles</h3>")
    parts.append(_histogram_table(data.get("histograms", {})))
    return "".join(parts)


def render_report(runs, title: str = "repro timeline report") -> str:
    """Render ``[(section_title, metrics_dict), ...]`` into one HTML page."""
    body = [_run_section(name, data) for name, data in runs]
    return (
        "<!doctype html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body><h1>{_esc(title)}</h1>\n"
        + "\n".join(body)
        + "\n</body></html>\n"
    )


def write_report(path: str, runs, title: str = "repro timeline report") -> str:
    with open(path, "w") as f:
        f.write(render_report(runs, title=title))
    return path


def load_metrics(path: str) -> dict:
    with open(path) as f:
        return json.load(f)


def runs_from_units(units) -> list:
    """Report sections for a sweep's units (manifest ``units`` schema).

    Iterates units sorted by id and their metrics files in recorded
    (sorted) order, so the aggregated report is independent of worker
    scheduling — the determinism contract ``--jobs N`` output rides on.
    Unreadable or timeline-less files are skipped, mirroring how the
    sweep compiler degrades gracefully around failed units.
    """
    runs = []
    for unit in sorted(units, key=lambda u: u.get("unit_id") or ""):
        for path in unit.get("metrics", []) or []:
            if not os.path.exists(path):
                continue
            try:
                data = load_metrics(path)
            except (OSError, ValueError):
                continue
            if "timeline" not in data:
                continue
            title = f"{unit.get('unit_id')}: {os.path.basename(path)}"
            runs.append((title, data))
    return runs
