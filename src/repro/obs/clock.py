"""The simulated-time axis: a nanosecond clock owned by one machine.

Every cost-bearing operation in the simulator produces a nanosecond (or
cycle) figure — fault latencies, zero-fill work, compaction copies, pv
hypercalls, page-walk charges.  :class:`SimClock` folds those figures into
one monotonic axis so events, spans and gauge samples can be placed *in
time* the way ftrace/perfetto timelines are, instead of merely ordered by
sequence number.

Advancement discipline (who calls :meth:`advance`)
--------------------------------------------------

Double counting is avoided by advancing directly only at *leaf* cost
sites, with each aggregation point charging the residual its own
accounting shows but no leaf beneath it reported
(``total - (now - start)``, clamped at zero):

* ``TLBHierarchy.access`` — translation cycles (L2 hits + walks),
* ``ZeroFillEngine.background_fill`` — daemon-context zeroing (the
  fault-path refill overlaps application time on another core and is
  *not* charged),
* ``PVExchangeInterface.exchange`` — guest time inside the hypercall,
* ``_CompactorBase.compact`` — the attempt's scan + copy time minus
  whatever the pv exchange leaf already charged,
* ``System._fault`` — the fault latency minus what the leaves below the
  handler charged,
* ``System.run_daemons`` — the tick's consumed budget minus what the
  zero-fill / compaction work inside it charged.

The axis is therefore *machine time*: concurrent background work is
folded in sequentially, like per-cpu ftrace buffers merged into one
stream.  Listeners (the timeline samplers) observe every advancement and
may read simulator state — advance is only called at points where the
substrate is consistent.
"""

from __future__ import annotations

from typing import Callable


class SimClock:
    """Monotonic simulated-nanosecond clock with advancement listeners."""

    __slots__ = ("now_ns", "_listeners")

    def __init__(self) -> None:
        self.now_ns = 0.0
        self._listeners: list[Callable[[float], None]] = []

    def advance(self, ns: float) -> float:
        """Move time forward by ``ns`` (ignored if <= 0); returns now."""
        if ns > 0.0:
            self.now_ns += ns
            for listener in self._listeners:
                listener(self.now_ns)
        return self.now_ns

    def add_listener(self, fn: Callable[[float], None]) -> None:
        """Call ``fn(now_ns)`` after every advancement (sampler hook)."""
        self._listeners.append(fn)

    def remove_listener(self, fn: Callable[[float], None]) -> None:
        self._listeners.remove(fn)
