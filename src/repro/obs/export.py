"""Exporters: Chrome Trace Event Format JSON for Perfetto / chrome://tracing.

The Trace Event Format is the lingua franca of timeline tooling: duration
events (``ph: B``/``E``) render as nested slices, counter events
(``ph: C``) as stacked area tracks, instants (``ph: i``) as markers.
``chrome_trace`` converts one machine's observability state into that
schema:

* span begin/end events (tracer subsystem ``span``) become B/E pairs on
  the ``spans`` track.  Ring overflow can orphan an ``E`` whose ``B``
  fell off the front — orphans are dropped; spans still open at export
  (ragged shutdown) are closed at the clock's current instant, so every
  emitted ``B`` has a matching ``E``;
* timeline series become one counter track each;
* every other buffered trace event becomes an instant on its subsystem's
  track.

Timestamps are microseconds (the format's unit), derived from the
simulated clock — chronological by construction, so each track is
monotonic without re-sorting.
"""

from __future__ import annotations

import json
from typing import IO

#: tid layout: spans on 1, counters on 0, instants from tid 16 upward
SPAN_TID = 1
COUNTER_TID = 0
INSTANT_TID_BASE = 16


def chrome_trace(
    tracer=None,
    timeline=None,
    clock=None,
    include_instants: bool = True,
) -> dict:
    """Build a Trace-Event-Format dict from live observability objects."""
    events: list[dict] = [
        _thread_meta(SPAN_TID, "spans"),
        _thread_meta(COUNTER_TID, "counters"),
    ]
    if tracer is not None:
        events.extend(_span_events(tracer, clock))
        if include_instants:
            events.extend(_instant_events(tracer))
    if timeline is not None:
        events.extend(_counter_events(timeline))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro simulated-time timeline"},
    }


def write_chrome_trace(dest: str | IO[str], **kwargs) -> int:
    """Serialize :func:`chrome_trace` to ``dest``; returns the event count."""
    trace = chrome_trace(**kwargs)
    if isinstance(dest, str):
        with open(dest, "w") as f:
            json.dump(trace, f, sort_keys=True)
            f.write("\n")
    else:
        json.dump(trace, dest, sort_keys=True)
        dest.write("\n")
    return len(trace["traceEvents"])


def _thread_meta(tid: int, name: str) -> dict:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": 0,
        "tid": tid,
        "args": {"name": name},
    }


def _span_events(tracer, clock) -> list[dict]:
    """Pair B/E span events; drop orphan E's, close trailing B's."""
    out: list[dict] = []
    open_stack: list[dict] = []
    for event in tracer.events(subsystem="span"):
        phase = event.get("phase")
        ts_us = event["ts_ns"] / 1000.0
        name = event["event"]
        args = {
            k: v
            for k, v in event.items()
            if k not in ("seq", "ts_ns", "subsystem", "event", "phase")
        }
        if phase == "B":
            record = {
                "ph": "B",
                "name": name,
                "pid": 0,
                "tid": SPAN_TID,
                "ts": ts_us,
                "args": args,
            }
            out.append(record)
            open_stack.append(record)
        elif phase == "E":
            if not open_stack:
                continue  # its B fell off the ring: unmatchable
            open_stack.pop()
            out.append(
                {
                    "ph": "E",
                    "name": name,
                    "pid": 0,
                    "tid": SPAN_TID,
                    "ts": ts_us,
                    "args": args,
                }
            )
        elif phase == "I":
            out.append(
                {
                    "ph": "i",
                    "s": "t",
                    "name": name,
                    "pid": 0,
                    "tid": SPAN_TID,
                    "ts": ts_us,
                    "args": args,
                }
            )
    # Spans still open (export mid-run): close innermost-first at "now".
    end_us = (clock.now_ns if clock is not None else 0.0) / 1000.0
    for record in reversed(open_stack):
        end_us = max(end_us, record["ts"])
        out.append(
            {
                "ph": "E",
                "name": record["name"],
                "pid": 0,
                "tid": SPAN_TID,
                "ts": end_us,
                "args": {},
            }
        )
    return out


def _counter_events(timeline) -> list[dict]:
    exported = timeline.export()["series"]
    merged = sorted(
        (ts_ms, name, value)
        for name in exported
        for ts_ms, value in exported[name]["points"]
    )
    return [
        {
            "ph": "C",
            "name": name,
            "pid": 0,
            "tid": COUNTER_TID,
            "ts": ts_ms * 1000.0,
            "args": {"value": value},
        }
        for ts_ms, name, value in merged
    ]


def _instant_events(tracer) -> list[dict]:
    out: list[dict] = []
    tids: dict[str, int] = {}
    metas: list[dict] = []
    for event in tracer.events():
        sub = event["subsystem"]
        if sub == "span":
            continue
        tid = tids.get(sub)
        if tid is None:
            tid = tids[sub] = INSTANT_TID_BASE + len(tids)
            metas.append(_thread_meta(tid, sub))
        out.append(
            {
                "ph": "i",
                "s": "t",
                "name": f"{sub}:{event['event']}",
                "pid": 0,
                "tid": tid,
                "ts": event["ts_ns"] / 1000.0,
                "args": {
                    k: v
                    for k, v in event.items()
                    if k not in ("seq", "ts_ns", "subsystem", "event")
                },
            }
        )
    return metas + out
