"""Sliding-window aggregation over simulated-time scrape frames.

Counters in a scrape stream are cumulative; what a burn-rate rule or a
dashboard needs is *windowed* views — "SLO violations over the last 2ms
of simulated time" against "over the last 10ms".  This module computes
them from successive frames without ever re-walking history:

* :class:`WindowSeries` — bounded buffer of (ts_ns, cumulative value)
  samples answering ``delta(window_ns)`` / ``rate_per_s(window_ns)``;
* :class:`HistogramWindow` — the same for cumulative histogram exports,
  answering mergeable bucket-delta windows (two adjacent window deltas
  merged equal the delta over the union — pinned by the property tests);
* :class:`FrameAggregator` — one of each per series in the stream, fed
  frame by frame, the query surface the alert engine and the dashboard
  read.

Boundedness reuses the flight-recorder discipline of
:class:`repro.obs.timeline.TimeSeries`: samples older than the horizon
(the largest window anyone asks for) are evicted eagerly; if a pathological
cadence still overflows ``max_samples``, every second retained sample is
dropped — decimation is a pure function of the sample stream, so windowed
reads stay byte-identical across repeat runs.
"""

from __future__ import annotations

from bisect import bisect_right


def merge_histogram_exports(exports: list) -> dict:
    """Merge :meth:`Histogram.export`-shaped dicts over identical bounds.

    Bucket counts, ``count`` and ``sum`` add; ``max`` (when any export
    carries one) takes the largest recorded value.  Mismatched bucket
    ladders raise — merging histograms observed over different bounds is
    a programming error everywhere this is used (fleet cells, window
    deltas of one series).
    """
    if not exports:
        return {"count": 0, "sum": 0.0, "buckets": {}}
    bounds = set(exports[0]["buckets"])
    merged: dict = {
        "count": 0,
        "sum": 0.0,
        "buckets": {bound: 0 for bound in exports[0]["buckets"]},
    }
    observed_max = None
    for export in exports:
        if set(export["buckets"]) != bounds:
            raise ValueError(
                "cannot merge histograms with different bucket bounds"
            )
        merged["count"] += export["count"]
        merged["sum"] += export["sum"]
        for bound, n in export["buckets"].items():
            merged["buckets"][bound] += n
        export_max = export.get("max")
        if export_max is not None and (
            observed_max is None or export_max > observed_max
        ):
            observed_max = export_max
    if observed_max is not None:
        merged["max"] = observed_max
    return merged


class WindowSeries:
    """Bounded (ts_ns, cumulative value) samples with sliding deltas."""

    __slots__ = ("horizon_ns", "max_samples", "ts", "values")

    def __init__(self, horizon_ns: float, max_samples: int = 512) -> None:
        if horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
        if max_samples < 4:
            raise ValueError(f"max_samples must be >= 4, got {max_samples}")
        self.horizon_ns = horizon_ns
        self.max_samples = max_samples
        self.ts: list[float] = []
        self.values: list[float] = []

    def observe(self, ts_ns: float, value: float) -> None:
        """Append one cumulative sample (monotonic timestamps expected)."""
        self.ts.append(ts_ns)
        self.values.append(value)
        self._evict(ts_ns)

    def _evict(self, now_ns: float) -> None:
        # Horizon eviction keeps one sample at-or-before the horizon edge
        # so a full-width window always has an anchor to difference from.
        floor = now_ns - self.horizon_ns
        cut = bisect_right(self.ts, floor) - 1
        if cut > 0:
            del self.ts[:cut]
            del self.values[:cut]
        if len(self.ts) >= self.max_samples:
            # Flight-recorder decimation: halve density, keep both ends.
            kept_ts = self.ts[::2]
            kept_values = self.values[::2]
            if kept_ts[-1] != self.ts[-1]:
                kept_ts.append(self.ts[-1])
                kept_values.append(self.values[-1])
            self.ts = kept_ts
            self.values = kept_values

    def _anchor(self, window_ns: float, now_ns: float) -> float | None:
        """Cumulative value at-or-before ``now - window`` (window anchor)."""
        if not self.ts:
            return None
        idx = bisect_right(self.ts, now_ns - window_ns) - 1
        if idx < 0:
            # Window reaches before recorded history: anchor at the
            # oldest sample (a partial window, never a negative one).
            idx = 0
        return self.values[idx]

    def latest(self) -> float | None:
        return self.values[-1] if self.values else None

    def delta(self, window_ns: float, now_ns: float | None = None) -> float:
        """Cumulative increase over the trailing window (>= 0)."""
        if not self.ts:
            return 0.0
        now = self.ts[-1] if now_ns is None else now_ns
        anchor = self._anchor(window_ns, now)
        return max(0.0, self.values[-1] - (anchor or 0.0))

    def rate_per_s(
        self, window_ns: float, now_ns: float | None = None
    ) -> float:
        """Windowed rate in events per simulated second."""
        return self.delta(window_ns, now_ns) / (window_ns / 1e9)


class HistogramWindow:
    """Sliding bucket-delta windows over cumulative histogram exports.

    Each observation is a full cumulative export (count/sum/buckets as of
    that frame); a window delta is the bucket-wise difference between the
    newest export and the export at the window anchor.  Deltas over
    adjacent windows are mergeable with :func:`merge_histogram_exports`
    and recompose exactly into the whole-run histogram.
    """

    __slots__ = ("horizon_ns", "max_samples", "ts", "exports")

    def __init__(self, horizon_ns: float, max_samples: int = 128) -> None:
        if horizon_ns <= 0:
            raise ValueError(f"horizon_ns must be positive, got {horizon_ns}")
        if max_samples < 4:
            raise ValueError(f"max_samples must be >= 4, got {max_samples}")
        self.horizon_ns = horizon_ns
        self.max_samples = max_samples
        self.ts: list[float] = []
        self.exports: list[dict] = []

    def observe(self, ts_ns: float, export: dict) -> None:
        self.ts.append(ts_ns)
        self.exports.append(
            {
                "count": export["count"],
                "sum": export["sum"],
                "buckets": dict(export["buckets"]),
            }
        )
        floor = ts_ns - self.horizon_ns
        cut = bisect_right(self.ts, floor) - 1
        if cut > 0:
            del self.ts[:cut]
            del self.exports[:cut]
        if len(self.ts) >= self.max_samples:
            kept_ts = self.ts[::2]
            kept_exports = self.exports[::2]
            if kept_ts[-1] != self.ts[-1]:
                kept_ts.append(self.ts[-1])
                kept_exports.append(self.exports[-1])
            self.ts = kept_ts
            self.exports = kept_exports

    def latest(self) -> dict | None:
        return self.exports[-1] if self.exports else None

    def window_delta(
        self, window_ns: float, now_ns: float | None = None
    ) -> dict:
        """Export-shaped dict of observations inside the trailing window."""
        if not self.ts:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        now = self.ts[-1] if now_ns is None else now_ns
        idx = bisect_right(self.ts, now - window_ns) - 1
        newest = self.exports[-1]
        if idx < 0:
            # Window covers all recorded history: the delta from zero is
            # the newest cumulative export itself.
            return {
                "count": newest["count"],
                "sum": newest["sum"],
                "buckets": dict(newest["buckets"]),
            }
        anchor = self.exports[idx]
        return histogram_export_delta(newest, anchor)


def histogram_export_delta(newer: dict, older: dict) -> dict:
    """``newer - older`` for cumulative export dicts of one series."""
    if set(newer["buckets"]) != set(older["buckets"]):
        raise ValueError("cannot difference histograms with different bounds")
    return {
        "count": newer["count"] - older["count"],
        "sum": newer["sum"] - older["sum"],
        "buckets": {
            bound: newer["buckets"][bound] - older["buckets"][bound]
            for bound in newer["buckets"]
        },
    }


class FrameAggregator:
    """Windowed views over every series of a scrape-frame stream.

    Feed successive snapshots with :meth:`observe_frame`; query rates,
    deltas and windowed histograms by flat series key.  The horizon is
    the largest window any rule or panel asks for — pass it up front so
    eviction never discards an anchor still in use.
    """

    def __init__(
        self, horizon_ns: float = 50e6, max_samples: int = 512
    ) -> None:
        self.horizon_ns = horizon_ns
        self.max_samples = max_samples
        self.counters: dict[str, WindowSeries] = {}
        self.gauges: dict[str, WindowSeries] = {}
        self.histograms: dict[str, HistogramWindow] = {}
        self.frames = 0
        self.last_ts_ns = 0.0

    def observe_frame(self, ts_ns: float, snapshot: dict) -> None:
        """Fold one snapshot (at simulated instant ``ts_ns``) in."""
        self.frames += 1
        self.last_ts_ns = ts_ns
        for key in sorted(snapshot.get("counters", {})):
            series = self.counters.get(key)
            if series is None:
                series = self.counters[key] = WindowSeries(
                    self.horizon_ns, self.max_samples
                )
            series.observe(ts_ns, snapshot["counters"][key])
        for key in sorted(snapshot.get("gauges", {})):
            series = self.gauges.get(key)
            if series is None:
                series = self.gauges[key] = WindowSeries(
                    self.horizon_ns, self.max_samples
                )
            series.observe(ts_ns, snapshot["gauges"][key])
        for key in sorted(snapshot.get("histograms", {})):
            window = self.histograms.get(key)
            if window is None:
                window = self.histograms[key] = HistogramWindow(
                    self.horizon_ns, max(4, self.max_samples // 4)
                )
            window.observe(ts_ns, snapshot["histograms"][key])

    # -- queries ------------------------------------------------------------
    def value(self, key: str) -> float | None:
        """Newest cumulative/instant value of a counter or gauge series."""
        series = self.counters.get(key) or self.gauges.get(key)
        return series.latest() if series is not None else None

    def delta(self, key: str, window_ns: float) -> float:
        series = self.counters.get(key) or self.gauges.get(key)
        if series is None:
            return 0.0
        return series.delta(window_ns, self.last_ts_ns)

    def rate_per_s(self, key: str, window_ns: float) -> float:
        series = self.counters.get(key) or self.gauges.get(key)
        if series is None:
            return 0.0
        return series.rate_per_s(window_ns, self.last_ts_ns)

    def histogram_window(self, key: str, window_ns: float | None) -> dict:
        window = self.histograms.get(key)
        if window is None:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        if window_ns is None:
            latest = window.latest()
            return latest if latest is not None else {
                "count": 0, "sum": 0.0, "buckets": {}
            }
        return window.window_delta(window_ns, self.last_ts_ns)

    def quantile(
        self, key: str, pct: float, window_ns: float | None = None
    ) -> float:
        """Nearest-rank percentile of a histogram series over a window."""
        from repro.obs.metrics import percentile_from_buckets

        export = self.histogram_window(key, window_ns)
        if not export.get("count"):
            return 0.0
        return percentile_from_buckets(export, pct)
