"""``repro watch``: a streaming terminal dashboard over scrape frames.

The dashboard tails the telemetry a running fleet is already writing —
the per-cell ``.prom`` scrape streams of ``repro serve`` / ``repro
loadgen`` / ``repro tenants`` (or the live ``/metrics`` endpoint) — and
renders per-policy latency percentiles, throughput and SLO burn,
saturation gauges, per-node FMFI/free-frame inventory, and the active
alert set, refreshing in place.

Rendering is split from the loop on purpose: :func:`render_dashboard`
is a pure function of parsed frames (unit-testable, deterministic); only
:func:`watch` touches the wall clock, because a live tail has no other
time source.  Nothing rendered here is ever written back into an
artifact.
"""

from __future__ import annotations

import json
import os
from typing import Callable

from repro.obs.metrics import parse_key, percentile_from_buckets
from repro.obs.telemetry.exposition import (
    iter_frames,
    parse_exposition,
    read_last_frame,
)
from repro.obs.telemetry.windows import merge_histogram_exports

#: families the service panels read
_LATENCY = "service_request_latency_ns"
_REQUESTS = "service_requests_total"
_VIOLATIONS = "service_slo_violations_total"
_QUEUE_DEPTH = "service_queue_depth"
_NODE_FMFI = "numa_node_fmfi"
_NODE_FREE = "numa_node_free_frames"
_ALERTS_ACTIVE = "alerts_active"


def collect_streams(source: str) -> dict[str, dict]:
    """Newest parsed frame per stream: ``{stream: {seq, sim_ms, snapshot}}``.

    ``source`` is a directory of ``.prom`` streams, one stream file, or
    an ``http(s)://`` endpoint URL serving the concatenated-streams
    format of :mod:`repro.obs.telemetry.endpoint`.
    """
    if source.startswith(("http://", "https://")):
        return _streams_from_endpoint(source)
    if os.path.isdir(source):
        out: dict[str, dict] = {}
        for entry in sorted(os.listdir(source)):
            if not entry.endswith(".prom"):
                continue
            last = read_last_frame(os.path.join(source, entry))
            if last is None:
                continue
            seq, ts_ms, frame = last
            out[entry[: -len(".prom")]] = {
                "seq": seq,
                "sim_ms": ts_ms,
                "snapshot": parse_exposition(frame),
            }
        return out
    last = read_last_frame(source)
    if last is None:
        return {}
    seq, ts_ms, frame = last
    name = os.path.basename(source)
    if name.endswith(".prom"):
        name = name[: -len(".prom")]
    return {name: {"seq": seq, "sim_ms": ts_ms, "snapshot": parse_exposition(frame)}}


def _streams_from_endpoint(url: str) -> dict[str, dict]:
    from urllib.request import urlopen

    base = url.rstrip("/")
    if not base.endswith("/metrics"):
        base += "/metrics"
    with urlopen(base, timeout=10.0) as response:
        text = response.read().decode()
    out: dict[str, dict] = {}
    current: str | None = None
    chunk: list[str] = []
    for line in text.splitlines() + ["# stream <end>"]:
        if line.startswith("# stream "):
            if current is not None and chunk:
                for seq, ts_ms, frame in iter_frames("\n".join(chunk) + "\n"):
                    out[current] = {
                        "seq": seq,
                        "sim_ms": ts_ms,
                        "snapshot": parse_exposition(frame),
                    }
            name = line.split()[2]
            current = name[: -len(".prom")] if name.endswith(".prom") else name
            chunk = []
        else:
            chunk.append(line)
    return out


def find_alert_log(source: str) -> dict | None:
    """``alerts.json`` next to (or one level above) a telemetry directory."""
    if source.startswith(("http://", "https://")):
        return None
    base = source if os.path.isdir(source) else os.path.dirname(source)
    for candidate in (
        os.path.join(base, "alerts.json"),
        os.path.join(os.path.dirname(base.rstrip("/")), "alerts.json"),
    ):
        if os.path.isfile(candidate):
            try:
                with open(candidate) as f:
                    return json.load(f)
            except (OSError, ValueError):
                return None
    return None


# -- panel extraction -------------------------------------------------------


def _series_of(snapshot: dict, section: str, family: str) -> list[tuple[dict, object]]:
    """(labels, value) for every series of ``family`` in one snapshot section."""
    out = []
    for key, value in snapshot.get(section, {}).items():
        name, labels = parse_key(key)
        if name == family:
            out.append((labels, value))
    return out


def _group_label(labels: dict) -> str:
    workload = labels.get("workload", "?")
    policy = labels.get("policy", "?")
    return f"{workload}/{policy}"


def service_rows(streams: dict[str, dict]) -> list[dict]:
    """Per-(workload, policy) service aggregates across every stream."""
    groups: dict[str, dict] = {}
    for stream in sorted(streams):
        snapshot = streams[stream]["snapshot"]
        for labels, export in _series_of(snapshot, "histograms", _LATENCY):
            group = groups.setdefault(
                _group_label(labels),
                {"latency": [], "requests": 0, "violations": 0, "cells": 0},
            )
            group["latency"].append(export)
            group["cells"] += 1
        for labels, value in _series_of(snapshot, "counters", _REQUESTS):
            groups.setdefault(
                _group_label(labels),
                {"latency": [], "requests": 0, "violations": 0, "cells": 0},
            )["requests"] += value
        for labels, value in _series_of(snapshot, "counters", _VIOLATIONS):
            groups.setdefault(
                _group_label(labels),
                {"latency": [], "requests": 0, "violations": 0, "cells": 0},
            )["violations"] += value
    rows = []
    for name in sorted(groups):
        group = groups[name]
        merged = merge_histogram_exports(group["latency"])
        rows.append(
            {
                "group": name,
                "cells": group["cells"],
                "requests": group["requests"],
                "violations": group["violations"],
                "violation_pct": (
                    100.0 * group["violations"] / group["requests"]
                    if group["requests"]
                    else 0.0
                ),
                "p50_ns": percentile_from_buckets(merged, 50.0),
                "p99_ns": percentile_from_buckets(merged, 99.0),
            }
        )
    return rows


def node_rows(streams: dict[str, dict]) -> list[dict]:
    """Per-NUMA-node inventory summed/averaged across streams."""
    fmfi: dict[str, list[float]] = {}
    free: dict[str, float] = {}
    for stream in sorted(streams):
        snapshot = streams[stream]["snapshot"]
        for labels, value in _series_of(snapshot, "gauges", _NODE_FMFI):
            fmfi.setdefault(labels.get("node", "?"), []).append(float(value))
        for labels, value in _series_of(snapshot, "gauges", _NODE_FREE):
            node = labels.get("node", "?")
            free[node] = free.get(node, 0.0) + float(value)
    return [
        {
            "node": node,
            "mean_fmfi": sum(fmfi[node]) / len(fmfi[node]) if fmfi.get(node) else 0.0,
            "free_frames": int(free.get(node, 0)),
        }
        for node in sorted(set(fmfi) | set(free), key=lambda n: (len(n), n))
    ]


def _bar(fraction: float, width: int = 20) -> str:
    filled = max(0, min(width, round(fraction * width)))
    return "#" * filled + "." * (width - filled)


def render_dashboard(
    streams: dict[str, dict], alert_log: dict | None = None
) -> list[str]:
    """Pure text rendering of the fleet's newest frames."""
    lines: list[str] = []
    if not streams:
        return ["telemetry: no complete scrape frames yet"]
    newest_ms = max(s["sim_ms"] for s in streams.values())
    total_frames = sum(s["seq"] for s in streams.values())
    lines.append(
        f"fleet telemetry — {len(streams)} stream(s), {total_frames} frames, "
        f"sim t={newest_ms:g}ms"
    )
    rows = service_rows(streams)
    if rows:
        lines.append("")
        lines.append(
            f"{'workload/policy':<24} {'cells':>5} {'requests':>9} "
            f"{'p50':>9} {'p99':>9} {'SLO burn':>22}"
        )
        for row in rows:
            burn = min(1.0, row["violation_pct"] / 100.0)
            lines.append(
                f"{row['group']:<24} {row['cells']:>5} {row['requests']:>9g} "
                f"{row['p50_ns'] / 1e6:>7.2f}ms {row['p99_ns'] / 1e6:>7.2f}ms "
                f"[{_bar(burn, 12)}] {row['violation_pct']:5.1f}%"
            )
    depth_total = 0.0
    for stream in sorted(streams):
        for _labels, value in _series_of(
            streams[stream]["snapshot"], "gauges", _QUEUE_DEPTH
        ):
            depth_total += float(value)
    if depth_total or rows:
        lines.append(f"{'queued requests (fleet)':<24} {depth_total:>5g}")
    nodes = node_rows(streams)
    if nodes:
        lines.append("")
        lines.append(f"{'node':<6} {'mean FMFI':>10} {'free frames':>12}")
        for row in nodes:
            lines.append(
                f"{row['node']:<6} {row['mean_fmfi']:>10.3f} "
                f"{row['free_frames']:>12} [{_bar(row['mean_fmfi'], 16)}]"
            )
    lines.extend(_alert_lines(streams, alert_log))
    return lines


def _alert_lines(
    streams: dict[str, dict], alert_log: dict | None
) -> list[str]:
    lines: list[str] = []
    active_metric = 0.0
    for stream in sorted(streams):
        for _labels, value in _series_of(
            streams[stream]["snapshot"], "gauges", _ALERTS_ACTIVE
        ):
            active_metric += float(value)
    if alert_log is not None:
        transitions = alert_log.get("transitions", [])
        firing = [
            (cell, inst["rule"], inst["series"])
            for cell in sorted(alert_log.get("cells", {}))
            for inst in alert_log["cells"][cell].get("active", [])
        ]
        lines.append("")
        lines.append(
            f"alerts: {len(firing)} firing, "
            f"{len(transitions)} transition(s) logged"
        )
        for cell, rule, series in firing[:10]:
            suffix = f" {series}" if series else ""
            lines.append(f"  FIRING {rule}{suffix}  [{cell}]")
        for t in transitions[-5:]:
            lines.append(
                f"  {t['state']:<9} {t['rule']:<24} t={t['sim_ms']:g}ms "
                f"value={t['value']:.3g}"
            )
    elif active_metric:
        lines.append("")
        lines.append(f"alerts: {active_metric:g} firing (per-stream gauge)")
    return lines


def watch(
    source: str,
    refresh_s: float = 1.0,
    once: bool = False,
    out: Callable[[str], None] = print,
    iterations: int | None = None,
) -> int:
    """Tail ``source`` and re-render until interrupted (or ``once``).

    The refresh pacing below is host wall time by design: tailing a live
    run has no simulated clock to follow, and nothing read here flows
    back into any deterministic artifact.
    """
    import time

    shown = 0
    while True:
        streams = collect_streams(source)
        body = render_dashboard(streams, find_alert_log(source))
        if not once:
            out("\x1b[2J\x1b[H" + "\n".join(body))
        else:
            for line in body:
                out(line)
        shown += 1
        if once or (iterations is not None and shown >= iterations):
            return 0
        time.sleep(max(0.1, refresh_s))  # trd: ignore[TRD007] live-tail pacing is wall-clock by design; never exported
