"""Declarative SLO alerting over the scrape stream: burn rates, ceilings.

Rules live in a JSON (or TOML) file and are evaluated once per scrape
frame against the :class:`repro.obs.telemetry.windows.FrameAggregator`
view of the stream.  Two rule kinds cover the fleet's SLO surface:

``burn_rate``
    The multi-window burn-rate idiom (SRE workbook): the error ratio
    ``numerator / denominator`` over a *fast* and a *slow* trailing
    window, each normalized by the objective (the error budget).  The
    rule breaches only when **both** windows burn faster than
    ``burn_threshold`` — the fast window gives detection latency, the
    slow window keeps one bad frame from paging.

``threshold``
    Plain comparison of a gauge, counter-rate, or histogram quantile
    against a bound (per-node FMFI ceilings, p99 latency targets,
    queue-depth saturation).  Naming a bare family (``numa_node_fmfi``)
    matches every labeled series of that family, firing per series.

Hysteresis is frame-counted, not time-counted: a rule must breach
``for_frames`` consecutive evaluations to fire and clear ``keep_frames``
consecutive evaluations to resolve, so alert state cannot flap across a
single frame boundary.  Everything — evaluation order, transition
timestamps, the exported ``alerts.json`` — is a pure function of the
frame stream on the simulated clock: byte-identical at any ``--jobs``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.obs.metrics import parse_key
from repro.obs.telemetry.windows import FrameAggregator

#: rule-kind names accepted in a rule file
RULE_KINDS = ("burn_rate", "threshold")

_OPS = {
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
}


@dataclass(frozen=True)
class AlertRule:
    """One parsed rule (see :func:`load_alert_rules` for the file schema)."""

    name: str
    kind: str
    #: threshold rules: flat series key or bare family name
    metric: str = ""
    #: threshold rules: histogram quantile to read (None = gauge/counter)
    quantile: float | None = None
    #: threshold rules: trailing window (None = instantaneous value);
    #: with ``rate=True`` the value is the windowed rate per second
    window_ms: float | None = None
    rate: bool = False
    op: str = ">"
    value: float = 0.0
    #: burn-rate rules
    numerator: str = ""
    denominator: str = ""
    objective: float = 0.001
    fast_window_ms: float = 2.0
    slow_window_ms: float = 10.0
    burn_threshold: float = 4.0
    #: hysteresis (consecutive frames to fire / to resolve)
    for_frames: int = 2
    keep_frames: int = 2

    def horizon_ns(self) -> float:
        """The largest trailing window this rule ever reads."""
        if self.kind == "burn_rate":
            return max(self.fast_window_ms, self.slow_window_ms) * 1e6
        return (self.window_ms or 0.0) * 1e6


def _parse_rule(raw: dict, index: int) -> AlertRule:
    if not isinstance(raw, dict):
        raise ValueError(f"rule #{index} is not an object: {raw!r}")
    name = raw.get("name")
    if not name or not isinstance(name, str):
        raise ValueError(f"rule #{index} has no name")
    kind = raw.get("kind")
    if kind not in RULE_KINDS:
        raise ValueError(
            f"rule {name!r}: kind must be one of {', '.join(RULE_KINDS)}, "
            f"got {kind!r}"
        )
    known = {f.name for f in AlertRule.__dataclass_fields__.values()}  # type: ignore[attr-defined]
    unknown = set(raw) - known
    if unknown:
        raise ValueError(
            f"rule {name!r}: unknown field(s) {', '.join(sorted(unknown))}"
        )
    if kind == "burn_rate":
        for required in ("numerator", "denominator"):
            if not raw.get(required):
                raise ValueError(f"rule {name!r}: burn_rate needs {required}")
    else:
        if not raw.get("metric"):
            raise ValueError(f"rule {name!r}: threshold needs metric")
        if raw.get("op", ">") not in _OPS:
            raise ValueError(
                f"rule {name!r}: op must be one of {', '.join(sorted(_OPS))}"
            )
    numeric = (
        "quantile", "window_ms", "value", "objective", "fast_window_ms",
        "slow_window_ms", "burn_threshold",
    )
    coerced = dict(raw)
    for key in numeric:
        if key in coerced and coerced[key] is not None:
            coerced[key] = float(coerced[key])
    for key in ("for_frames", "keep_frames"):
        if key in coerced:
            coerced[key] = int(coerced[key])
            if coerced[key] < 1:
                raise ValueError(f"rule {name!r}: {key} must be >= 1")
    rule = AlertRule(**coerced)
    if rule.kind == "burn_rate" and rule.objective <= 0:
        raise ValueError(f"rule {name!r}: objective must be positive")
    return rule


def parse_alert_rules(spec: dict) -> tuple[AlertRule, ...]:
    """Validate a ``{"rules": [...]}`` object into rule dataclasses."""
    if not isinstance(spec, dict) or not isinstance(spec.get("rules"), list):
        raise ValueError('alert rule file must be an object with a "rules" list')
    rules = tuple(
        _parse_rule(raw, i) for i, raw in enumerate(spec["rules"])
    )
    names = [r.name for r in rules]
    dupes = sorted({n for n in names if names.count(n) > 1})
    if dupes:
        raise ValueError(f"duplicate rule name(s): {', '.join(dupes)}")
    return rules


def load_alert_rules(path: str) -> tuple[AlertRule, ...]:
    """Load and validate a rule file (JSON, or TOML for ``.toml`` paths)."""
    if path.endswith(".toml"):
        import tomllib

        with open(path, "rb") as bf:
            spec = tomllib.load(bf)
    else:
        with open(path) as f:
            spec = json.load(f)
    return parse_alert_rules(spec)


@dataclass
class _InstanceState:
    """Hysteresis counters for one (rule, series) alert instance."""

    firing: bool = False
    breach_streak: int = 0
    clear_streak: int = 0
    transitions: int = 0


class AlertEngine:
    """Evaluate rules per frame; record firing/resolved transitions.

    Transitions go three places, all deterministically ordered: the
    ``transitions`` list (exported into ``alerts.json``), the tracer's
    ``telemetry`` subsystem (``alert_firing`` / ``alert_resolved``
    events), and the ``alert_transitions_total`` / ``alerts_active``
    metrics — so the scrape stream itself shows alert state changing.
    """

    def __init__(self, rules, tracer=None, metrics=None) -> None:
        self.rules = tuple(rules)
        self.tracer = tracer
        self.metrics = metrics
        horizon = max(
            [r.horizon_ns() for r in self.rules] + [1e6]
        )
        self.aggregator = FrameAggregator(horizon_ns=horizon * 2 + 1e6)
        self._states: dict[tuple[str, str], _InstanceState] = {}
        self.transitions: list[dict] = []
        self.frames = 0
        self._g_active = None
        if metrics is not None:
            self._g_active = metrics.gauge("alerts_active")

    # -- evaluation ---------------------------------------------------------
    def evaluate(self, ts_ns: float, snapshot: dict) -> list[dict]:
        """Fold one frame in; returns the transitions it caused."""
        self.frames += 1
        self.aggregator.observe_frame(ts_ns, snapshot)
        caused: list[dict] = []
        for rule in self.rules:  # rule-file order: deterministic
            for series, value in self._rule_values(rule, snapshot):
                transition = self._step_instance(rule, series, value, ts_ns)
                if transition is not None:
                    caused.append(transition)
        if self._g_active is not None:
            self._g_active.set(
                sum(1 for s in self._states.values() if s.firing)
            )
        return caused

    def _rule_values(self, rule: AlertRule, snapshot: dict):
        """Yield (series label, evaluated value) pairs for one rule."""
        if rule.kind == "burn_rate":
            yield "", self._burn_value(rule)
            return
        for key in self._matching_keys(rule.metric, snapshot):
            yield (
                key if key != rule.metric else "",
                self._threshold_value(rule, key),
            )

    def _matching_keys(self, metric: str, snapshot: dict) -> list[str]:
        """Exact series key, else every series of the bare family."""
        sections = ("counters", "gauges", "histograms")
        if any(metric in snapshot.get(s, {}) for s in sections):
            return [metric]
        matches = []
        for section in sections:
            for key in snapshot.get(section, {}):
                if parse_key(key)[0] == metric:
                    matches.append(key)
        return sorted(matches)

    def _burn_value(self, rule: AlertRule) -> float:
        """min(fast, slow) burn rate — breaches only when both do."""
        burns = []
        for window_ms in (rule.fast_window_ms, rule.slow_window_ms):
            window_ns = window_ms * 1e6
            bad = self._family_delta(rule.numerator, window_ns)
            total = self._family_delta(rule.denominator, window_ns)
            if total <= 0:
                burns.append(0.0)
                continue
            burns.append((bad / total) / rule.objective)
        return min(burns)

    def _family_delta(self, metric: str, window_ns: float) -> float:
        """Windowed delta of an exact series key, else the bare family sum.

        Burn-rate rules typically name a bare family
        (``service_slo_violations_total``); the stream's series carry
        workload/policy labels, so the family's deltas are summed.
        """
        agg = self.aggregator
        if metric in agg.counters or metric in agg.gauges:
            return agg.delta(metric, window_ns)
        total = 0.0
        for key in sorted(agg.counters):
            if parse_key(key)[0] == metric:
                total += agg.delta(key, window_ns)
        return total

    def _threshold_value(self, rule: AlertRule, key: str) -> float:
        agg = self.aggregator
        window_ns = rule.window_ms * 1e6 if rule.window_ms else None
        if rule.quantile is not None:
            return agg.quantile(key, rule.quantile, window_ns)
        if rule.rate:
            return agg.rate_per_s(key, window_ns or agg.horizon_ns)
        if window_ns is not None:
            return agg.delta(key, window_ns)
        value = agg.value(key)
        return 0.0 if value is None else float(value)

    def _step_instance(
        self, rule: AlertRule, series: str, value: float, ts_ns: float
    ) -> dict | None:
        """Advance one instance's hysteresis; returns a transition or None."""
        if rule.kind == "burn_rate":
            breached = value >= rule.burn_threshold
            bound = rule.burn_threshold
        else:
            breached = _OPS[rule.op](value, rule.value)
            bound = rule.value
        state = self._states.get((rule.name, series))
        if state is None:
            state = self._states[(rule.name, series)] = _InstanceState()
        if breached:
            state.breach_streak += 1
            state.clear_streak = 0
        else:
            state.clear_streak += 1
            state.breach_streak = 0
        transition: dict | None = None
        if not state.firing and state.breach_streak >= rule.for_frames:
            state.firing = True
            transition = self._record(
                rule, series, "firing", value, bound, ts_ns
            )
        elif state.firing and state.clear_streak >= rule.keep_frames:
            state.firing = False
            transition = self._record(
                rule, series, "resolved", value, bound, ts_ns
            )
        return transition

    def _record(
        self,
        rule: AlertRule,
        series: str,
        state: str,
        value: float,
        bound: float,
        ts_ns: float,
    ) -> dict:
        transition = {
            "rule": rule.name,
            "series": series,
            "state": state,
            "sim_ms": round(ts_ns / 1e6, 6),
            "frame": self.frames,
            "value": value,
            "threshold": bound,
        }
        self.transitions.append(transition)
        self._states[(rule.name, series)].transitions += 1
        if self.metrics is not None:
            self.metrics.counter(
                "alert_transitions_total", rule=rule.name
            ).inc()
        tr = self.tracer
        if tr is not None and tr.active:
            tr.emit(
                "telemetry",
                f"alert_{state}",
                rule=rule.name,
                series=series,
                value=value,
                threshold=bound,
            )
        return transition

    # -- export -------------------------------------------------------------
    def active(self) -> list[dict]:
        """Currently-firing instances, in deterministic (rule, series) order."""
        return [
            {"rule": rule_name, "series": series}
            for (rule_name, series) in sorted(self._states)
            if self._states[(rule_name, series)].firing
        ]

    def export(self) -> dict:
        """The ``alerts.json``-shaped record for this stream."""
        return {
            "rules": [
                {"name": r.name, "kind": r.kind} for r in self.rules
            ],
            "frames": self.frames,
            "transitions": list(self.transitions),
            "active": self.active(),
        }


@dataclass
class AlertLog:
    """Fleet-level merge of per-cell alert exports (canonical order)."""

    cells: dict = field(default_factory=dict)

    def add(self, cell: str, export: dict) -> None:
        self.cells[cell] = export

    def export(self) -> dict:
        cells = {name: self.cells[name] for name in sorted(self.cells)}
        transitions = [
            {**t, "cell": name}
            for name in sorted(cells)
            for t in cells[name]["transitions"]
        ]
        transitions.sort(key=lambda t: (t["sim_ms"], t["cell"], t["rule"]))
        return {
            "kind": "alert_log",
            "cells": cells,
            "transitions": transitions,
            "firing": sum(
                1 for t in transitions if t["state"] == "firing"
            ),
            "resolved": sum(
                1 for t in transitions if t["state"] == "resolved"
            ),
        }
