"""Live telemetry: exposition, windowed aggregation, SLO alerts, watch.

The streaming counterpart of the post-hoc artifacts (``metrics.json``,
Chrome traces, HTML reports): registry snapshots rendered as
Prometheus/OpenMetrics text frames on a simulated-time cadence, windowed
burn-rate alerting over the frame stream, an optional live HTTP scrape
endpoint, and the ``repro watch`` terminal dashboard.  See
``docs/observability.md`` (Telemetry) for the formats and the
determinism contract.
"""

from __future__ import annotations

from repro.obs.telemetry.alerts import (
    AlertEngine,
    AlertLog,
    AlertRule,
    load_alert_rules,
    parse_alert_rules,
)
from repro.obs.telemetry.exposition import (
    FRAME_TERMINATOR,
    ScrapeFileSink,
    TelemetryScraper,
    format_value,
    iter_frames,
    parse_exposition,
    read_last_frame,
    render_exposition,
    render_frame,
    validate_exposition,
)
from repro.obs.telemetry.windows import (
    FrameAggregator,
    HistogramWindow,
    WindowSeries,
    histogram_export_delta,
    merge_histogram_exports,
)

__all__ = [
    "AlertEngine",
    "AlertLog",
    "AlertRule",
    "FrameAggregator",
    "FRAME_TERMINATOR",
    "HistogramWindow",
    "ScrapeFileSink",
    "TelemetryScraper",
    "WindowSeries",
    "format_value",
    "histogram_export_delta",
    "iter_frames",
    "load_alert_rules",
    "merge_histogram_exports",
    "parse_alert_rules",
    "parse_exposition",
    "read_last_frame",
    "render_exposition",
    "render_frame",
    "validate_exposition",
]
