"""Prometheus/OpenMetrics text exposition over the metrics registry.

Every signal the simulator produces already lives in one
:class:`repro.obs.metrics.MetricsRegistry` snapshot; this module renders
such a snapshot in the Prometheus text exposition format (the dialect
``promtool check metrics`` validates): one ``# HELP`` / ``# TYPE`` header
per metric family, one sample line per series, histograms expanded into
cumulative ``_bucket{le=...}`` series plus ``_sum`` and ``_count``, label
values quoted and backslash-escaped.

Three consumers share the renderer:

* :class:`TelemetryScraper` — a :class:`repro.obs.clock.SimClock`
  listener that appends one *frame* per simulated-time interval to a
  :class:`ScrapeFileSink`.  Frames are a pure function of the metric
  stream, so a seeded run emits byte-identical frames at any ``--jobs``
  count (the file-sink mode CI byte-compares).
* the live HTTP endpoint (:mod:`repro.obs.telemetry.endpoint`) — serves
  the newest frame to real scrapers while a fleet runs.
* ``repro metrics FILE --format prom`` — renders an existing
  ``metrics.json`` snapshot after the fact.

:func:`parse_exposition` is the strict inverse used by the round-trip
tests and the ``repro watch`` dashboard tail; :func:`validate_exposition`
is the promtool-style format gate every frame must pass.

No wall-clock reads anywhere in this module: frame timestamps come from
the simulated clock (TRD007-clean by construction).
"""

from __future__ import annotations

import os
from typing import Callable, Iterable

from repro.obs.metrics import escape_label_value, parse_key, render_key

#: marks the end of one complete scrape frame in a stream file (the
#: OpenMetrics terminator, reused as the frame delimiter)
FRAME_TERMINATOR = "# EOF"


def format_value(value: int | float) -> str:
    """Deterministic sample-value text: integral floats render as ints.

    ``repr`` for the rest gives the shortest round-trippable float, so
    rendering is a pure function of the value — no locale, no precision
    environment knobs.
    """
    if isinstance(value, bool):  # pragma: no cover - registry never stores
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    if value != value:  # NaN
        return "NaN"
    if value in (float("inf"), float("-inf")):
        return "+Inf" if value > 0 else "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _render_labels(labels: dict, extra: tuple = ()) -> str:
    """``{k="v",...}`` with sorted keys, or empty for a bare series."""
    items = sorted(labels.items()) + list(extra)
    if not items:
        return ""
    inner = ",".join(
        f'{k}="{escape_label_value(str(v))}"' for k, v in items
    )
    return "{" + inner + "}"


def _help_index(catalog: Iterable[tuple] | None) -> dict:
    """name -> help text from a METRIC_CATALOG-shaped iterable."""
    if catalog is None:
        from repro.obs import METRIC_CATALOG

        catalog = METRIC_CATALOG
    return {entry[0]: entry[3] for entry in catalog}


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_exposition(
    snapshot: dict, catalog: Iterable[tuple] | None = None
) -> str:
    """Render one registry snapshot as Prometheus exposition text.

    ``snapshot`` is the dict :meth:`MetricsRegistry.snapshot` produces
    (also the top level of any exported ``metrics.json``).  Families are
    emitted in sorted name order, series in sorted key order, so the text
    is a pure function of the snapshot.
    """
    help_text = _help_index(catalog)
    lines: list[str] = []
    families: dict[str, list[tuple[str, dict, object]]] = {}
    kinds: dict[str, str] = {}
    for kind in ("counters", "gauges", "histograms"):
        for key in sorted(snapshot.get(kind, {})):
            name, labels = parse_key(key)
            if name in kinds and kinds[name] != kind:
                raise ValueError(
                    f"metric family {name!r} appears as both {kinds[name]} "
                    f"and {kind}"
                )
            kinds[name] = kind
            families.setdefault(name, []).append(
                (key, labels, snapshot[kind][key])
            )
    for name in sorted(families):
        kind = {
            "counters": "counter",
            "gauges": "gauge",
            "histograms": "histogram",
        }[kinds[name]]
        if name in help_text:
            lines.append(f"# HELP {name} {_escape_help(help_text[name])}")
        lines.append(f"# TYPE {name} {kind}")
        for _, labels, value in families[name]:
            if kind == "histogram":
                lines.extend(_render_histogram(name, labels, value))
            else:
                lines.append(
                    f"{name}{_render_labels(labels)} "
                    f"{format_value(value)}"  # type: ignore[arg-type]
                )
    return "\n".join(lines) + "\n" if lines else ""


def _render_histogram(name: str, labels: dict, export: dict) -> list[str]:
    """Cumulative ``_bucket``/``_sum``/``_count`` lines for one series.

    The registry's export carries per-bucket (non-cumulative) counts and
    a *running* ``sum`` maintained at observe time, so nothing here is
    re-derived from bucket midpoints.
    """
    from math import inf

    bounds = sorted(
        export["buckets"].items(),
        key=lambda kv: inf if kv[0] == "+Inf" else float(kv[0]),
    )
    lines = []
    cumulative = 0
    for bound, count in bounds:
        cumulative += count
        le = bound if bound == "+Inf" else format_value(float(bound))
        lines.append(
            f"{name}_bucket{_render_labels(labels, (('le', le),))} "
            f"{cumulative}"
        )
    lines.append(
        f"{name}_sum{_render_labels(labels)} {format_value(export['sum'])}"
    )
    lines.append(
        f"{name}_count{_render_labels(labels)} {format_value(export['count'])}"
    )
    return lines


# -- parsing (the strict inverse) -------------------------------------------


def _parse_sample_line(line: str) -> tuple[str, dict, float]:
    """One ``name{labels} value`` line -> (name, labels, value)."""
    if line.startswith("{"):
        raise ValueError(f"sample line has no metric name: {line!r}")
    if "{" in line:
        brace = line.index("{")
        close = line.rindex("}")
        name = line[:brace]
        body = line[brace : close + 1]
        rest = line[close + 1 :].strip()
        parsed_name, labels = parse_key(name + body)
    else:
        parts = line.split(None, 1)
        if len(parts) != 2:
            raise ValueError(f"sample line has no value: {line!r}")
        parsed_name, labels = parts[0], {}
        rest = parts[1].strip()
    if not rest:
        raise ValueError(f"sample line has no value: {line!r}")
    value_text = rest.split()[0]  # a trailing timestamp is tolerated
    if value_text == "+Inf":
        value = float("inf")
    elif value_text == "-Inf":
        value = float("-inf")
    else:
        value = float(value_text)
    return parsed_name, labels, value


def parse_exposition(text: str) -> dict:
    """Parse exposition text back into a snapshot-shaped dict.

    Returns ``{"counters": {...}, "gauges": {...}, "histograms": {...}}``
    keyed exactly like :meth:`MetricsRegistry.snapshot` (histogram bucket
    counts de-cumulated).  Unknown-type families (no ``# TYPE``) raise —
    the telemetry pipeline never emits untyped samples.
    """
    types: dict[str, str] = {}
    out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
    histo_parts: dict[str, dict] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            fields = line.split(None, 3)
            if len(fields) >= 4 and fields[1] == "TYPE":
                types[fields[2]] = fields[3].strip()
            continue
        name, labels, value = _parse_sample_line(line)
        family, role = _histogram_family(name, types)
        if family is not None:
            series = render_key(family, {k: v for k, v in labels.items() if k != "le"})
            part = histo_parts.setdefault(
                series, {"buckets": [], "sum": 0.0, "count": 0}
            )
            if role == "bucket":
                part["buckets"].append((labels.get("le", ""), value))
            elif role == "sum":
                part["sum"] = value
            else:
                part["count"] = int(value)
            continue
        if name not in types:
            raise ValueError(f"sample for undeclared family: {name!r}")
        kind = types[name]
        key = render_key(name, labels)
        if kind == "counter":
            out["counters"][key] = _int_if_integral(value)
        elif kind == "gauge":
            out["gauges"][key] = _int_if_integral(value)
        else:
            raise ValueError(f"unsupported family type {kind!r} for {name!r}")
    for series, part in histo_parts.items():
        out["histograms"][series] = _decumulate(series, part)
    return out


def _int_if_integral(value: float) -> int | float:
    return int(value) if float(value).is_integer() else value


def _histogram_family(
    name: str, types: dict
) -> tuple[str | None, str | None]:
    """(family, role) when ``name`` is a histogram component, else (None, None)."""
    for suffix, role in (("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")):
        if name.endswith(suffix):
            family = name[: -len(suffix)]
            if types.get(family) == "histogram":
                return family, role
    return None, None


def _decumulate(series: str, part: dict) -> dict:
    """Cumulative bucket samples -> the registry's per-bucket export dict."""
    from math import inf

    buckets = sorted(
        part["buckets"], key=lambda kv: inf if kv[0] == "+Inf" else float(kv[0])
    )
    if not buckets or buckets[-1][0] != "+Inf":
        raise ValueError(f"histogram {series!r} has no +Inf bucket")
    export: dict = {"count": part["count"], "sum": part["sum"], "buckets": {}}
    previous = 0.0
    for bound, cumulative in buckets:
        if cumulative < previous:
            raise ValueError(
                f"histogram {series!r} buckets are not cumulative at le={bound}"
            )
        key = bound if bound == "+Inf" else _format_bound(bound)
        export["buckets"][key] = int(cumulative - previous)
        previous = cumulative
    if int(buckets[-1][1]) != part["count"]:
        raise ValueError(
            f"histogram {series!r}: +Inf bucket {int(buckets[-1][1])} != "
            f"count {part['count']}"
        )
    return export


def _format_bound(bound: str) -> str:
    """Normalize a ``le`` bound to the registry's ``str(bound)`` spelling."""
    value = float(bound)
    if value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return str(value)


def validate_exposition(text: str) -> None:
    """Promtool-style format gate; raises ``ValueError`` on any violation.

    Checks: every sample belongs to a family declared by a preceding
    ``# TYPE`` line; no family declared twice; no duplicate series; label
    syntax parses; histogram buckets are cumulative, end at ``+Inf`` and
    agree with ``_count``.  The telemetry tests run every frame through
    this before byte-comparing anything.
    """
    declared: set[str] = set()
    types: dict[str, str] = {}
    seen_series: set[str] = set()
    for raw in text.splitlines():
        line = raw.rstrip()
        if not line.strip():
            continue
        stripped = line.strip()
        if stripped.startswith("#"):
            fields = stripped.split(None, 3)
            if len(fields) >= 2 and fields[1] == "TYPE":
                if len(fields) < 4:
                    raise ValueError(f"malformed TYPE line: {line!r}")
                family, kind = fields[2], fields[3].strip()
                if kind not in ("counter", "gauge", "histogram"):
                    raise ValueError(f"unknown family type {kind!r}: {line!r}")
                if family in declared:
                    raise ValueError(f"family {family!r} declared twice")
                declared.add(family)
                types[family] = kind
            continue
        name, labels, _ = _parse_sample_line(stripped)
        family, _role = _histogram_family(name, types)
        if family is None and name not in types:
            raise ValueError(f"sample for undeclared family: {stripped!r}")
        series = render_key(name, labels)
        if series in seen_series:
            raise ValueError(f"duplicate series: {series!r}")
        seen_series.add(series)
    # Semantic histogram checks (cumulativity, +Inf, count agreement)
    # ride on the parser, which raises with the offending series named.
    parse_exposition(text)


# -- frames, sinks, and the SimClock-cadence scraper ------------------------


def render_frame(
    snapshot: dict,
    seq: int,
    ts_ms: float,
    catalog: Iterable[tuple] | None = None,
) -> str:
    """One self-delimiting scrape frame: header, exposition body, ``# EOF``.

    The header comment carries the frame sequence number and the
    *simulated* timestamp — the only timestamps the deterministic
    pipeline ever exposes.
    """
    body = render_exposition(snapshot, catalog)
    return (
        f"# scrape seq={seq} sim_ms={format_value(round(ts_ms, 6))}\n"
        + body
        + FRAME_TERMINATOR
        + "\n"
    )


def iter_frames(text: str):
    """Yield ``(seq, ts_ms, frame_text)`` for each complete frame in a stream."""
    chunk: list[str] = []
    for line in text.splitlines():
        chunk.append(line)
        if line.strip() == FRAME_TERMINATOR:
            frame = "\n".join(chunk) + "\n"
            seq, ts_ms = _frame_header(chunk[0])
            yield seq, ts_ms, frame
            chunk = []


def _frame_header(line: str) -> tuple[int, float]:
    fields = dict(
        part.split("=", 1)
        for part in line.strip().split()
        if "=" in part
    )
    return int(fields.get("seq", 0)), float(fields.get("sim_ms", 0.0))


def read_last_frame(path: str) -> tuple[int, float, str] | None:
    """The newest complete frame of a stream file, or None when empty."""
    try:
        with open(path) as f:
            text = f.read()
    except OSError:
        return None
    last = None
    for parsed in iter_frames(text):
        last = parsed
    return last


class ScrapeFileSink:
    """Append-only scrape stream: one ``.prom`` file, frames in sequence.

    The file is truncated at construction (a sink owns its stream), so a
    repeat run reproduces the file byte-for-byte.
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self.frames = 0
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._file = open(path, "w")

    def emit(self, frame_text: str) -> None:
        self._file.write(frame_text)
        self.frames += 1

    def close(self) -> None:
        if self._file is not None:
            self._file.flush()
            self._file.close()
            self._file = None  # type: ignore[assignment]


class TelemetryScraper:
    """Scrape the registry on a fixed simulated-time cadence.

    A :class:`SimClock` listener (the same attachment discipline as
    :class:`repro.obs.timeline.TimelineSampler`): every ``interval_ms``
    of simulated time, snapshot the registry, render one frame into the
    sink, and hand the snapshot to the alert engine when one is wired.
    Everything is driven by the simulated clock — a seeded run scrapes
    at identical instants regardless of host scheduling, which is what
    makes frame streams byte-comparable across ``--jobs``.
    """

    def __init__(
        self,
        clock,
        registry,
        sink,
        interval_ms: float = 1.0,
        catalog: Iterable[tuple] | None = None,
        alert_engine=None,
        on_frame: Callable[[int, float, str], None] | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be positive, got {interval_ms}")
        self.clock = clock
        self.registry = registry
        self.sink = sink
        self.interval_ns = interval_ms * 1e6
        self.catalog = catalog
        self.alert_engine = alert_engine
        self.on_frame = on_frame
        self.frames = 0
        self._next_due_ns = 0.0
        self._closed = False
        self._c_frames = registry.counter("telemetry_frames_total")
        clock.add_listener(self._on_advance)

    def _on_advance(self, now_ns: float) -> None:
        if now_ns < self._next_due_ns:
            return
        self.scrape(now_ns)
        self._next_due_ns = now_ns + self.interval_ns

    def scrape(self, now_ns: float | None = None) -> str:
        """Take one frame at the current instant; returns the frame text."""
        ts_ns = self.clock.now_ns if now_ns is None else now_ns
        self.frames += 1
        self._c_frames.inc()
        snapshot = self.registry.snapshot()
        if self.alert_engine is not None:
            self.alert_engine.evaluate(ts_ns, snapshot)
            # Alert-state metrics must appear in the frame they changed in.
            snapshot = self.registry.snapshot()
        frame = render_frame(snapshot, self.frames, ts_ns / 1e6, self.catalog)
        self.sink.emit(frame)
        if self.on_frame is not None:
            self.on_frame(self.frames, ts_ns / 1e6, frame)
        return frame

    def close(self) -> None:
        """Final frame at end-of-run state, then detach and close the sink."""
        if self._closed:
            return
        self._closed = True
        self.scrape()
        self.clock.remove_listener(self._on_advance)
        self.sink.close()
