"""Live scrape endpoint: stdlib ``http.server`` over the newest frames.

This module is the **one sanctioned wall-clock consumer** of the
telemetry pipeline: a real Prometheus (or ``curl``, or ``repro watch
--url``) scrapes it in real time while ``repro serve``/``repro loadgen``
runs, so it necessarily lives on host time — threads, sockets, request
scheduling.  Nothing here feeds back into any deterministic artifact:
the frames it serves were rendered on the SimClock cadence by
:class:`repro.obs.telemetry.exposition.TelemetryScraper`, and the server
only ever *reads* them.  Keep it that way — anything computed here must
never be written into a report, manifest, or frame.

The server answers:

* ``GET /metrics`` — the newest complete frame of every stream under the
  telemetry directory, concatenated (cells are disjoint registries, so
  family collisions cannot occur within one cell; across cells the
  streams are separated by their ``# stream`` header);
* ``GET /healthz`` — ``ok`` once at least one frame exists.
"""

from __future__ import annotations

import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable

from repro.obs.telemetry.exposition import read_last_frame


def latest_frames_supplier(telemetry_dir: str) -> Callable[[], str]:
    """A supplier serving the newest frame of every ``.prom`` stream.

    Streams are read fresh on every request (the fleet's worker
    processes append to them concurrently) and concatenated in sorted
    filename order.  The os.listdir order never escapes: it is sorted
    before use, and the endpoint's output is not a determinism surface
    anyway — it exists only for live eyes.
    """

    def supply() -> str:
        if not os.path.isdir(telemetry_dir):
            return ""
        chunks: list[str] = []
        for entry in sorted(os.listdir(telemetry_dir)):
            if not entry.endswith(".prom"):
                continue
            last = read_last_frame(os.path.join(telemetry_dir, entry))
            if last is None:
                continue
            seq, ts_ms, frame = last
            chunks.append(f"# stream {entry} seq={seq} sim_ms={ts_ms:g}\n")
            chunks.append(frame)
        return "".join(chunks)

    return supply


class TelemetryHTTPServer:
    """Background-thread scrape endpoint over a frame supplier."""

    def __init__(self, supplier: Callable[[], str], port: int = 0) -> None:
        self.supplier = supplier
        outer = self

        class Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (http.server API)
                if self.path.split("?", 1)[0] == "/metrics":
                    body = outer.supplier().encode()
                    self.send_response(200)
                    self.send_header(
                        "Content-Type",
                        "text/plain; version=0.0.4; charset=utf-8",
                    )
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                elif self.path == "/healthz":
                    body = b"ok\n" if outer.supplier() else b"empty\n"
                    self.send_response(200 if body == b"ok\n" else 503)
                    self.send_header("Content-Length", str(len(body)))
                    self.end_headers()
                    self.wfile.write(body)
                else:
                    self.send_response(404)
                    self.send_header("Content-Length", "0")
                    self.end_headers()

            def log_message(self, *args) -> None:
                """Silence per-request stderr logging (scrapes are frequent)."""

        self._server = ThreadingHTTPServer(("127.0.0.1", port), Handler)
        self.port = self._server.server_address[1]
        self._thread: threading.Thread | None = None

    def start(self) -> int:
        """Serve in a daemon thread; returns the bound port."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-telemetry-endpoint",
            daemon=True,
        )
        self._thread.start()
        return self.port

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "TelemetryHTTPServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
