"""Vectorized batch simulation of the set-associative TLB hierarchy.

The scalar hot path (:meth:`repro.tlb.hierarchy.TLBHierarchy.access`) walks
one address at a time through per-set ordered dicts.  This module replays a
whole *segment* of the access stream — a run of addresses over which the
page table is static and no daemons fire — using the classical
reuse-distance characterization of LRU:

    an access hits a ``W``-way set iff its LRU stack distance (the number
    of distinct keys referenced in its set since the previous reference to
    the same key) is ``< W``.

Stack distance is a property of the reference string alone — in these TLBs
*every* access leaves its key most-recently-used (hits refresh, misses
insert) — so hit/miss classification needs no sequential cache state:

1. **Initial state as pseudo-accesses.**  Each touched set's resident keys
   are prepended in LRU→MRU order; a key resident at depth ``d`` then
   behaves exactly as if referenced ``d`` steps in the past (the standard
   warm-start construction).
2. **Set grouping.**  A stable sort by set index makes each set's
   subsequence contiguous while preserving stream order within it.
3. **Run compression.**  An access whose key equals the set's previous
   access has stack distance 0 — a guaranteed hit.  One shifted compare
   classifies and removes these; removal never changes any other access's
   distance, because a window between two references to ``k`` contains no
   other ``k`` (so every removed duplicate's representative survives in
   the window).
4. **Near-window matches.**  On the compressed stream, an access whose
   key reappears within ``W`` positions back (same set) has at most
   ``W - 1`` distinct keys in between — a guaranteed hit.  ``W - 1``
   shifted compares classify these exactly.
5. **Exact fallback for the rest.**  The few accesses left unresolved
   (previous reference more than ``W`` compressed positions back) get an
   explicit distinct count over their window via ``np.unique``; no
   previous reference at all is a compulsory miss.  If the total window
   volume would be pathological, the whole call falls back to an exact
   dict replay instead.
6. **State write-back.**  The final per-set LRU contents are, by the same
   every-access-ends-MRU property, the last ``W`` distinct keys of the
   set's reference string ordered by last reference — rebuilt wholesale
   with two lexsorts, byte-identical to a scalar replay's dicts.

The L2 structures see only the subsequence of accesses that missed L1 —
including the modeled aliasing of the shared L2, where 4KB and 2MB VPNs mix
as raw integers exactly as in the scalar path.

Beyond the TLB arrays, :func:`hierarchy_touch_batch` folds walk costs into
``TranslationStats``, the walker, the walk histograms and the
:class:`SimClock`.  Float accumulation is not associative, so bulk sums
would drift from the scalar path; instead the per-event cost streams are
folded with ``np.cumsum`` seeded with the accumulator's current value,
which reproduces the scalar path's left-to-right adds bit-for-bit.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from repro.config import FREQ_GHZ
from repro.tlb.tlb import SetAssocTLB

#: per-call budget (scaled by stream length) of long-window elements the
#: vectorized first-occurrence counts may process; real streams stay far
#: below it — only adversarial overlap patterns exceed it, and those fall
#: back to an exact dict replay
_SCAN_BUDGET_PER_ELEMENT = 16


def lru_batch_lookup(tlb: SetAssocTLB, keys: np.ndarray) -> np.ndarray:
    """Replay ``keys`` (in access order) through ``tlb``; returns hit bools.

    Equivalent, counter-for-counter and state-for-state, to::

        hits = []
        for k in keys:
            hit = tlb.lookup(int(k))
            if not hit:
                tlb.insert(int(k))
            hits.append(hit)

    but classified by the vectorized stack-distance scheme described in
    the module docstring and finished with a wholesale state write-back.
    """
    n = len(keys)
    hits = np.zeros(n, dtype=bool)
    if n == 0:
        return hits
    nsets = tlb.sets
    ways = tlb.ways

    if nsets == 1:
        setids = np.zeros(n, dtype=np.int64)
        touched_sets = np.zeros(1, dtype=np.int64)
    else:
        setids = keys % nsets
        touched_sets = np.unique(setids)

    # Pseudo-accesses encoding the initial per-set LRU state.
    pseudo_keys: list[int] = []
    pseudo_sets: list[int] = []
    for s in touched_sets.tolist():  # trd: ignore[TRD008] bounded by touched sets (TLB geometry), not stream length
        for k in tlb._sets[s]:  # trd: ignore[TRD008] at most `ways` resident entries per set
            pseudo_keys.append(k)
            pseudo_sets.append(s)
    n_pseudo = len(pseudo_keys)

    if n_pseudo:
        key_all = np.concatenate(
            [np.asarray(pseudo_keys, dtype=np.int64), keys]
        )
        set_all = np.concatenate(
            [np.asarray(pseudo_sets, dtype=np.int64), setids]
        )
        orig_all = np.concatenate(
            [np.full(n_pseudo, -1, dtype=np.int64), np.arange(n, dtype=np.int64)]
        )
    else:
        key_all = keys
        set_all = setids
        orig_all = np.arange(n, dtype=np.int64)

    # Group per set, stream order within each set (pseudos sort first).
    if nsets == 1:
        skey, sset, sorig = key_all, set_all, orig_all
    else:
        order = np.argsort(set_all, kind="stable")
        skey = key_all[order]
        sset = set_all[order]
        sorig = orig_all[order]

    m = len(skey)
    # Step 3: distance-0 duplicates.
    dup = np.zeros(m, dtype=bool)
    if nsets == 1:
        dup[1:] = skey[1:] == skey[:-1]
    else:
        dup[1:] = (skey[1:] == skey[:-1]) & (sset[1:] == sset[:-1])
    dup_orig = sorig[dup]
    hits[dup_orig[dup_orig >= 0]] = True

    keep = ~dup
    ckey = skey[keep]
    cset = sset[keep]
    corig = sorig[keep]
    mc = len(ckey)

    # Step 4: previous reference within `ways` compressed positions.
    # (Offset 1 can never match — compression removed adjacent repeats.)
    chit = np.zeros(mc, dtype=bool)
    for d in range(2, ways + 1):
        if mc <= d:
            break
        if nsets == 1:
            chit[d:] |= ckey[d:] == ckey[:-d]
        else:
            chit[d:] |= (ckey[d:] == ckey[:-d]) & (cset[d:] == cset[:-d])
    near_orig = corig[chit]
    hits[near_orig[near_orig >= 0]] = True

    # Step 5: the unresolved tail needs exact distinct counts.
    open_idx = np.flatnonzero(~chit & (corig >= 0))
    if len(open_idx):
        if not _resolve_far(
            tlb, hits, ckey, cset, corig, open_idx, ways, nsets
        ):
            # Pathological window volume: exact dict replay (rare).
            return _replay_scalar(tlb, keys)

    hit_count = int(hits.sum())
    tlb.hits += hit_count
    tlb.misses += n - hit_count

    _write_back_state(tlb, ckey, cset, touched_sets, nsets)
    return hits


def _resolve_far(
    tlb, hits, ckey, cset, corig, open_idx, ways, nsets
) -> bool:
    """Classify accesses whose previous same-key reference is far behind.

    Returns False when the aggregate window volume is too large to count
    economically (caller falls back to a dict replay).
    """
    # Previous occurrence of each compressed element's (set, key): one
    # stable argsort of a fused (set, key) integer groups equal pairs in
    # stream order, so each group's adjacency gives the links.  (The fused
    # value only needs to be injective; fall back to a lexsort in the
    # astronomically-unlikely case it would overflow int64.)
    mc = len(ckey)
    if nsets == 1:
        g = np.argsort(ckey, kind="stable")
        gk = ckey[g]
        same = gk[1:] == gk[:-1]
    else:
        kspan = int(ckey.max()) + 1
        if kspan < (1 << 62) // nsets:
            fused = cset * kspan + ckey
            g = np.argsort(fused, kind="stable")
            gf = fused[g]
            same = gf[1:] == gf[:-1]
        else:  # pragma: no cover - VPNs never get this large
            g = np.lexsort((np.arange(mc), ckey, cset))
            same = (ckey[g][1:] == ckey[g][:-1]) & (cset[g][1:] == cset[g][:-1])
    prev = np.full(mc, -1, dtype=np.int64)
    prev[g[1:][same]] = g[:-1][same]

    op = prev[open_idx]
    have_prev = op >= 0
    # Compulsory misses (no previous reference, not resident): nothing to
    # mark — `hits` already defaults to False.
    q_idx = open_idx[have_prev]
    if len(q_idx) == 0:
        return True
    q_prev = op[have_prev]
    q_orig = corig[q_idx]

    # A position j holds its window's *first* occurrence of its key
    # exactly when its own previous reference sits at or before the window
    # start (prev[j] < lo); each distinct key in the window contributes
    # exactly one such position, so the stack distance of a query
    # (p -> i) is a straight count over prev[p+1:i].  (The window cannot
    # contain the query's own key — q_prev is the *latest* previous
    # reference — and never mixes sets: the array is set-sorted and both
    # endpoints are in the query's set block.)
    #
    # The count is monotone in the window prefix, so all queries advance
    # together in early-exit rounds: one gather per round covers the next
    # `chunk` elements of every still-unresolved window, a query drops out
    # as soon as it reaches `ways` first-occurrences (miss) or runs out of
    # window (hit), and the chunk doubles each round.  The aggregate
    # gathered volume is budgeted so adversarial overlap patterns cannot
    # go quadratic (beyond the budget: exact dict replay).
    budget = max(5_000_000, _SCAN_BUDGET_PER_ELEMENT * mc)
    lo = q_prev + 1
    hi = q_idx
    orig = q_orig
    counts = np.zeros(len(lo), dtype=np.int64)
    start = 0
    chunk = max(8, 2 * ways)
    while True:
        idx = lo[:, None] + np.arange(start, start + chunk)
        valid = idx < hi[:, None]
        np.clip(idx, 0, mc - 1, out=idx)
        counts += ((prev[idx] < lo[:, None]) & valid).sum(axis=1)
        budget -= len(lo) * chunk
        exhausted = lo + (start + chunk) >= hi
        missed = counts >= ways
        hits[orig[exhausted & ~missed]] = True
        keep = ~exhausted & ~missed
        if not keep.any():
            return True
        if budget < 0:
            return False
        lo = lo[keep]
        hi = hi[keep]
        orig = orig[keep]
        counts = counts[keep]
        start += chunk
        chunk = min(chunk * 2, 65536)


# trd: scalar-fallback[equivalence-gated slow path; chosen only when the chunk heuristic rejects the vectorized kernel]
def _replay_scalar(tlb: SetAssocTLB, keys: np.ndarray) -> np.ndarray:
    """Exact dict replay — the guaranteed-correct slow path."""
    hits = np.empty(len(keys), dtype=bool)
    ways = tlb.ways
    sets_list = tlb._sets
    nsets = tlb.sets
    h = mcount = 0
    for i, k in enumerate(keys.tolist()):
        d = sets_list[k % nsets]
        if k in d:
            del d[k]
            d[k] = None
            hits[i] = True
            h += 1
        else:
            if len(d) >= ways:
                del d[next(iter(d))]
            d[k] = None
            hits[i] = False
            mcount += 1
    tlb.hits += h
    tlb.misses += mcount
    return hits


# trd: scalar-fallback[per-set backward tail scan bounded by ways*sets, not stream length]
def _write_back_state(
    tlb: SetAssocTLB,
    ckey: np.ndarray,
    cset: np.ndarray,
    touched_sets: np.ndarray,
    nsets: int,
) -> None:
    """Rebuild each touched set's dict: last ``ways`` distinct keys, in
    last-reference order (LRU first) — exactly the scalar end state.

    Works on the compressed, set-sorted stream (initial-state pseudo
    entries included): run compression only drops *adjacent* repeats, so
    the backward order of last references is unchanged.  Each set is
    scanned backward from its block's end in geometrically growing tail
    slices — the resident keys are almost always found within the first
    few dozen elements.
    """
    ways = tlb.ways
    if nsets == 1:
        blocks = [(int(touched_sets[0]), 0, len(ckey))]
    else:
        starts = np.searchsorted(cset, touched_sets, side="left")
        ends = np.searchsorted(cset, touched_sets, side="right")
        blocks = list(
            zip(touched_sets.tolist(), starts.tolist(), ends.tolist())
        )
    for s, lo, hi in blocks:
        resident: list[int] = []
        seen: set[int] = set()
        take = 8 * ways
        j = hi
        while j > lo and len(resident) < ways:
            nlo = max(lo, j - take)
            for k in reversed(ckey[nlo:j].tolist()):
                if k not in seen:
                    seen.add(k)
                    resident.append(k)
                    if len(resident) >= ways:
                        break
            j = nlo
            take *= 2
        resident.reverse()
        tlb._sets[s] = dict.fromkeys(resident)


def hierarchy_touch_batch(hierarchy, sizes: np.ndarray, vas: np.ndarray) -> None:
    """Batched equivalent of per-access ``hierarchy.access(va, mapping)``.

    ``sizes`` holds each access's mapping page size (geometry level
    indices);
    the caller guarantees the page table is static across the batch and has
    already set the mappings' accessed bits.  All counters — per-structure
    hits/misses, :class:`TranslationStats`, walker totals, walk histograms,
    traced walk events and :class:`SimClock` advancement — end up exactly
    as a scalar replay would leave them, including float accumulation
    order (cost-bearing events are folded in stream order).
    """
    n = len(vas)
    if n == 0:
        return
    stats = hierarchy.stats
    stats.accesses += n

    # L1: one structure per geometry level, keyed by level-granular VPN.
    n_levels = hierarchy.n_levels
    vpns = np.empty(n, dtype=np.int64)
    l1_hit = np.zeros(n, dtype=bool)
    for size in range(n_levels):
        idx = np.flatnonzero(sizes == size)
        if len(idx) == 0:
            continue
        vp = vas[idx] >> hierarchy._shifts[size]
        vpns[idx] = vp
        l1_hit[idx] = lru_batch_lookup(hierarchy.l1[size], vp)
    stats.l1_hits += int(l1_hit.sum())

    miss_idx = np.flatnonzero(~l1_hit)
    if len(miss_idx) == 0:
        return

    # L2: group the L1-miss subsequence by target structure.  Sizes that
    # share a structure (4KB + 2MB in the shared L2) interleave by stream
    # position with raw VPN keys — the scalar path's modeled aliasing.
    miss_sizes = sizes[miss_idx]
    l2_hit = np.zeros(len(miss_idx), dtype=bool)
    # Keyed on the structure itself (identity): shared L2s dedupe, and
    # iteration follows ascending level order deterministically.
    by_struct: dict[SetAssocTLB, list[int]] = {}
    for size in range(n_levels):
        l2 = hierarchy._l2_for(size)
        by_struct.setdefault(l2, []).append(size)
    for l2, struct_sizes in by_struct.items():
        sel = np.isin(miss_sizes, struct_sizes)
        rows = np.flatnonzero(sel)
        if len(rows) == 0:
            continue
        l2_hit[rows] = lru_batch_lookup(l2, vpns[miss_idx[rows]])

    _accumulate_misses(hierarchy, miss_idx, miss_sizes, l2_hit, vpns)


def _seeded_total(initial: float, adds: np.ndarray) -> float:
    """``initial`` plus ``adds`` folded left-to-right, bit-exact.

    ``np.cumsum`` computes each prefix with one sequential float64 add, so
    seeding it with the accumulator's current value reproduces a scalar
    ``for v in adds: acc += v`` loop exactly.
    """
    if len(adds) == 0:
        return initial
    return float(np.cumsum(np.concatenate(([initial], adds)))[-1])


def _accumulate_misses(
    hierarchy, miss_idx, miss_sizes, l2_hit, vpns
) -> None:
    """Fold L1-miss costs into stats/clock/histograms in stream order.

    The fast path is fully vectorized: integer counters add in bulk and
    float accumulators fold their per-event cost streams with seeded
    ``np.cumsum`` (see :func:`_seeded_total`), preserving the scalar
    path's accumulation order bit-for-bit.  When tracing is active or the
    clock has advancement listeners (timeline sampling), the per-event
    loop runs instead so event emission and listener callbacks fire at
    the same points as the scalar path.
    """
    stats = hierarchy.stats
    walker = hierarchy.walker
    clock = hierarchy._clock
    h_walk = hierarchy._h_walk
    tracer = hierarchy._tracer
    trace = tracer is not None and tracer.active
    l2c = float(hierarchy.walk_config.l2_tlb_hit_cycles)
    n_levels = hierarchy.n_levels
    walk_cycles_of = {
        s: walker.native_walk_cycles(s) for s in range(n_levels)
    }
    if not trace and (clock is None or not clock._listeners):
        cyc_lut = np.array(
            [walk_cycles_of[s] for s in range(n_levels)]
        )
        walk_mask = ~l2_hit
        walk_sizes = miss_sizes[walk_mask]
        n_l2_hits = len(l2_hit) - len(walk_sizes)
        stats.l2_hits += n_l2_hits
        stats.walks += len(walk_sizes)
        walker.walks += len(walk_sizes)
        size_counts = np.bincount(walk_sizes, minlength=n_levels)
        for s in range(n_levels):
            stats.walks_by_size[s] += int(size_counts[s])
        walk_adds = cyc_lut[walk_sizes]
        tc_adds = np.where(l2_hit, l2c, cyc_lut[miss_sizes] + l2c)
        stats.translation_cycles = _seeded_total(
            stats.translation_cycles, tc_adds
        )
        stats.walk_cycles = _seeded_total(stats.walk_cycles, walk_adds)
        walker.walk_cycles = _seeded_total(walker.walk_cycles, walk_adds)
        if clock is not None:
            # Bit-exact seeded cumsum: only taken when the clock has no
            # listeners (checked above), so no span can miss the jump.
            clock.now_ns = _seeded_total(clock.now_ns, tc_adds / FREQ_GHZ)  # trd: ignore[TRD006] listener-free fast path advances in one jump
        if h_walk is not None:
            for s in range(n_levels):
                k = int(size_counts[s])
                if not k:
                    continue
                h = h_walk[s]
                v = walk_cycles_of[s]
                h.bucket_counts[bisect_left(h.bounds, v)] += k
                h.count += k
                h.sum = _seeded_total(h.sum, np.full(k, v))
        return

    walks_by_size = stats.walks_by_size
    miss_vpns = vpns[miss_idx]
    for k, (size, hit2) in enumerate(  # trd: ignore[TRD008] per-event emission path, active only with tracer/clock listeners
        zip(miss_sizes.tolist(), l2_hit.tolist())
    ):
        if hit2:
            stats.l2_hits += 1
            stats.translation_cycles += l2c
            if clock is not None:
                clock.advance(l2c / FREQ_GHZ)
            continue
        cycles = walk_cycles_of[size]
        walker.walks += 1
        walker.walk_cycles += cycles
        stats.walks += 1
        walks_by_size[size] += 1
        stats.walk_cycles += cycles
        stats.translation_cycles += cycles + l2c
        if clock is not None:
            clock.advance((cycles + l2c) / FREQ_GHZ)
        if h_walk is not None:
            h_walk[size].observe(cycles)
            if trace:
                tracer.emit(
                    "tlb",
                    "walk",
                    vpn=int(miss_vpns[k]),
                    size=hierarchy._labels[size],
                    cycles=cycles,
                )
