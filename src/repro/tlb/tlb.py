"""A set-associative, LRU-replacement TLB.

One instance models one hardware structure (e.g. Skylake's 32-entry 4-way L1
dTLB for 2MB pages).  Keys are virtual page numbers at the structure's page
granularity; the set index is the VPN modulo the number of sets, LRU is exact
within a set (dict insertion order, refreshed on hit).
"""

from __future__ import annotations

from repro.config import TLBConfig


class SetAssocTLB:
    """Set-associative TLB storing VPN tags with exact per-set LRU."""

    __slots__ = ("entries", "ways", "sets", "_sets", "hits", "misses")

    def __init__(self, config: TLBConfig) -> None:
        self.entries = config.entries
        self.ways = config.ways
        self.sets = config.sets
        # One ordered dict per set: key = vpn, value unused; order = LRU.
        self._sets: list[dict[int, None]] = [dict() for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def lookup(self, vpn: int) -> bool:
        """Probe for ``vpn``; refreshes LRU on hit."""
        s = self._sets[vpn % self.sets]
        if vpn in s:
            # Refresh recency: move to the back of the insertion order.
            del s[vpn]
            s[vpn] = None
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, vpn: int) -> None:
        """Fill ``vpn``, evicting the set's LRU entry if full."""
        s = self._sets[vpn % self.sets]
        if vpn in s:
            del s[vpn]
        elif len(s) >= self.ways:
            del s[next(iter(s))]  # least-recently-used = first inserted
        s[vpn] = None

    def invalidate(self, vpn: int) -> bool:
        """Drop ``vpn`` if present (page remap / promotion shootdown)."""
        s = self._sets[vpn % self.sets]
        if vpn in s:
            del s[vpn]
            return True
        return False

    def flush(self) -> None:
        """Drop everything (context switch / full shootdown)."""
        for s in self._sets:
            s.clear()

    @property
    def occupancy(self) -> int:
        return sum(len(s) for s in self._sets)

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0
