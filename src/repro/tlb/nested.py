"""Nested (two-dimensional) address translation for virtualized execution.

Under virtualization a gVA is translated to a gPA by the guest page table
and the gPA to an hPA by the host page table (EPT).  Hardware TLBs cache the
combined gVA -> hPA translation; the *effective* page size of a cached entry
is the smaller of the guest and host page sizes (a 1GB guest mapping backed
by 4KB host pages is cached at 4KB granularity).  On a TLB miss the 2D walk
costs up to (nG+1)*(nH+1)-1 memory accesses: 24 / 15 / 8 for 4K+4K / 2M+2M /
1G+1G — Section 2 of the paper.
"""

from __future__ import annotations

from repro.config import PageGeometry, TLBHierarchyConfig, WalkConfig
from repro.tlb.hierarchy import TranslationStats
from repro.tlb.tlb import SetAssocTLB
from repro.tlb.walker import PageWalker
from repro.vm.pagetable import Mapping, PageTable


class NestedTranslationUnit:
    """TLB hierarchy caching combined gVA->hPA translations."""

    def __init__(
        self,
        config: TLBHierarchyConfig,
        walk: WalkConfig,
        geometry: PageGeometry,
        host_table: PageTable,
        hva_base: int = 0,
    ) -> None:
        self.geometry = geometry
        self.walk_config = walk
        self.host_table = host_table
        self.n_levels = geometry.n_levels
        #: host virtual address where the guest-physical range is mapped
        #: (the VM process's RAM allocation in the host)
        self.hva_base = hva_base
        sections, groups = config.resolved(geometry)
        self.l1 = {
            level: SetAssocTLB(sections[level].l1)
            for level in geometry.all_levels
        }
        self.l2 = {name: SetAssocTLB(cfg) for name, cfg in groups.items()}
        self._l2_by_level = [
            self.l2[sections[level].l2] for level in geometry.all_levels
        ]
        self.l2_shared = self.l2.get("shared")
        self.l2_large = self.l2.get("large")
        self.l2_mid = self.l2.get("mid")
        self.walker = PageWalker(walk)
        self.stats = TranslationStats.for_geometry(geometry)
        self._shifts = {
            level: geometry.shift_for(level) for level in geometry.all_levels
        }

    def _l2_for(self, size: int) -> SetAssocTLB:
        return self._l2_by_level[size]

    def gpa_of(self, guest_mapping: Mapping, va: int) -> int:
        """Guest-physical address ``va`` resolves to."""
        return guest_mapping.pfn * self.geometry.base_size + (va - guest_mapping.va)

    def host_mapping_for(self, guest_mapping: Mapping, va: int) -> Mapping | None:
        """Host (EPT) mapping backing the gPA that ``va`` resolves to."""
        return self.host_table.translate(
            self.hva_base + self.gpa_of(guest_mapping, va)
        )

    def access(self, va: int, guest_mapping: Mapping) -> float:
        """One guest load/store; returns translation cycles beyond L1 hit.

        Raises LookupError if the gPA has no host mapping (the hypervisor
        must have populated EPT before the guest runs — simulation setups
        always do, so a miss indicates a harness bug).
        """
        host_mapping = self.host_mapping_for(guest_mapping, va)
        if host_mapping is None:
            raise LookupError(
                f"gPA backing gVA {va:#x} is not mapped in the host table"
            )
        size = min(guest_mapping.page_size, host_mapping.page_size)
        vpn = va >> self._shifts[size]
        stats = self.stats
        stats.accesses += 1
        guest_mapping.accessed = True
        host_mapping.accessed = True
        if self.l1[size].lookup(vpn):
            stats.l1_hits += 1
            return 0.0
        l2 = self._l2_by_level[size]
        if l2.lookup(vpn):
            stats.l2_hits += 1
            self.l1[size].insert(vpn)
            cycles = float(self.walk_config.l2_tlb_hit_cycles)
            stats.translation_cycles += cycles
            return cycles
        cycles = self.walker.nested_walk(
            guest_mapping.page_size, host_mapping.page_size
        )
        stats.walks += 1
        stats.walks_by_size[size] += 1
        stats.walk_cycles += cycles
        stats.translation_cycles += cycles + self.walk_config.l2_tlb_hit_cycles
        l2.insert(vpn)
        self.l1[size].insert(vpn)
        return cycles

    def invalidate_range(self, start: int, length: int) -> None:
        """Shootdown of guest-virtual range after remapping at either level."""
        for size in range(self.n_levels):
            shift = self._shifts[size]
            first = start >> shift
            last = (start + length - 1) >> shift
            structures = (self.l1[size], self._l2_by_level[size])
            if last - first + 1 > 4096:
                for s in structures:
                    s.flush()
            else:
                for vpn in range(first, last + 1):
                    for s in structures:
                        s.invalidate(vpn)

    def flush(self) -> None:
        for tlb in self.l1.values():
            tlb.flush()
        for tlb in self.l2.values():
            tlb.flush()
