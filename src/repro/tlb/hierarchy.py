"""The per-core TLB hierarchy (Table 1 of the paper, data side).

Structure (Skylake defaults, x86 three-tier geometry):

* L1 dTLB — one structure per geometry level: 64x4 (4KB), 32x4 (2MB),
  4-entry fully associative (1GB).  Every load/store probes the structure
  matching its mapping's page size; an L1 hit costs nothing extra.
* L2 sTLB — named groups of set-associative arrays; each level's
  :class:`~repro.config.TLBSection` points at its group.  On x86 a
  1536-entry 12-way array is shared by 4KB and 2MB translations and a
  separate 16-entry 4-way array serves 1GB.  An L2 hit costs a few
  cycles; an L2 miss triggers a page walk.

Other geometries declare more levels (SVNAPOT's 64KB NAPOT pages) or
different groupings (ARM's contiguous-bit entries share the granule
array); the hierarchy builds whatever ladder
:meth:`TLBHierarchyConfig.resolved` hands it, one SetAssocTLB per level.

The simulator is trace-driven: the caller translates each virtual address
through the page table first (so the mapping's page size is known — hardware
discovers it during the walk, but the steady-state cost is identical) and
feeds the mapping here.  Walk cycles accumulate in :class:`TranslationStats`,
which is what the paper's ``DTLB_*_MISSES.WALK_ACTIVE`` counters measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import FREQ_GHZ, PageGeometry, TLBHierarchyConfig, WalkConfig
from repro.tlb.tlb import SetAssocTLB
from repro.tlb.walker import PageWalker
from repro.vm.pagetable import Mapping


@dataclass
class TranslationStats:
    """Counters matching the paper's measurement methodology."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0
    walk_cycles: float = 0.0
    translation_cycles: float = 0.0
    walks_by_size: dict[int, int] = field(
        default_factory=lambda: {s: 0 for s in range(3)}
    )

    @classmethod
    def for_geometry(cls, geometry: PageGeometry) -> "TranslationStats":
        return cls(walks_by_size={s: 0 for s in geometry.all_levels})

    @property
    def l1_miss_rate(self) -> float:
        return 1 - self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def walks_per_access(self) -> float:
        return self.walks / self.accesses if self.accesses else 0.0


class TLBHierarchy:
    """L1 (per-level) + grouped L2 TLBs over one page table."""

    #: walk-latency histogram bucket upper bounds, in cycles
    WALK_BUCKETS = (10, 20, 40, 60, 80, 120, 160, 240, 320, 640)

    def __init__(
        self,
        config: TLBHierarchyConfig,
        walk: WalkConfig,
        geometry: PageGeometry,
        obs=None,
    ) -> None:
        self.geometry = geometry
        self.walk_config = walk
        self.n_levels = geometry.n_levels
        self._labels = geometry.labels
        self._tracer = None
        self._clock = None
        self._h_walk = None
        if obs is not None:
            self._tracer = obs.tracer
            self._clock = getattr(obs, "clock", None)
            self._h_walk = {
                s: obs.metrics.histogram(
                    "tlb_walk_cycles",
                    buckets=self.WALK_BUCKETS,
                    size=self._labels[s],
                )
                for s in geometry.all_levels
            }
        sections, groups = config.resolved(geometry)
        self.l1 = {
            level: SetAssocTLB(sections[level].l1)
            for level in geometry.all_levels
        }
        #: named L2 group -> structure, in declaration order
        self.l2 = {name: SetAssocTLB(cfg) for name, cfg in groups.items()}
        self._l2_by_level = [
            self.l2[sections[level].l2] for level in geometry.all_levels
        ]
        # Legacy attribute aliases; state fingerprints and the x86-era
        # tooling address the groups by these names.
        self.l2_shared = self.l2.get("shared")
        self.l2_large = self.l2.get("large")
        self.l2_mid = self.l2.get("mid")
        self.walker = PageWalker(walk)
        self.stats = TranslationStats.for_geometry(geometry)
        self._shifts = {
            level: geometry.shift_for(level) for level in geometry.all_levels
        }

    def _l2_for(self, page_size: int) -> SetAssocTLB:
        return self._l2_by_level[page_size]

    def access(self, va: int, mapping: Mapping) -> float:
        """One load/store to ``va``; returns translation cycles beyond L1 hit.

        Sets the mapping's access bit (as the hardware walker would on fill,
        and as already-set bits stay set on hits).
        """
        size = mapping.page_size
        vpn = va >> self._shifts[size]
        stats = self.stats
        stats.accesses += 1
        mapping.accessed = True
        if self.l1[size].lookup(vpn):
            stats.l1_hits += 1
            return 0.0
        l2 = self._l2_by_level[size]
        if l2.lookup(vpn):
            stats.l2_hits += 1
            self.l1[size].insert(vpn)
            cycles = float(self.walk_config.l2_tlb_hit_cycles)
            stats.translation_cycles += cycles
            if self._clock is not None:
                self._clock.advance(cycles / FREQ_GHZ)
            return cycles
        cycles = self.walker.native_walk(size)
        stats.walks += 1
        stats.walks_by_size[size] += 1
        stats.walk_cycles += cycles
        stats.translation_cycles += cycles + self.walk_config.l2_tlb_hit_cycles
        if self._clock is not None:
            self._clock.advance(
                (cycles + self.walk_config.l2_tlb_hit_cycles) / FREQ_GHZ
            )
        if self._h_walk is not None:
            self._h_walk[size].observe(cycles)
            tr = self._tracer
            if tr.active:
                tr.emit(
                    "tlb", "walk", vpn=vpn,
                    size=self._labels[size], cycles=cycles,
                )
        l2.insert(vpn)
        self.l1[size].insert(vpn)
        return cycles

    def invalidate_range(self, start: int, length: int) -> None:
        """Shootdown for a remapped range (promotion/compaction).

        Drops every entry whose page lies inside [start, start+length) from
        all levels.  Ranges are page-size aligned in all call sites.
        """
        for size in range(self.n_levels):
            shift = self._shifts[size]
            first = start >> shift
            last = (start + length - 1) >> shift
            structures = (self.l1[size], self._l2_by_level[size])
            # Small ranges: invalidate per page; huge ranges: flush.
            if last - first + 1 > 4096:
                for s in structures:
                    s.flush()
            else:
                for vpn in range(first, last + 1):
                    for s in structures:
                        s.invalidate(vpn)

    def flush(self) -> None:
        for tlb in self.l1.values():
            tlb.flush()
        for tlb in self.l2.values():
            tlb.flush()

    def reset_stats(self) -> None:
        self.stats = TranslationStats.for_geometry(self.geometry)
        self.walker.reset_stats()
        for tlb in self.l1.values():
            tlb.reset_stats()
        for tlb in self.l2.values():
            tlb.reset_stats()
