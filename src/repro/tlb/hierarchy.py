"""The per-core TLB hierarchy (Table 1 of the paper, data side).

Structure (Skylake defaults):

* L1 dTLB — three structures, one per page size: 64x4 (4KB), 32x4 (2MB),
  4-entry fully associative (1GB).  Every load/store probes the structure
  matching its mapping's page size; an L1 hit costs nothing extra.
* L2 sTLB — a 1536-entry 12-way array shared by 4KB and 2MB translations
  plus a separate 16-entry 4-way array for 1GB.  An L2 hit costs a few
  cycles; an L2 miss triggers a page walk.

The simulator is trace-driven: the caller translates each virtual address
through the page table first (so the mapping's page size is known — hardware
discovers it during the walk, but the steady-state cost is identical) and
feeds the mapping here.  Walk cycles accumulate in :class:`TranslationStats`,
which is what the paper's ``DTLB_*_MISSES.WALK_ACTIVE`` counters measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import FREQ_GHZ, PageGeometry, PageSize, TLBHierarchyConfig, WalkConfig
from repro.tlb.tlb import SetAssocTLB
from repro.tlb.walker import PageWalker
from repro.vm.pagetable import Mapping


@dataclass
class TranslationStats:
    """Counters matching the paper's measurement methodology."""

    accesses: int = 0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0
    walk_cycles: float = 0.0
    translation_cycles: float = 0.0
    walks_by_size: dict[int, int] = field(
        default_factory=lambda: {s: 0 for s in PageSize.ALL}
    )

    @property
    def l1_miss_rate(self) -> float:
        return 1 - self.l1_hits / self.accesses if self.accesses else 0.0

    @property
    def walks_per_access(self) -> float:
        return self.walks / self.accesses if self.accesses else 0.0


class TLBHierarchy:
    """L1 (per-size) + L2 (shared and 1GB) TLBs over one page table."""

    #: walk-latency histogram bucket upper bounds, in cycles
    WALK_BUCKETS = (10, 20, 40, 60, 80, 120, 160, 240, 320, 640)

    def __init__(
        self,
        config: TLBHierarchyConfig,
        walk: WalkConfig,
        geometry: PageGeometry,
        obs=None,
    ) -> None:
        self.geometry = geometry
        self.walk_config = walk
        self._tracer = None
        self._clock = None
        self._h_walk = None
        if obs is not None:
            self._tracer = obs.tracer
            self._clock = getattr(obs, "clock", None)
            self._h_walk = {
                s: obs.metrics.histogram(
                    "tlb_walk_cycles",
                    buckets=self.WALK_BUCKETS,
                    size=PageSize.X86_NAMES[s],
                )
                for s in PageSize.ALL
            }
        self.l1 = {
            PageSize.BASE: SetAssocTLB(config.l1_base),
            PageSize.MID: SetAssocTLB(config.l1_mid),
            PageSize.LARGE: SetAssocTLB(config.l1_large),
        }
        self.l2_shared = SetAssocTLB(config.l2_shared)
        self.l2_large = SetAssocTLB(config.l2_large)
        self.l2_mid = (
            SetAssocTLB(config.l2_mid) if config.l2_mid is not None else None
        )
        self.walker = PageWalker(walk)
        self.stats = TranslationStats()
        self._shifts = {
            PageSize.BASE: geometry.base_shift,
            PageSize.MID: geometry.base_shift + geometry.mid_order,
            PageSize.LARGE: geometry.base_shift + geometry.large_order,
        }

    def _l2_for(self, page_size: int) -> SetAssocTLB:
        if page_size == PageSize.LARGE:
            return self.l2_large
        if page_size == PageSize.MID and self.l2_mid is not None:
            return self.l2_mid
        return self.l2_shared

    def access(self, va: int, mapping: Mapping) -> float:
        """One load/store to ``va``; returns translation cycles beyond L1 hit.

        Sets the mapping's access bit (as the hardware walker would on fill,
        and as already-set bits stay set on hits).
        """
        size = mapping.page_size
        vpn = va >> self._shifts[size]
        stats = self.stats
        stats.accesses += 1
        mapping.accessed = True
        if self.l1[size].lookup(vpn):
            stats.l1_hits += 1
            return 0.0
        l2 = self._l2_for(size)
        if l2.lookup(vpn):
            stats.l2_hits += 1
            self.l1[size].insert(vpn)
            cycles = float(self.walk_config.l2_tlb_hit_cycles)
            stats.translation_cycles += cycles
            if self._clock is not None:
                self._clock.advance(cycles / FREQ_GHZ)
            return cycles
        cycles = self.walker.native_walk(size)
        stats.walks += 1
        stats.walks_by_size[size] += 1
        stats.walk_cycles += cycles
        stats.translation_cycles += cycles + self.walk_config.l2_tlb_hit_cycles
        if self._clock is not None:
            self._clock.advance(
                (cycles + self.walk_config.l2_tlb_hit_cycles) / FREQ_GHZ
            )
        if self._h_walk is not None:
            self._h_walk[size].observe(cycles)
            tr = self._tracer
            if tr.active:
                tr.emit(
                    "tlb", "walk", vpn=vpn,
                    size=PageSize.X86_NAMES[size], cycles=cycles,
                )
        l2.insert(vpn)
        self.l1[size].insert(vpn)
        return cycles

    def invalidate_range(self, start: int, length: int) -> None:
        """Shootdown for a remapped range (promotion/compaction).

        Drops every entry whose page lies inside [start, start+length) from
        all levels.  Ranges are page-size aligned in all call sites.
        """
        for size in PageSize.ALL:
            shift = self._shifts[size]
            first = start >> shift
            last = (start + length - 1) >> shift
            structures = (self.l1[size], self._l2_for(size))
            # Small ranges: invalidate per page; huge ranges: flush.
            if last - first + 1 > 4096:
                for s in structures:
                    s.flush()
            else:
                for vpn in range(first, last + 1):
                    for s in structures:
                        s.invalidate(vpn)

    def flush(self) -> None:
        for tlb in self.l1.values():
            tlb.flush()
        self.l2_shared.flush()
        self.l2_large.flush()
        if self.l2_mid is not None:
            self.l2_mid.flush()

    def reset_stats(self) -> None:
        self.stats = TranslationStats()
        self.walker.reset_stats()
        for tlb in self.l1.values():
            tlb.reset_stats()
        self.l2_shared.reset_stats()
        self.l2_large.reset_stats()
        if self.l2_mid is not None:
            self.l2_mid.reset_stats()
