"""Page-walk latency model.

On an L2 TLB miss the hardware walks the page table: up to 4 memory accesses
for a 4KB leaf, 3 for 2MB, 2 for 1GB (the paper's Section 2).  Page-walk
caches (PWCs) hold upper-level entries; we model them with an expected-value
discount — with probability ``pwc_hit_rate`` every level above the leaf is
cached, so the expected accesses per walk are::

    1 + (levels - 1) * (1 - pwc_hit_rate)

Nested (virtualized) walks use the 2D access counts 24 / 15 / 8 with the
same discount applied to the non-final accesses.
"""

from __future__ import annotations

from repro.config import WalkConfig


class PageWalker:
    """Deterministic expected-latency walker with accumulated statistics."""

    def __init__(self, config: WalkConfig) -> None:
        self.config = config
        self.walks = 0
        self.walk_cycles = 0.0

    def expected_accesses(
        self,
        accesses: int,
        leaf_cached: float = 0.0,
        pwc_hit_rate: float | None = None,
    ) -> float:
        """Expected memory accesses for a walk of ``accesses`` max accesses.

        With probability ``leaf_cached`` the leaf entry itself sits in a
        paging-structure cache and the walk costs nothing; otherwise the
        non-leaf accesses are discounted by the upper-level PWC hit rate.
        """
        if pwc_hit_rate is None:
            pwc_hit_rate = self.config.pwc_hit_rate
        miss = 1.0 - pwc_hit_rate
        full = 1.0 + (accesses - 1) * miss
        return (1.0 - leaf_cached) * full

    def native_walk_cycles(self, page_size: int) -> float:
        """Cycles one native walk to a ``page_size`` leaf costs (pure).

        Shared by the scalar path and the batch engine so both compute the
        identical float; the model is deterministic per page size.
        """
        accesses = self.config.native_walk_accesses(page_size)
        return (
            self.expected_accesses(
                accesses, self.config.leaf_cached_prob(page_size)
            )
            * self.config.mem_access_cycles
        )

    def native_walk(self, page_size: int) -> float:
        """Cycles for one native walk to a leaf of ``page_size``."""
        cycles = self.native_walk_cycles(page_size)
        self.walks += 1
        self.walk_cycles += cycles
        return cycles

    def nested_walk(self, guest_size: int, host_size: int) -> float:
        """Cycles for one 2D walk with the given guest/host leaf sizes.

        The leaf-cache shortcut applies when *both* dimensions' leaves are
        cached (the nested walk needs the guest leaf and its EPT leaf).
        """
        accesses = self.config.nested_walk_accesses(guest_size, host_size)
        # The gVA-side and EPT-side leaf entries are cached independently;
        # the nested walker short-circuits once the rarer of the two hits
        # (splintered walks reuse the cached dimension), so the effective
        # shortcut probability is the smaller of the two, not their product.
        leaf_cached = min(
            self.config.leaf_cached_prob(guest_size),
            self.config.leaf_cached_prob(host_size),
        )
        cycles = (
            self.expected_accesses(
                accesses, leaf_cached, self.config.nested_pwc_hit_rate
            )
            * self.config.mem_access_cycles
        )
        self.walks += 1
        self.walk_cycles += cycles
        return cycles

    def reset_stats(self) -> None:
        self.walks = 0
        self.walk_cycles = 0.0
