"""TLB and page-walk simulation.

Trace-driven model of the translation hardware the paper measures with
Skylake performance counters: per-page-size L1 TLBs, a shared L2 (with a
separate 1GB section), and a page-walk cost model including page-walk caches
and two-dimensional (nested) walks under virtualization.
"""

from repro.tlb.tlb import SetAssocTLB
from repro.tlb.walker import PageWalker
from repro.tlb.hierarchy import TLBHierarchy, TranslationStats
from repro.tlb.nested import NestedTranslationUnit

__all__ = [
    "SetAssocTLB",
    "PageWalker",
    "TLBHierarchy",
    "TranslationStats",
    "NestedTranslationUnit",
]
