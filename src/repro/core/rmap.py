"""Reverse mapping: from physical blocks back to whoever maps them.

Compaction relocates the contents of physical frames, which requires knowing
who references each block so the reference can be re-pointed — Linux's rmap.
Here an owner is anything implementing :class:`FrameOwner`: a process page
table (remap the VA and shoot down the TLB), the fragmentation injector's
page cache, or any test double.

Only *registered* movable blocks can be migrated.  A movable buddy block
with no rmap entry (e.g. the zero-fill pool) is treated as unmovable by
compaction, exactly like a page the kernel cannot migrate.
"""

from __future__ import annotations

from typing import Protocol


class FrameOwner(Protocol):
    """Object able to re-point its reference from one block to another."""

    def relocate(self, old_pfn: int, new_pfn: int, order: int) -> None:
        """Called after contents moved from ``old_pfn`` to ``new_pfn``."""
        ...


class ReverseMap:
    """pfn -> (order, owner) for every migratable allocation."""

    def __init__(self) -> None:
        self._owners: dict[int, tuple[int, FrameOwner]] = {}

    def __len__(self) -> int:
        return len(self._owners)

    def register(self, pfn: int, order: int, owner: FrameOwner) -> None:
        if pfn in self._owners:
            raise ValueError(f"pfn {pfn} already registered in rmap")
        self._owners[pfn] = (order, owner)

    def unregister(self, pfn: int) -> None:
        if pfn not in self._owners:
            raise ValueError(f"pfn {pfn} not registered in rmap")
        del self._owners[pfn]

    def lookup(self, pfn: int) -> tuple[int, FrameOwner] | None:
        """(order, owner) of the registered block starting at ``pfn``."""
        return self._owners.get(pfn)

    def moved(self, old_pfn: int, new_pfn: int) -> None:
        """Record that a registered block now starts at ``new_pfn``."""
        order, owner = self._owners.pop(old_pfn)
        self._owners[new_pfn] = (order, owner)
        owner.relocate(old_pfn, new_pfn, order)
