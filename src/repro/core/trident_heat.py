"""Trident with HawkEye-style heat-ordered promotion (the paper's own
future-work suggestion).

Section 8: "Many insights from these works on 2MB pages are applicable to
Trident too e.g., HawkEye's fine-grained page promotion ... can be applied
to Trident too."  This policy does exactly that: the khugepaged scan order
is driven by sampled access-bit heat instead of sequential VA order, so
when promotion bandwidth is scarce (a capped daemon, or early in a run) the
*hottest* 1GB-mappable regions get their pages first.

Promotion mechanics, compaction and the fault path are unchanged Trident.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.trident import TridentPolicy


class TridentHeatPolicy(TridentPolicy):
    """Trident + kbinmanager-style heat ordering for the promotion scan."""

    name = "Trident-heat"
    #: ns charged per mapping whose access bit the sampler reads
    access_sample_ns = 120.0
    #: fraction of each tick spent sampling heat before promoting
    sampler_budget_fraction = 0.15

    def __init__(self, kernel, **kwargs) -> None:
        super().__init__(kernel, **kwargs)
        self._heat: dict[tuple[int, int], int] = {}  # (pid, large slot) -> heat

    def background_tick(self, budget_ns: float) -> float:
        sampler_budget = budget_ns * self.sampler_budget_fraction
        used = self._sample_heat(sampler_budget)
        used += super().background_tick(budget_ns - used)
        return used

    def _sample_heat(self, budget_ns: float) -> float:
        used = 0.0
        geometry = self.kernel.geometry
        top = geometry.top_level
        for process in list(self.kernel.processes):
            if used >= budget_ns:
                break
            for mapping in process.pagetable.iter_mappings():
                used += self.access_sample_ns
                if mapping.accessed and mapping.page_size != top:
                    slot = geometry.align_down(mapping.va, top)
                    key = (process.pid, slot)
                    self._heat[key] = self._heat.get(key, 0) + 1
                mapping.accessed = False
                if used >= budget_ns:
                    break
        self.stats.daemon_ns += used
        return used

    def _candidate_stream(self) -> Iterator[tuple]:
        """Hottest large slots first; then Trident's sequential order."""
        geometry = self.kernel.geometry
        top = geometry.top_level
        by_pid = {p.pid: p for p in self.kernel.processes}
        ranked = sorted(self._heat.items(), key=lambda kv: -kv[1])
        seen: set[tuple[int, int]] = set()
        for (pid, va), _ in ranked:
            process = by_pid.get(pid)
            if process is not None:
                seen.add((pid, va))
                yield process, va, top
        # Decay so stale heat fades between passes.
        self._heat = {k: v // 2 for k, v in self._heat.items() if v > 1}
        for candidate in super()._candidate_stream():
            process, va, size = candidate
            if size == top and (process.pid, va) in seen:
                continue
            yield candidate
