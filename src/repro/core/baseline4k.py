"""The 4KB-only baseline: every fault maps exactly one base page.

This is Linux with THP disabled — the ``4KB`` bars of Figures 1 and 2.
"""

from __future__ import annotations

from repro.core.policy import MemoryPolicy


class Baseline4KPolicy(MemoryPolicy):
    """No large pages, no promotion, no compaction."""

    name = "4KB"

    def handle_fault(self, process, va: int) -> float:
        vma = process.aspace.find_vma(va)
        if vma is None:
            raise ValueError(f"fault at unmapped va {va:#x} (no VMA)")
        return self._map_base_fault(process, va)
