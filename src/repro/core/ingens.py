"""Ingens (OSDI '16): utilization-threshold huge-page management.

The other software baseline the paper's related-work section leans on
(HawkEye builds on it).  Ingens's central idea: THP's promote-on-one-page
aggressiveness causes bloat and latency spikes, so promote a 2MB region
only once a *utilization threshold* of its base pages is actually present
(Linux's ``max_ptes_none`` turned from 511 into a policy), and decay-track
access frequency so cold regions are not promoted at all.

Implemented as a THP subclass with FreeBSD-style conservatism: faults map
base pages only (no synchronous 2MB allocation), and the asynchronous
promoter requires both utilization and recency.  Included for completeness
of the software-baselines taxonomy and for the bloat comparison bench:
Ingens trades TLB coverage for near-zero bloat, sitting between 4KB and
THP on coverage and below both THP and Trident on bloat.
"""

from __future__ import annotations

from repro.core.thp import THPPolicy


class IngensPolicy(THPPolicy):
    """Conservative faults + 90%-utilization async promotion with decay."""

    name = "Ingens"
    #: fraction of a 2MB region's base pages that must be present (Ingens's
    #: default utilization threshold is 90%)
    min_present_fraction_mid = 0.90
    #: regions must also look recently used: minimum fraction of present
    #: pages with their access bit set at scan time
    min_accessed_fraction = 0.5

    def handle_fault(self, process, va: int) -> float:
        """FreeBSD-style conservative fault: always base pages."""
        vma = process.aspace.find_vma(va)
        if vma is None:
            raise ValueError(f"fault at unmapped va {va:#x} (no VMA)")
        return self._map_base_fault(process, va)

    def _slot_contents(self, process, va: int, page_size: int):
        present = super()._slot_contents(process, va, page_size)
        if present is None or page_size != self.kernel.geometry.thp_level:
            return present
        accessed = sum(1 for m in present if m.accessed)
        if accessed < self.min_accessed_fraction * len(present):
            # Cold region: skip, but clear the bits so the next scan sees
            # fresh activity (Ingens's per-scan decay).
            for m in present:
                m.accessed = False
            return None
        return present
