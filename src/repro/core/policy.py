"""The memory-policy interface all page-size managers implement.

A policy is the OS decision layer: which page size to use on a fault, what
the background daemon (khugepaged and friends) does with its CPU budget, and
when to compact.  Policies operate on a *kernel context* — the object
(normally :class:`repro.sim.system.System`) exposing the physical-memory
substrate::

    kernel.geometry, kernel.cost        # configuration
    kernel.buddy, kernel.regions        # physical memory
    kernel.rmap                         # reverse map for compaction
    kernel.zerofill                     # pre-zeroed large-block pool
    kernel.normal_compactor, kernel.smart_compactor
    kernel.reclaim(n_frames)            # page-cache reclaim under pressure
    kernel.processes                    # processes to scan for promotion

The base class provides the fault bookkeeping every policy shares: frame
allocation with reclaim-on-OOM, page-table mapping + rmap registration, and
fault-latency accounting (the per-fault latencies feed Table 5's tail
percentiles).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PageGeometry
from repro.mem.buddy import OutOfMemoryError
from repro.vm.pagetable import Mapping


@dataclass
class PolicyStats:
    """Counters every policy maintains; the figures are built from these."""

    faults: int = 0
    fault_ns: float = 0.0
    fault_latencies: list[float] = field(default_factory=list)
    #: pages mapped directly by the fault handler, per size
    fault_mapped: dict[int, int] = field(
        default_factory=lambda: {s: 0 for s in range(3)}
    )
    #: pages created by promotion, per (target) size
    promoted: dict[int, int] = field(
        default_factory=lambda: {s: 0 for s in range(3)}
    )
    demoted: dict[int, int] = field(
        default_factory=lambda: {s: 0 for s in range(3)}
    )
    #: large-page allocation attempts/failures at fault vs promotion time
    #: (Table 4 of the paper)
    fault_large_attempts: int = 0
    fault_large_failures: int = 0
    promo_large_attempts: int = 0
    promo_large_failures: int = 0
    promo_copy_bytes: int = 0
    daemon_ns: float = 0.0
    #: bytes mapped but never touched by the application (memory bloat)
    bloat_bytes_recovered: int = 0

    @classmethod
    def for_geometry(cls, geometry: PageGeometry) -> "PolicyStats":
        zeros = lambda: {s: 0 for s in geometry.all_levels}  # noqa: E731
        return cls(fault_mapped=zeros(), promoted=zeros(), demoted=zeros())

    def mapped_pages(self, size: int) -> int:
        return self.fault_mapped[size] + self.promoted[size] - self.demoted[size]


class ProcessFrameOwner:
    """Per-process rmap owner: re-points page-table entries when frames move."""

    def __init__(self, process) -> None:
        self.process = process
        self._va_of_pfn: dict[int, tuple[int, int]] = {}  # pfn -> (va, size)

    def add(self, pfn: int, va: int, page_size: int) -> None:
        self._va_of_pfn[pfn] = (va, page_size)

    def remove(self, pfn: int) -> None:
        del self._va_of_pfn[pfn]

    def lookup(self, pfn: int) -> tuple[int, int] | None:
        """(va, page_size) currently associated with ``pfn``, if any."""
        return self._va_of_pfn.get(pfn)

    def relocate(self, old_pfn: int, new_pfn: int, order: int) -> None:
        va, page_size = self._va_of_pfn.pop(old_pfn)
        self._va_of_pfn[new_pfn] = (va, page_size)
        mapping = self.process.pagetable.translate(va)
        assert mapping is not None and mapping.pfn == old_pfn
        self.process.pagetable.note_repoint(mapping, new_pfn)
        geometry = self.process.pagetable.geometry
        self.process.tlb.invalidate_range(va, geometry.bytes_for(page_size))


class MemoryPolicy:
    """Base class: shared mapping plumbing; subclasses choose page sizes."""

    name = "abstract"
    #: alignment hint the mmap layer should apply to heap VMAs (None = base)
    heap_alignment_size: int | None = None

    def __init__(self, kernel) -> None:
        self.kernel = kernel
        self.stats = PolicyStats.for_geometry(kernel.geometry)
        obs = getattr(kernel, "obs", None)
        self._tracer = obs.tracer if obs is not None else None
        if obs is not None:
            obs.metrics.add_collector(self._collect_metrics)

    def _collect_metrics(self, metrics) -> None:
        """Snapshot-time mirror of :class:`PolicyStats` into the registry.

        Mirroring (instead of double-counting on the hot path) guarantees
        the registry and the figures built from ``RunMetrics`` agree.
        """
        s = self.stats
        metrics.counter("policy_faults_total").set(s.faults)
        metrics.counter("policy_fault_ns_total").set(s.fault_ns)
        metrics.counter("policy_daemon_ns_total").set(s.daemon_ns)
        geometry = self.kernel.geometry
        for size in geometry.all_levels:
            name = geometry.label_for(size)
            metrics.counter("policy_fault_mapped_total", size=name).set(
                s.fault_mapped[size]
            )
            metrics.counter("policy_promoted_total", size=name).set(
                s.promoted[size]
            )
            metrics.counter("policy_demoted_total", size=name).set(
                s.demoted[size]
            )
        metrics.counter("policy_fault_large_attempts_total").set(
            s.fault_large_attempts
        )
        metrics.counter("policy_fault_large_failures_total").set(
            s.fault_large_failures
        )
        metrics.counter("policy_promo_large_attempts_total").set(
            s.promo_large_attempts
        )
        metrics.counter("policy_promo_large_failures_total").set(
            s.promo_large_failures
        )
        metrics.counter("policy_promo_copy_bytes_total").set(s.promo_copy_bytes)
        metrics.counter("policy_bloat_recovered_bytes_total").set(
            s.bloat_bytes_recovered
        )

    # -- interface ----------------------------------------------------------
    def handle_fault(self, process, va: int) -> float:
        """Map the faulting address; returns fault latency in ns."""
        raise NotImplementedError

    def background_tick(self, budget_ns: float) -> float:
        """Run daemon work for up to ``budget_ns``; returns ns consumed."""
        return 0.0

    def on_boot(self) -> None:
        """Hook run once after the system is constructed (hugetlbfs reserves)."""

    # -- shared plumbing ------------------------------------------------------
    def _alloc_frames(self, order: int, movable: bool = True) -> int | None:
        """Allocate, shedding pressure if needed: reclaim, then de-bloat.

        Reclaim frees scattered page-cache frames; if that is not enough,
        huge mappings that are mostly *untouched* get split in place and
        their untouched frames freed — large pages must never cause an OOM
        that base pages would have survived.
        """
        pfn = self.kernel.buddy.try_alloc(order, movable)
        if pfn is not None:
            return pfn
        if self.kernel.reclaim(1 << order):
            pfn = self.kernel.buddy.try_alloc(order, movable)
            if pfn is not None:
                return pfn
        if self._shed_bloat(1 << order):
            return self.kernel.buddy.try_alloc(order, movable)
        return None

    def _shed_bloat(self, frames_needed: int) -> int:
        """Split mostly-untouched huge mappings, freeing their dead frames.

        An in-place split: touched base pages keep their exact frames (no
        copying); untouched frames return to the buddy.  Returns frames
        freed.
        """
        geometry = self.kernel.geometry
        freed = 0
        for process in list(getattr(self.kernel, "processes", ())):
            for size in geometry.levels_desc[:-1]:
                for mapping in list(process.pagetable.iter_mappings(size)):
                    if freed >= frames_needed:
                        return freed
                    nbytes = geometry.bytes_for(size)
                    touched = process.touched_base_pages_in(mapping.va, nbytes)
                    total = nbytes // geometry.base_size
                    if touched > total // 2:
                        continue  # mostly live: not worth splitting
                    freed += self._demote_in_place(process, mapping)
        return freed

    def _demote_in_place(self, process, mapping: Mapping) -> int:
        """Split one huge mapping, keeping touched pages on their frames."""
        geometry = self.kernel.geometry
        base = geometry.base_size
        nbytes = geometry.bytes_for(mapping.page_size)
        keep = process.touched_base_vas_in(mapping.va, nbytes)
        process.pagetable.unmap(mapping.va, mapping.page_size)
        self._teardown(process, mapping)
        for va in keep:
            pfn = mapping.pfn + (va - mapping.va) // base
            self.kernel.buddy.alloc_at(pfn, 0)
            self._install(process, va, 0, pfn)
        process.tlb.invalidate_range(mapping.va, nbytes)
        self.stats.demoted[mapping.page_size] += 1
        freed = nbytes // base - len(keep)
        self.stats.bloat_bytes_recovered += freed * base
        tr = self._tracer
        if tr is not None and tr.active:
            tr.emit(
                "policy", "demote_in_place",
                va=mapping.va,
                size=geometry.label_for(mapping.page_size),
                frames_freed=freed,
            )
        return freed

    def _install(self, process, va: int, page_size: int, pfn: int) -> Mapping:
        """Map va -> pfn and register the block for compaction."""
        mapping = process.pagetable.map_page(va, page_size, pfn)
        order = self.kernel.geometry.order_for(page_size)
        self.kernel.rmap.register(pfn, order, process.frame_owner)
        process.frame_owner.add(pfn, va, page_size)
        return mapping

    def _teardown(self, process, mapping: Mapping) -> None:
        """Undo :meth:`_install` for one mapping and free its frames."""
        self.kernel.rmap.unregister(mapping.pfn)
        process.frame_owner.remove(mapping.pfn)
        self.kernel.buddy.free(mapping.pfn)

    def unmap_range(self, process, start: int, length: int) -> None:
        """munmap support: drop and free every mapping in the range.

        A huge mapping straddling a boundary is *split* first (Linux splits
        the compound page: the retained portion stays on the same frames,
        remapped with base pages, no copying).
        """
        end = start + length
        for boundary_va in (start, end - 1):
            mapping = process.pagetable.translate(boundary_va)
            if mapping is None:
                continue
            mbytes = self.kernel.geometry.bytes_for(mapping.page_size)
            if mapping.va < start or mapping.va + mbytes > end:
                self._split_mapping(process, mapping, start, end)
        for mapping in process.pagetable.unmap_range(start, length):
            self._teardown(process, mapping)
        process.tlb.invalidate_range(start, length)

    def _split_mapping(self, process, mapping: Mapping, cut_start: int, cut_end: int) -> None:
        """Split a huge mapping around [cut_start, cut_end).

        The portions outside the cut stay mapped with base pages pointing at
        the same physical frames; the portion inside is left unmapped for
        the caller to account as freed (its frames return to the buddy as
        part of freeing the whole block and re-claiming the retained ones).
        """
        geometry = self.kernel.geometry
        base = geometry.base_size
        mbytes = geometry.bytes_for(mapping.page_size)
        m_end = mapping.va + mbytes
        process.pagetable.unmap(mapping.va, mapping.page_size)
        self._teardown(process, mapping)
        retained = []
        if mapping.va < cut_start:
            retained.append((mapping.va, min(cut_start, m_end)))
        if m_end > cut_end:
            retained.append((max(cut_end, mapping.va), m_end))
        for lo, hi in retained:
            for va in range(lo, hi, base):
                pfn = mapping.pfn + (va - mapping.va) // base
                self.kernel.buddy.alloc_at(pfn, 0)
                self._install(process, va, 0, pfn)
        process.tlb.invalidate_range(mapping.va, mbytes)

    def _record_fault(self, latency_ns: float, page_size: int) -> float:
        self.stats.faults += 1
        self.stats.fault_ns += latency_ns
        self.stats.fault_latencies.append(latency_ns)
        self.stats.fault_mapped[page_size] += 1
        tr = self._tracer
        if tr is not None and tr.active:
            tr.emit(
                "policy", "fault_mapped",
                size=self.kernel.geometry.label_for(page_size),
                latency_ns=latency_ns,
            )
        return latency_ns

    def _map_base_fault(self, process, va: int) -> float:
        """The universal last-resort path: one base page at ``va``."""
        geometry = self.kernel.geometry
        start = geometry.align_down(va, 0)
        pfn = self._alloc_frames(0)
        if pfn is None:
            raise OutOfMemoryError("cannot allocate a base page")
        self._install(process, start, 0, pfn)
        cost = self.kernel.cost
        latency = cost.fault_fixed_ns + cost.zero_ns(geometry.base_size)
        return self._record_fault(latency, 0)
