"""The explicit-request mechanism: ``madvise(MADV_HUGEPAGE)`` and friends.

Section 2 of the paper lists three OS mechanisms for large pages:
pre-allocation (hugetlbfs), *explicit system calls* (madvise / mmap flags),
and fully transparent allocation (THP/Trident).  This module supplies the
middle one: a policy that behaves like THP-with-madvise=madvise mode —
large pages only on ranges the application explicitly marked.

It exists for completeness of the Background section's taxonomy and for
ablations: comparing Trident against an oracle that marks exactly the
TLB-hot ranges shows how much of Trident's win is "transparency reaching
ranges nobody thought to annotate" (e.g. the stack).
"""

from __future__ import annotations

import bisect

from repro.core.trident import TridentPolicy

#: madvise advice values (mirroring Linux's)
MADV_HUGEPAGE = 14
MADV_NOHUGEPAGE = 15


class MadvisePolicy(TridentPolicy):
    """All Trident mechanics, but only inside MADV_HUGEPAGE-marked ranges.

    Unmarked ranges always take base pages, at fault and at promotion time
    — exactly Linux's ``transparent_hugepage=madvise`` mode, extended to
    1GB the way Trident extends THP.
    """

    name = "Trident-madvise"

    def __init__(self, kernel, **kwargs) -> None:
        super().__init__(kernel, **kwargs)
        # pid -> sorted list of (start, end) advised ranges
        self._advised: dict[int, list[tuple[int, int]]] = {}

    # -- the syscall ---------------------------------------------------------
    def sys_madvise(self, process, addr: int, length: int, advice: int) -> None:
        """Mark or unmark [addr, addr+length) for huge-page use."""
        if advice not in (MADV_HUGEPAGE, MADV_NOHUGEPAGE):
            raise ValueError(f"unsupported madvise advice {advice}")
        ranges = self._advised.setdefault(process.pid, [])
        if advice == MADV_HUGEPAGE:
            bisect.insort(ranges, (addr, addr + length))
            self._coalesce(ranges)
        else:
            self._advised[process.pid] = [
                r for r in ranges if r[1] <= addr or r[0] >= addr + length
            ]

    @staticmethod
    def _coalesce(ranges: list[tuple[int, int]]) -> None:
        merged: list[tuple[int, int]] = []
        for start, end in ranges:
            if merged and start <= merged[-1][1]:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        ranges[:] = merged

    def is_advised(self, process, va: int, nbytes: int = 1) -> bool:
        """True if [va, va+nbytes) lies entirely inside an advised range."""
        ranges = self._advised.get(process.pid, ())
        for start, end in ranges:
            if start <= va and va + nbytes <= end:
                return True
        return False

    # -- policy gates ----------------------------------------------------------
    def handle_fault(self, process, va: int) -> float:
        if not self.is_advised(process, va):
            return self._map_base_fault(process, va)
        return super().handle_fault(process, va)

    def _slot_contents(self, process, va: int, page_size: int):
        nbytes = self.kernel.geometry.bytes_for(page_size)
        if not self.is_advised(process, va, nbytes):
            return None
        return super()._slot_contents(process, va, page_size)
