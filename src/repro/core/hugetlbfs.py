"""libHugetlbfs-style static large-page reservation.

The ``2MB-Hugetlbfs`` and ``1GB-Hugetlbfs`` bars of Figure 1: the user
reserves physical memory for one large page size at boot, and a helper
library backs the application's *data segments* with huge pages from the
reserved pool.  Three real libhugetlbfs behaviours the paper leans on:

* reservation happens up front and under-delivers when memory is
  fragmented (Section 7, "Comparison with static allocation");
* only eligible segments (heap/data) are backed — the stack cannot be,
  which is why Redis/GUPS fare better under THP/Trident (Figure 1);
* the ``morecore`` heap is backed by huge pages from the first byte: a
  fault maps the whole aligned huge slot even where the heap has not grown
  that far yet (rounding bloat), and freeing a piece of the heap does not
  return partially-covered huge pages.
"""

from __future__ import annotations

from repro.core.policy import MemoryPolicy
from repro.vm.fault import region_is_unmapped

#: VMA kinds libhugetlbfs can back with large pages.
ELIGIBLE_KINDS = ("heap", "data", "bss")


class HugetlbfsPolicy(MemoryPolicy):
    """Static pre-reservation of one large page size."""

    def __init__(self, kernel, page_size: int, reserve_fraction: float = 0.65):
        """Reserve ``reserve_fraction`` of currently-free memory at boot.

        ``page_size`` is the one large size this configuration uses —
        any non-base level of the machine's geometry.
        """
        super().__init__(kernel)
        if not 0 < page_size <= kernel.geometry.top_level:
            raise ValueError(
                "hugetlbfs reserves a non-base geometry level only"
            )
        self.page_size = page_size
        self.reserve_fraction = reserve_fraction
        self.name = f"{kernel.geometry.label_for(page_size)}-Hugetlbfs"
        self._pool: list[int] = []
        self._huge_pfns: set[int] = set()
        self.reserve_failures = 0

    def on_boot(self) -> None:
        """Pre-allocate the pool; under fragmentation this under-delivers."""
        geometry = self.kernel.geometry
        order = geometry.order_for(self.page_size)
        want = int(self.kernel.buddy.free_frames * self.reserve_fraction) >> order
        for _ in range(want):
            pfn = self.kernel.buddy.try_alloc(order, movable=False)
            if pfn is None:
                self.reserve_failures += 1
                break
            self._pool.append(pfn)

    @property
    def reserved_pages(self) -> int:
        return len(self._pool)

    def handle_fault(self, process, va: int) -> float:
        vma = process.aspace.find_vma(va)
        if vma is None:
            raise ValueError(f"fault at unmapped va {va:#x} (no VMA)")
        geometry = self.kernel.geometry
        if vma.name in ELIGIBLE_KINDS and self._pool:
            # morecore semantics: back the whole aligned slot containing the
            # fault, even if the heap has not grown to its end yet.
            start = geometry.align_down(va, self.page_size)
            extent = process.aspace.extent_of(va)
            if start >= geometry.align_down(extent.start, self.page_size) and (
                region_is_unmapped(va, self.page_size, process.pagetable, geometry)
            ):
                pfn = self._pool.pop()
                # Reserved pages are not rmap-registered: hugetlb pages are
                # not migratable by compaction.
                process.pagetable.map_page(start, self.page_size, pfn)
                process.frame_owner.add(pfn, start, self.page_size)
                self._huge_pfns.add(pfn)
                cost = self.kernel.cost
                latency = cost.fault_fixed_ns + cost.zero_ns(
                    geometry.bytes_for(self.page_size)
                )
                return self._record_fault(latency, self.page_size)
        return self._map_base_fault(process, va)

    def unmap_range(self, process, start: int, length: int) -> None:
        """Fully-covered pooled pages return to the pool; straddlers stay.

        Freeing part of a hugetlbfs-backed heap does not split huge pages;
        the mapping survives until the covering slot is entirely unmapped.
        """
        for mapping in process.pagetable.unmap_range(start, length, strict=False):
            if mapping.pfn in self._huge_pfns:
                self._huge_pfns.remove(mapping.pfn)
                process.frame_owner.remove(mapping.pfn)
                self._pool.append(mapping.pfn)
            else:
                self._teardown(process, mapping)
        process.tlb.invalidate_range(start, length)
