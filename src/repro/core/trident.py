"""Trident: transparent dynamic allocation of all three page sizes.

The paper's core contribution (Section 5).  Four changes over THP, matching
the four kernel modifications:

1. the buddy allocator already tracks free chunks up to the large order
   (:mod:`repro.mem.buddy` is constructed that way by the system);
2. the page-fault handler tries a 1GB page first (taking a pre-zeroed block
   from the async zero-fill pool when available — 2.7 ms instead of 400 ms),
   falling back to 2MB, then 4KB;
3. khugepaged additionally scans for 1GB-mappable ranges mapped with smaller
   pages and promotes them, per the Figure 5 flowchart — and when a 1GB
   chunk cannot be produced, falls back to promoting the range's 2MB
   sub-slots so TLB resources are never left idle;
4. 1GB chunks are created by *smart compaction* rather than Linux's
   sequential scan.

Ablations used in Figure 11 are flags: ``use_mid=False`` gives
Trident-1Gonly, ``smart_compaction=False`` gives Trident-NC.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator

from repro.core.thp import THPPolicy
from repro.vm.fault import candidate_page_sizes
from repro.vm.mappability import mappable_ranges


class TridentPolicy(THPPolicy):
    """All-page-size policy: 1GB preferred, 2MB fallback, 4KB last."""

    name = "Trident"
    #: fraction of each daemon tick handed to the async zero-fill thread
    zerofill_budget_fraction = 0.3

    def __init__(
        self,
        kernel,
        use_mid: bool = True,
        smart_compaction: bool = True,
        promote: bool = True,
    ) -> None:
        super().__init__(kernel)
        self.use_mid = use_mid
        self.smart_compaction = smart_compaction
        self.promote = promote
        if not promote:
            self.name = "Trident-PFonly"
        elif not use_mid:
            self.name = "Trident-1Gonly"
        elif not smart_compaction:
            self.name = "Trident-NC"

    # -- page-fault handler ------------------------------------------------
    def handle_fault(self, process, va: int) -> float:
        vma = process.aspace.find_vma(va)
        if vma is None:
            raise ValueError(f"fault at unmapped va {va:#x} (no VMA)")
        geometry = self.kernel.geometry
        extent = process.aspace.extent_of(va)
        sizes = candidate_page_sizes(va, extent, process.pagetable, geometry)
        top = geometry.top_level
        if top in sizes:
            latency = self._try_large_fault(process, va)
            if latency is not None:
                return latency
        if self.use_mid:
            # Intermediate levels, largest first (candidate_page_sizes
            # yields them descending); base is the universal fallback.
            for size in sizes:
                if size == top or size == 0:
                    continue
                latency = self._try_fault_map(process, va, size)
                if latency is not None:
                    return latency
        return self._map_base_fault(process, va)

    def _try_large_fault(self, process, va: int) -> float | None:
        geometry = self.kernel.geometry
        self.stats.fault_large_attempts += 1
        used_pool = True
        pfn = self.kernel.zerofill.take_zeroed()
        if pfn is None:
            used_pool = False
            pfn = self.kernel.buddy.try_alloc(geometry.large_order)
        if pfn is None:
            # Page faults never compact (that would stall the application);
            # khugepaged will promote this range later if memory allows.
            self.stats.fault_large_failures += 1
            tr = self._tracer
            if tr is not None and tr.active:
                tr.emit(
                    "policy", "large_fault_fallback", va=va,
                    reason="no_contiguous_block",
                )
            return None
        top = geometry.top_level
        start = geometry.align_down(va, top)
        self._install(process, start, top, pfn)
        latency = self.kernel.zerofill.fault_ns(top, used_pool)
        # kzerofilld runs on another core: the wall time this fault takes,
        # plus the time the application spends initializing the region
        # before touching the next one (~ writing one large page), is time
        # it spends pre-zeroing the next block for the pool.
        self.kernel.zerofill.background_fill(
            latency + 0.5 * self.kernel.cost.zero_ns(geometry.large_size),
            concurrent=True,
        )
        return self._record_fault(latency, top)

    # -- extended khugepaged (Figure 5) ---------------------------------------
    def background_tick(self, budget_ns: float) -> float:
        zf_budget = budget_ns * self.zerofill_budget_fraction
        used = self.kernel.zerofill.background_fill(zf_budget)
        if self.promote:
            used += super().background_tick(budget_ns - used)
        else:
            self.stats.daemon_ns += used
        return used

    def _candidate_stream(self) -> Iterator[tuple]:
        """Figure 5 scan order: top-level slots first, then each lower
        level's leftover slots outside the next level up's interior."""
        geometry = self.kernel.geometry
        top = geometry.top_level
        for process in list(self.kernel.processes):
            for vma in process.aspace.iter_extents():
                for start, _ in mappable_ranges(vma, top, geometry):
                    yield process, start, top
                if not self.use_mid:
                    continue
                for level in range(top - 1, 0, -1):
                    # Slots outside the (level+1)-mappable interior — the
                    # interiors nest, so checking one level up suffices.
                    # The covering slots are sorted and disjoint, so one
                    # bisect per slot replaces the O(n x m) linear overlap
                    # scan — many-VMA address spaces keep khugepaged's
                    # pass linear overall.
                    covered = list(mappable_ranges(vma, level + 1, geometry))
                    starts = [s for s, _ in covered]
                    for start, _ in mappable_ranges(vma, level, geometry):
                        i = bisect_right(starts, start) - 1
                        inside = i >= 0 and start < covered[i][1]
                        if not inside:
                            yield process, start, level

    def _try_promote(
        self, process, va: int, page_size: int, budget_ns: float = float("inf")
    ) -> float:
        top = self.kernel.geometry.top_level
        if page_size != top:
            return super()._try_promote(process, va, page_size, budget_ns)
        present = self._slot_contents(process, va, top)
        if present is None:
            return 0.0
        self.stats.promo_large_attempts += 1
        pfn, spent = self._alloc_large_for_promotion(budget_ns)
        if pfn is not None:
            return spent + self._promote(process, va, top, pfn, present)
        self.stats.promo_large_failures += 1
        tr = self._tracer
        if tr is not None and tr.active:
            # The Figure 5 decision point: no 1GB chunk could be produced,
            # fall back to the slot's 2MB sub-ranges (or give up).
            tr.emit(
                "policy", "promo_large_fallback", va=va,
                to_mid=self.use_mid, spent_ns=spent,
            )
        if not self.use_mid:
            return spent
        # Figure 5 fallback: promote the slot's sub-ranges at the next
        # level down instead, so TLB resources are never left idle.
        geometry = self.kernel.geometry
        sub = top - 1
        for sub_va in range(
            va, va + geometry.bytes_for(top), geometry.bytes_for(sub)
        ):
            spent += super()._try_promote(
                process, sub_va, sub, budget_ns - spent
            )
        return spent

    def _alloc_large_for_promotion(
        self, budget_ns: float = float("inf")
    ) -> tuple[int | None, float]:
        """1GB chunk for promotion: pool, buddy, then (smart) compaction."""
        pfn = self.kernel.zerofill.take_zeroed()
        if pfn is not None:
            return pfn, 0.0
        order = self.kernel.geometry.large_order
        pfn = self.kernel.buddy.try_alloc(order)
        if pfn is not None:
            return pfn, 0.0
        compactor = (
            self.kernel.smart_compactor
            if self.smart_compaction
            else self.kernel.normal_compactor
        )
        result = compactor.compact(order, budget_ns)
        if not result.success and result.time_ns < budget_ns:
            # Reclaim-then-retry, as Linux's reclaim/compaction loop does:
            # page cache comes back as scattered free frames the compactor
            # can move occupied pages into.
            if self.kernel.reclaim(2 << order):
                retry = compactor.compact(order, budget_ns - result.time_ns)
                result.merge(retry)
        pfn = self.kernel.buddy.try_alloc(order) if result.success else None
        return pfn, result.time_ns
