"""Linux Transparent Huge Pages: 2MB-only dynamic large pages.

The paper's baseline (``2MB-THP``).  Two mechanisms, as in Section 2:

* the page-fault handler maps a mid (2MB) page when the faulting address
  falls in a mid-mappable, unmapped range and a contiguous chunk is free;
* the ``khugepaged`` daemon scans process address spaces in the background
  and *promotes* mid-mappable ranges currently mapped with base pages,
  compacting physical memory (normal, sequential compaction) when no free
  chunk exists.

Like real THP (``max_ptes_none = 511``), promotion proceeds as soon as a
single base page is present in the range — the source of THP's well-known
memory bloat, which this simulation reproduces and HawkEye's recovery
removes.

The promotion scanner here is deliberately reusable: Trident subclasses this
policy and extends the same daemon with 1GB scanning (exactly how the real
Trident extends khugepaged).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.policy import MemoryPolicy
from repro.vm.fault import candidate_page_sizes, region_fits_vma
from repro.vm.mappability import mappable_ranges
from repro.vm.pagetable import Mapping


class THPPolicy(MemoryPolicy):
    """2MB-only transparent huge pages with khugepaged promotion."""

    name = "2MB-THP"
    #: ns charged per candidate slot examined by the scanner
    scan_slot_ns = 400.0
    #: minimum fraction of a slot that must be populated before promotion
    #: (0.0 reproduces THP's max_ptes_none=511: one page is enough)
    min_present_fraction_mid = 0.0
    #: transparent_hugepage/defrag: "defer" (default here and in modern
    #: Linux) never stalls a fault on compaction; "always" compacts
    #: synchronously inside the fault - the allocation-latency-spike
    #: behaviour Ingens/Quicksilver criticize
    defrag = "defer"

    def __init__(self, kernel, defrag: str | None = None) -> None:
        super().__init__(kernel)
        if defrag is not None:
            if defrag not in ("defer", "always"):
                raise ValueError(f"unknown defrag mode {defrag!r}")
            self.defrag = defrag
        self._stream: Iterator | None = None
        #: CPU time overdrawn from previous ticks (a promotion or compaction
        #: can overshoot one quantum; a capped khugepaged must repay it
        #: before doing more work - how cgroup CPU caps behave)
        self._debt_ns = 0.0

    # -- page-fault handler ---------------------------------------------------
    def handle_fault(self, process, va: int) -> float:
        vma = process.aspace.find_vma(va)
        if vma is None:
            raise ValueError(f"fault at unmapped va {va:#x} (no VMA)")
        geometry = self.kernel.geometry
        extent = process.aspace.extent_of(va)
        sizes = candidate_page_sizes(va, extent, process.pagetable, geometry)
        thp = geometry.thp_level
        if thp in sizes:
            latency = self._try_fault_map(process, va, thp)
            if latency is not None:
                return latency
        return self._map_base_fault(process, va)

    def _try_fault_map(self, process, va: int, page_size: int) -> float | None:
        geometry = self.kernel.geometry
        pfn = self.kernel.buddy.try_alloc(geometry.order_for(page_size))
        sync_compaction_ns = 0.0
        if pfn is None and self.defrag == "always":
            # Synchronous fault-time compaction: the faulting thread stalls.
            result = self.kernel.normal_compactor.compact(
                geometry.order_for(page_size)
            )
            sync_compaction_ns = result.time_ns
            if result.success:
                pfn = self.kernel.buddy.try_alloc(geometry.order_for(page_size))
        if pfn is None:
            if sync_compaction_ns:
                self.stats.fault_ns += sync_compaction_ns  # stalled for nothing
            return None
        start = geometry.align_down(va, page_size)
        self._install(process, start, page_size, pfn)
        cost = self.kernel.cost
        latency = (
            cost.fault_fixed_ns
            + cost.zero_ns(geometry.bytes_for(page_size))
            + sync_compaction_ns
        )
        return self._record_fault(latency, page_size)

    # -- khugepaged -------------------------------------------------------------
    def background_tick(self, budget_ns: float) -> float:
        budget_ns -= self._debt_ns
        if budget_ns <= 0:
            self._debt_ns = -budget_ns
            return 0.0
        self._debt_ns = 0.0
        used = 0.0
        while used < budget_ns:
            candidate = self._next_candidate()
            if candidate is None:
                break
            used += self.scan_slot_ns
            process, va, size = candidate
            used += self._try_promote(process, va, size, budget_ns - used)
        if used > budget_ns:
            self._debt_ns = used - budget_ns
        self.stats.daemon_ns += used
        return used

    def _next_candidate(self) -> tuple | None:
        """Next (process, va, size) from the scan stream; None ends the tick."""
        if self._stream is None:
            self._stream = self._candidate_stream()
        try:
            return next(self._stream)
        except StopIteration:
            self._stream = None  # full pass complete; resume next tick
            return None

    def _candidate_stream(self) -> Iterator[tuple]:
        """One full scanning pass over every process's address space."""
        thp = self.kernel.geometry.thp_level
        for process in list(self.kernel.processes):
            for vma in process.aspace.iter_extents():
                for start, _ in mappable_ranges(
                    vma, thp, self.kernel.geometry
                ):
                    yield process, start, thp

    # -- promotion mechanics (shared with subclasses) ---------------------------
    def _slot_contents(
        self, process, va: int, page_size: int
    ) -> list[Mapping] | None:
        """Smaller mappings inside the slot, or None if not promotable.

        Revalidates everything (the candidate may be stale): the slot must
        still sit inside a VMA, must not already contain a >= ``page_size``
        mapping, and must have at least one present page.
        """
        geometry = self.kernel.geometry
        table = process.pagetable
        # Cheapest rejection first: in steady state most candidates are
        # already promoted, and translate() is one dict probe vs the VMA
        # walk below.
        covering = table.translate(va)
        if covering is not None and covering.page_size >= page_size:
            return None
        vma = process.aspace.extent_of(va)
        if vma is None or not region_fits_vma(va, page_size, vma, geometry):
            return None
        nbytes = geometry.bytes_for(page_size)
        present: list[Mapping] = []
        for size in range(page_size):
            present.extend(table.mappings_in_range(va, nbytes, size))
        if not present:
            return None
        min_fraction = (
            self.min_present_fraction_mid
            if page_size == geometry.thp_level
            else 0.0
        )
        present_bytes = sum(geometry.bytes_for(m.page_size) for m in present)
        if present_bytes < min_fraction * nbytes:
            return None
        return present

    def _try_promote(
        self, process, va: int, page_size: int, budget_ns: float = float("inf")
    ) -> float:
        """Attempt one promotion; returns daemon ns spent (scan + copy)."""
        present = self._slot_contents(process, va, page_size)
        if present is None:
            return 0.0
        pfn, alloc_ns = self._alloc_for_promotion(page_size, budget_ns)
        if pfn is None:
            return alloc_ns
        return alloc_ns + self._promote(process, va, page_size, pfn, present)

    def _alloc_for_promotion(
        self, page_size: int, budget_ns: float = float("inf")
    ) -> tuple[int | None, float]:
        """Get a contiguous block for promotion, compacting if needed.

        THP uses normal compaction for 2MB chunks.  Returns (pfn, ns spent).
        """
        order = self.kernel.geometry.order_for(page_size)
        pfn = self.kernel.buddy.try_alloc(order)
        if pfn is not None:
            return pfn, 0.0
        result = self.kernel.normal_compactor.compact(order, budget_ns)
        if not result.success and result.time_ns < budget_ns:
            # Linux interleaves reclaim with compaction: drop page cache to
            # give the compactor free slots to move pages into, then retry.
            if self.kernel.reclaim(2 << order):
                retry = self.kernel.normal_compactor.compact(
                    order, budget_ns - result.time_ns
                )
                result.merge(retry)
        pfn = self.kernel.buddy.try_alloc(order) if result.success else None
        return pfn, result.time_ns

    def _promote(
        self, process, va: int, page_size: int, pfn: int, present: list[Mapping]
    ) -> float:
        """Replace ``present`` small mappings with one ``page_size`` mapping.

        Copies the present contents into the new block, zeroes the rest,
        frees the old frames and shoots down the TLB.  Returns ns of work.
        """
        geometry = self.kernel.geometry
        cost = self.kernel.cost
        nbytes = geometry.bytes_for(page_size)
        present_bytes = sum(geometry.bytes_for(m.page_size) for m in present)
        for mapping in present:
            process.pagetable.unmap(mapping.va, mapping.page_size)
            self._teardown(process, mapping)
        self._install(process, va, page_size, pfn)
        process.tlb.invalidate_range(va, nbytes)
        self.stats.promoted[page_size] += 1
        self.stats.promo_copy_bytes += present_bytes
        tr = self._tracer
        if tr is not None and tr.active:
            tr.emit(
                "policy", "promote", va=va,
                size=geometry.label_for(page_size),
                copied_bytes=present_bytes, small_mappings=len(present),
            )
        return (
            cost.copy_ns(present_bytes)
            + cost.zero_ns(nbytes - present_bytes)
            + cost.pte_update_ns * (len(present) + 1)
        )
