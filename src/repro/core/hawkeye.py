"""HawkEye (ASPLOS '19): fine-grained, TLB-miss-aware 2MB page management.

The paper's academic state-of-the-art baseline.  Differences from THP that
matter to the evaluation:

* **access-coverage-ordered promotion** — a ``kbinmanager`` thread samples
  page-table access bits to estimate which 2MB-mappable regions actually
  suffer TLB pressure, and khugepaged promotes the hottest regions first
  (THP scans sequentially);
* **bloat recovery** — regions that were promoted but are mostly untouched
  are demoted back to base pages, with only the touched pages rematerialised
  (HawkEye's zero-page dedup);
* **CPU overhead** — kbinmanager's access-bit scans consume daemon budget
  and contend with promotion; under fragmentation this is why HawkEye can
  trail plain THP for Redis/Memcached in Figure 10.

HawkEye remains a 2MB-only system: it never allocates 1GB pages.
"""

from __future__ import annotations

from typing import Iterator

from repro.core.thp import THPPolicy
from repro.vm.mappability import mappable_ranges


class HawkEyePolicy(THPPolicy):
    """THP with access-bit-guided promotion ordering and bloat recovery."""

    name = "HawkEye"
    #: ns charged per present mapping whose access bit kbinmanager samples
    access_sample_ns = 120.0
    #: mid mappings touched below this fraction get demoted (bloat recovery)
    bloat_demote_threshold = 0.20
    #: fraction of each tick reserved for kbinmanager + bloat recovery
    manager_budget_fraction = 0.35

    def __init__(self, kernel, bloat_recovery: bool = True) -> None:
        super().__init__(kernel)
        self.bloat_recovery = bloat_recovery
        self._heat: dict[tuple[int, int], int] = {}  # (pid, va) -> heat
        #: slots demoted by bloat recovery; khugepaged skips them until the
        #: access sampler observes them hot again
        self._demoted_slots: set[tuple[int, int]] = set()

    # -- daemon: kbinmanager then prioritized khugepaged -----------------------
    def background_tick(self, budget_ns: float) -> float:
        manager_budget = budget_ns * self.manager_budget_fraction
        used = self._kbinmanager_tick(manager_budget)
        if self.bloat_recovery and used < manager_budget:
            used += self._bloat_recovery_tick(manager_budget - used)
        used += super().background_tick(budget_ns - used)
        return used

    def _kbinmanager_tick(self, budget_ns: float) -> float:
        """Sample access bits to build per-slot heat bins."""
        used = 0.0
        geometry = self.kernel.geometry
        for process in list(self.kernel.processes):
            if used >= budget_ns:
                break
            accessed = 0
            for mapping in process.pagetable.iter_mappings():
                used += self.access_sample_ns
                if mapping.accessed and mapping.page_size == 0:
                    slot = geometry.align_down(
                        mapping.va, geometry.thp_level
                    )
                    key = (process.pid, slot)
                    self._heat[key] = self._heat.get(key, 0) + 1
                    accessed += 1
                mapping.accessed = False
                if used >= budget_ns:
                    break
        self.stats.daemon_ns += used
        return used

    def _candidate_stream(self) -> Iterator[tuple]:
        """Hottest THP-level slots first, then the sequential remainder."""
        geometry = self.kernel.geometry
        thp = geometry.thp_level
        by_pid = {p.pid: p for p in self.kernel.processes}
        ranked = sorted(self._heat.items(), key=lambda kv: -kv[1])
        seen: set[tuple[int, int]] = set()
        for (pid, va), _ in ranked:
            process = by_pid.get(pid)
            if process is not None:
                seen.add((pid, va))
                self._demoted_slots.discard((pid, va))  # hot again: eligible
                yield process, va, thp
        # Heat decays each pass so stale hot spots fade.
        self._heat = {k: v // 2 for k, v in self._heat.items() if v > 1}
        for process in list(self.kernel.processes):
            for vma in process.aspace.iter_extents():
                for start, _ in mappable_ranges(vma, thp, geometry):
                    key = (process.pid, start)
                    if key not in seen and key not in self._demoted_slots:
                        yield process, start, thp

    # -- bloat recovery ----------------------------------------------------------
    def _bloat_recovery_tick(self, budget_ns: float) -> float:
        """Demote mostly-untouched mid pages; rematerialise touched 4KB only."""
        used = 0.0
        geometry = self.kernel.geometry
        thp = geometry.thp_level
        mid_bytes = geometry.bytes_for(thp)
        base_per_mid = geometry.frames_for(thp)
        for process in list(self.kernel.processes):
            if used >= budget_ns:
                break
            victims = []
            for mapping in list(process.pagetable.iter_mappings(thp)):
                used += self.access_sample_ns
                touched = process.touched_base_pages_in(mapping.va, mid_bytes)
                if touched / base_per_mid < self.bloat_demote_threshold:
                    victims.append((mapping, touched))
                if used >= budget_ns:
                    break
            for mapping, touched in victims:
                used += self._demote(process, mapping)
                slot = geometry.align_down(mapping.va, thp)
                self._demoted_slots.add((process.pid, slot))
        self.stats.daemon_ns += used
        return used

    def _demote(self, process, mapping) -> float:
        """Split one mid mapping into base pages for touched addresses only."""
        geometry = self.kernel.geometry
        cost = self.kernel.cost
        thp = geometry.thp_level
        thp_bytes = geometry.bytes_for(thp)
        va = mapping.va
        process.pagetable.unmap(va, thp)
        self._teardown(process, mapping)
        spent = cost.pte_update_ns
        copied = 0
        for page_va in process.touched_base_vas_in(va, thp_bytes):
            pfn = self._alloc_frames(0)
            if pfn is None:
                break
            self._install(process, page_va, 0, pfn)
            copied += geometry.base_size
            spent += cost.pte_update_ns
        spent += cost.copy_ns(copied)
        process.tlb.invalidate_range(va, thp_bytes)
        self.stats.demoted[thp] += 1
        self.stats.bloat_bytes_recovered += thp_bytes - copied
        return spent
