"""OS memory-management policies: the paper's contribution and its baselines.

* :mod:`repro.core.rmap` — reverse mapping (who owns each physical block),
  required by compaction to relocate pages.
* :mod:`repro.core.compaction` — Linux's sequential-scan ("normal")
  compaction and Trident's counter-guided smart compaction.
* :mod:`repro.core.policy` — the policy interface shared by all managers.
* Policies: 4KB-only baseline, THP (2MB), libHugetlbfs-style static
  reservation, HawkEye, and Trident with its ablations (1G-only, normal
  compaction).
"""

from repro.core.rmap import ReverseMap, FrameOwner
from repro.core.compaction import (
    CompactionResult,
    NormalCompactor,
    SmartCompactor,
)
from repro.core.policy import MemoryPolicy, PolicyStats
from repro.core.baseline4k import Baseline4KPolicy
from repro.core.thp import THPPolicy
from repro.core.hugetlbfs import HugetlbfsPolicy
from repro.core.hawkeye import HawkEyePolicy
from repro.core.ingens import IngensPolicy
from repro.core.madvise import MadvisePolicy
from repro.core.trident import TridentPolicy

__all__ = [
    "ReverseMap",
    "FrameOwner",
    "CompactionResult",
    "NormalCompactor",
    "SmartCompactor",
    "MemoryPolicy",
    "PolicyStats",
    "Baseline4KPolicy",
    "THPPolicy",
    "HugetlbfsPolicy",
    "HawkEyePolicy",
    "IngensPolicy",
    "MadvisePolicy",
    "TridentPolicy",
]
