"""Physical-memory compaction: Linux's sequential scan vs Trident's smart pick.

Figure 6 of the paper.  Both engines move movable allocations out of a
source region into free slots elsewhere until a free block of the requested
order exists:

* :class:`NormalCompactor` — Linux ``khugepaged``-style: scan regions
  sequentially from a persistent cursor, copying occupied frames toward the
  high end of memory.  It is *occupancy-agnostic* (may pick a 99%-full
  region) and discovers unmovable pages only mid-copy, wasting the bytes
  already copied for that region.
* :class:`SmartCompactor` — Trident: pick the region with the most free
  frames and no unmovable pages as the source (cheapest to evacuate), and
  the fullest regions as targets.  Selection uses the O(1) per-region
  counters of :class:`repro.mem.regions.RegionTracker`; nothing is scanned
  or copied unless the evacuation can pay off.

Both report bytes copied — the metric Figure 7 compares (up to 85% less
copying for smart compaction).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import CostModel, PageGeometry
from repro.core.rmap import ReverseMap
from repro.mem.buddy import BuddyAllocator
from repro.mem.frames import FrameState
from repro.mem.regions import RegionTracker


@dataclass
class CompactionResult:
    """Outcome and cost accounting of one compaction attempt."""

    success: bool
    bytes_copied: int = 0
    bytes_exchanged: int = 0  # moved via the pv hypercall, not copied
    wasted_bytes: int = 0  # copied for a region that was then abandoned
    frames_scanned: int = 0
    blocks_moved: int = 0
    regions_freed: int = 0
    time_ns: float = 0.0

    def merge(self, other: "CompactionResult") -> None:
        self.success = self.success or other.success
        self.bytes_copied += other.bytes_copied
        self.bytes_exchanged += other.bytes_exchanged
        self.wasted_bytes += other.wasted_bytes
        self.frames_scanned += other.frames_scanned
        self.blocks_moved += other.blocks_moved
        self.regions_freed += other.regions_freed
        self.time_ns += other.time_ns


@dataclass
class CompactionStats:
    """Cumulative counters across a compactor's lifetime."""

    attempts: int = 0
    successes: int = 0
    bytes_copied: int = 0
    bytes_exchanged: int = 0
    wasted_bytes: int = 0
    frames_scanned: int = 0
    blocks_moved: int = 0
    time_ns: float = 0.0

    def record(self, result: CompactionResult) -> None:
        self.attempts += 1
        self.successes += int(result.success)
        self.bytes_copied += result.bytes_copied
        self.bytes_exchanged += result.bytes_exchanged
        self.wasted_bytes += result.wasted_bytes
        self.frames_scanned += result.frames_scanned
        self.blocks_moved += result.blocks_moved
        self.time_ns += result.time_ns


class _CompactorBase:
    """Shared mechanics: find a destination slot and migrate a block."""

    #: metrics label distinguishing the two engines ("normal" / "smart")
    kind = "abstract"

    def __init__(
        self,
        buddy: BuddyAllocator,
        regions: RegionTracker,
        rmap: ReverseMap,
        geometry: PageGeometry,
        cost: CostModel,
        obs=None,
    ) -> None:
        self.buddy = buddy
        self.regions = regions
        self.rmap = rmap
        self.geometry = geometry
        self.cost = cost
        self.stats = CompactionStats()
        #: Trident-pv hook: callable(src_pfn, dst_pfn, order) -> ns that
        #: exchanges gPA->hPA mappings instead of copying; None natively.
        #: Only mid-or-larger blocks use it (exchanging 4KB pages costs more
        #: than copying them - the paper's Section 6 scope note).
        self.pv_exchanger = None
        self._metrics = None
        self._tracer = None
        self._clock = None
        self._spans = None
        self._c_attempt = None
        if obs is not None:
            m = obs.metrics
            self._metrics = m
            self._tracer = obs.tracer
            self._clock = getattr(obs, "clock", None)
            self._spans = getattr(obs, "spans", None)
            kind = self.kind
            self._c_attempt = m.counter("compaction_attempt_total", kind=kind)
            self._c_success = m.counter("compaction_success_total", kind=kind)
            self._c_copied = m.counter("compaction_bytes_copied_total", kind=kind)
            self._c_exchanged = m.counter(
                "compaction_bytes_exchanged_total", kind=kind
            )
            self._c_wasted = m.counter("compaction_wasted_bytes_total", kind=kind)
            self._c_moved = m.counter("compaction_blocks_moved_total", kind=kind)
            self._c_freed = m.counter("compaction_regions_freed_total", kind=kind)

    def compact(self, order: int, *args, **kwargs) -> CompactionResult:
        """Public entry point: run the engine inside a ``compaction`` span.

        The attempt's accrued ``time_ns`` is charged to the simulated
        clock here, minus whatever leaf sites (pv exchanges) already
        advanced inside — so nested work is never double counted and the
        span's duration equals the attempt's accounted cost exactly.
        """
        clock = self._clock
        if clock is None:
            return self._compact(order, *args, **kwargs)
        start = clock.now_ns
        with self._spans.span(
            "compaction", compactor=self.kind, order=order
        ) as sp:
            result = self._compact(order, *args, **kwargs)
            residual = result.time_ns - (clock.now_ns - start)
            if residual > 0.0:
                clock.advance(residual)
            sp.set(success=result.success)
        return result

    def _record(self, result: CompactionResult) -> None:
        """Fold one attempt into lifetime stats and the metrics registry."""
        self.stats.record(result)
        if self._c_attempt is not None:
            self._c_attempt.inc()
            self._c_success.inc(int(result.success))
            self._c_copied.inc(result.bytes_copied)
            self._c_exchanged.inc(result.bytes_exchanged)
            self._c_wasted.inc(result.wasted_bytes)
            self._c_moved.inc(result.blocks_moved)
            self._c_freed.inc(result.regions_freed)
            tr = self._tracer
            if tr.active:
                tr.emit(
                    "compaction",
                    "attempt",
                    kind=self.kind,
                    success=result.success,
                    bytes_copied=result.bytes_copied,
                    blocks_moved=result.blocks_moved,
                    regions_freed=result.regions_freed,
                    time_ns=result.time_ns,
                )

    def _abort(self, region: int, reason: str) -> None:
        """Account one abandoned evacuation (Figure 6's wasted-work cases)."""
        if self._metrics is not None:
            self._metrics.counter(
                "compaction_abort_total", kind=self.kind, reason=reason
            ).inc()
            tr = self._tracer
            if tr.active:
                tr.emit(
                    "compaction", "abort", kind=self.kind, region=region,
                    reason=reason,
                )

    # -- destination search ------------------------------------------------
    def _find_free_slot(self, region: int, order: int) -> int | None:
        """Lowest free ``order``-aligned slot inside ``region``, or None."""
        if self.regions.free_frames[region] < (1 << order):
            return None
        start = self.regions.region_start(region)
        fpl = self.regions.frames_per_region
        state = self.buddy.frame_state[start : start + fpl]
        free = state == FrameState.FREE
        step = 1 << order
        if step == 1:
            idx = int(np.argmax(free))
            return start + idx if free[idx] else None
        rows = free.reshape(-1, step).all(axis=1)
        hit = int(np.argmax(rows))
        if not rows[hit]:
            return None
        return start + hit * step

    def _place_in_targets(
        self, order: int, target_regions: list[int]
    ) -> int | None:
        for region in target_regions:
            slot = self._find_free_slot(region, order)
            if slot is not None:
                return slot
        return None

    # -- migration ------------------------------------------------------------
    def _migrate(
        self, pfn: int, order: int, dest: int, movable: bool
    ) -> tuple[int, int, float]:
        """Move the block at ``pfn`` to ``dest``.

        Returns (bytes_copied, bytes_exchanged, ns): a native move copies
        the block's contents; with a pv exchanger installed, mid-or-larger
        blocks move by exchanging gPA->hPA mappings instead.
        """
        nbytes = (1 << order) * self.geometry.base_size
        if self.pv_exchanger is not None and order >= self.geometry.mid_order:
            ns = self.pv_exchanger(pfn, dest, order)
            copied, exchanged = 0, nbytes
        else:
            ns = self.cost.copy_ns(nbytes)
            copied, exchanged = nbytes, 0
        self.buddy.alloc_at(dest, order, movable=movable)
        self.rmap.moved(pfn, dest)
        self.buddy.free(pfn)
        tr = self._tracer
        if tr is not None and tr.active:
            tr.emit(
                "compaction", "migrate", kind=self.kind, src=pfn, dst=dest,
                order=order, exchanged=bool(exchanged),
            )
        return copied, exchanged, ns

    def _blocks_in_region(self, region: int) -> list[tuple[int, int, bool]]:
        """(start_pfn, order, movable) of allocations inside ``region``."""
        start = self.regions.region_start(region)
        end = start + self.regions.frames_per_region
        blocks = []
        pfn = start
        state = self.buddy.frame_state
        while pfn < end:
            if state[pfn] == FrameState.FREE:
                pfn += 1
                continue
            rec = self.buddy.allocation_at(pfn)
            assert rec is not None, f"frame {pfn} occupied but no block starts here"
            order, movable = rec
            blocks.append((pfn, order, movable))
            pfn += 1 << order
        return blocks


class NormalCompactor(_CompactorBase):
    """Linux-style sequential compaction (Figure 6a)."""

    kind = "normal"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._cursor = 0  # region index where the last attempt stopped

    def _compact(
        self, order: int, budget_ns: float = float("inf")
    ) -> CompactionResult:
        """Try to create one free block of ``order``; sequential region scan.

        ``budget_ns`` bounds the work of this attempt: when exceeded, the
        attempt reports failure but keeps the partial progress (moved blocks
        stay moved), so a CPU-capped khugepaged makes headway across ticks.
        """
        result = CompactionResult(success=False)
        n = self.regions.n_regions
        scan_ns = self.cost.compaction_scan_per_frame_ns
        region = self._cursor
        for step in range(n):
            if self.buddy.has_free_block(order):
                result.success = True
                break
            if result.time_ns >= budget_ns:
                # Out of budget mid-region: keep the cursor here so the next
                # attempt resumes this region's evacuation (Linux's migrate
                # scanner position persists across runs the same way).
                self._cursor = region
                self._record(result)
                return result
            region = (self._cursor + step) % n
            if self.regions.is_fully_free(region):
                continue
            result.frames_scanned += self.regions.frames_per_region
            result.time_ns += self.regions.frames_per_region * scan_ns
            copied_here = self._evacuate_sequential(region, result, budget_ns)
            if copied_here is None:  # hit an unmovable/unmigratable block
                continue
        else:
            result.success = self.buddy.has_free_block(order)
        self._cursor = (region + 1) % n
        self._record(result)
        return result

    def _evacuate_sequential(
        self, region: int, result: CompactionResult, budget_ns: float
    ) -> int | None:
        """Move region contents toward high memory; None if aborted."""
        copied_here = 0
        # Targets: highest-index regions first, Linux's "other end" scan.
        targets = [
            r
            for r in range(self.regions.n_regions - 1, -1, -1)
            if r != region and self.regions.free_frames[r] > 0
        ]
        for pfn, order, movable in self._blocks_in_region(region):
            if result.time_ns >= budget_ns:
                return copied_here  # out of budget: progress persists
            migratable = movable and self.rmap.lookup(pfn) is not None
            if not migratable:
                # Paper: copying done so far for this region is wasted.
                result.wasted_bytes += copied_here
                self._abort(region, "unmovable")
                return None
            dest = self._place_in_targets(order, targets)
            if dest is None:
                result.wasted_bytes += copied_here
                self._abort(region, "no_slot")
                return None
            copied, exchanged, ns = self._migrate(pfn, order, dest, movable)
            copied_here += copied
            result.bytes_copied += copied
            result.bytes_exchanged += exchanged
            result.blocks_moved += 1
            result.time_ns += ns + self.cost.pte_update_ns
        result.regions_freed += 1
        return copied_here


class SmartCompactor(_CompactorBase):
    """Trident's counter-guided compaction (Figure 6b)."""

    kind = "smart"

    def _compact(
        self,
        order: int,
        budget_ns: float = float("inf"),
        max_sources: int = 8,
    ) -> CompactionResult:
        """Create one free ``order`` block by evacuating the cheapest regions.

        Tries up to ``max_sources`` candidate source regions (most-free
        first, unmovable-containing regions never considered).  ``budget_ns``
        bounds this attempt's work; partial evacuations persist and resume
        on the next attempt (the half-evacuated region is even more free, so
        selection naturally picks it again).
        """
        result = CompactionResult(success=False)
        if self.buddy.has_free_block(order):
            result.success = True
            self._record(result)
            return result
        tried = 0
        for source in self.regions.best_source_regions():
            if tried >= max_sources or result.time_ns >= budget_ns:
                break
            tried += 1
            if self._evacuate_selected(source, result, budget_ns):
                if self.buddy.has_free_block(order):
                    result.success = True
                    break
        self._record(result)
        return result

    def _evacuate_selected(
        self, source: int, result: CompactionResult, budget_ns: float = float("inf")
    ) -> bool:
        blocks = self._blocks_in_region(source)
        # Selection is counter-based, but verify migratability *before*
        # copying a single byte — the counters already exclude unmovable
        # pages; this catches rmap-less allocations (e.g. zero-fill pool).
        if any(self.rmap.lookup(pfn) is None for pfn, _, _ in blocks):
            self._abort(source, "unmigratable")
            return False
        occupied = self.regions.occupied_frames(source)
        targets = self.regions.best_target_regions(exclude={source})
        capacity = sum(int(self.regions.free_frames[r]) for r in targets)
        if capacity < occupied:
            self._abort(source, "no_capacity")
            return False
        for pfn, order, movable in blocks:
            if result.time_ns >= budget_ns:
                self._abort(source, "budget")
                return False  # out of budget: resume next attempt
            dest = self._place_in_targets(order, targets)
            if dest is None:
                # Capacity existed but not in aligned slots of this order.
                self._abort(source, "no_slot")
                return False
            copied, exchanged, ns = self._migrate(pfn, order, dest, movable)
            result.bytes_copied += copied
            result.bytes_exchanged += exchanged
            result.blocks_moved += 1
            result.time_ns += ns + self.cost.pte_update_ns
        result.regions_freed += 1
        return True
