"""Check regenerated results against the paper's claims.

Reads ``report/*.csv`` (produced by ``python -m repro.experiments.run_all``)
and evaluates every :class:`repro.analysis.paper_expectations.Claim`,
producing the EXPERIMENTS.md results table:

    python -m repro.analysis.compare            # print the table
    python -m repro.analysis.compare --markdown # emit markdown
"""

from __future__ import annotations

import csv
import os
import sys
from dataclasses import dataclass

from repro.analysis.paper_expectations import PAPER_CLAIMS, Claim


@dataclass
class CheckResult:
    claim: Claim
    measured: float | None
    status: str  # "OK", "OUT-OF-BAND", "MISSING"

    @property
    def measured_str(self) -> str:
        if self.measured is None:
            return "-"
        return f"{self.measured:.3f}"


def load_report(source: str, directory: str = "report") -> list[dict] | None:
    path = os.path.join(directory, f"{source}.csv")
    if not os.path.exists(path):
        return None
    with open(path, newline="") as f:
        return list(csv.DictReader(f))


def check_all(directory: str = "report") -> list[CheckResult]:
    """Evaluate every claim against the CSVs in ``directory``."""
    results = []
    cache: dict[str, list[dict] | None] = {}
    for claim in PAPER_CLAIMS:
        if claim.source not in cache:
            cache[claim.source] = load_report(claim.source, directory)
        rows = cache[claim.source]
        if rows is None:
            results.append(CheckResult(claim, None, "MISSING"))
            continue
        try:
            measured = claim.extract(rows)
        except (KeyError, ValueError, ZeroDivisionError, IndexError):
            results.append(CheckResult(claim, None, "MISSING"))
            continue
        status = "OK" if claim.lo <= measured <= claim.hi else "OUT-OF-BAND"
        results.append(CheckResult(claim, measured, status))
    return results


def render_markdown(results: list[CheckResult]) -> str:
    """The EXPERIMENTS.md results table."""
    lines = [
        "| # | Experiment / claim | Paper | Measured | Band | Status |",
        "|---|---|---|---|---|---|",
    ]
    for r in results:
        c = r.claim
        band = f"[{c.lo:g}, {c.hi:g}]"
        lines.append(
            f"| {c.id} | {c.description} | {c.paper_value} | "
            f"{r.measured_str} | {band} | {r.status} |"
        )
    ok = sum(1 for r in results if r.status == "OK")
    lines.append("")
    lines.append(
        f"**{ok} of {len(results)} claims in band** "
        f"({sum(1 for r in results if r.status == 'MISSING')} missing, "
        f"{sum(1 for r in results if r.status == 'OUT-OF-BAND')} out of band)."
    )
    return "\n".join(lines)


def render_text(results: list[CheckResult]) -> str:
    lines = []
    for r in results:
        lines.append(
            f"{r.status:12s} {r.claim.id:28s} measured={r.measured_str:>10s}  "
            f"band=[{r.claim.lo:g}, {r.claim.hi:g}]  ({r.claim.paper_value})"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    results = check_all()
    if "--markdown" in argv:
        print(render_markdown(results))
    else:
        print(render_text(results))
    bad = [r for r in results if r.status == "OUT-OF-BAND"]
    return 1 if bad else 0


if __name__ == "__main__":
    sys.exit(main())
