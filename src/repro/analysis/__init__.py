"""Post-processing: compare regenerated results against the paper's claims.

`paper_expectations` encodes, as data, every quantitative claim the paper
makes per figure/table; `compare` loads the regenerated `report/*.csv`
files and checks each claim, emitting the EXPERIMENTS.md results section.
"""

from repro.analysis.paper_expectations import PAPER_CLAIMS, Claim
from repro.analysis.compare import check_all, render_markdown
from repro.analysis.replication import Replication, replicate

__all__ = [
    "PAPER_CLAIMS",
    "Claim",
    "check_all",
    "render_markdown",
    "Replication",
    "replicate",
]
