"""The paper's quantitative claims, encoded as checkable data.

Each :class:`Claim` names the regenerated CSV it reads, how to compute the
measured value from its rows, and the band the paper's text/figures put the
value in.  Bands are deliberately wide where the paper gives prose rather
than numbers ("significant", "barely gain"); exact quotes get tight bands.

``kind`` semantics:
    ``ratio``    measured value expected inside [lo, hi]
    ``ordering`` measured boolean expected True (lo/hi unused)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class Claim:
    """One paper claim checkable against a regenerated CSV."""

    id: str
    source: str  # csv stem under report/
    description: str
    paper_value: str  # the paper's number/statement, for the report
    lo: float
    hi: float
    extract: Callable[[list[dict]], float]
    kind: str = "ratio"


def _row(rows: list[dict], **match) -> dict:
    for row in rows:
        if all(str(row.get(k)) == str(v) for k, v in match.items()):
            return row
    raise KeyError(f"no row matching {match}")


def _f(row: dict, key: str) -> float:
    return float(row[key])


PAPER_CLAIMS: tuple[Claim, ...] = (
    # ---- Figure 1 (native page sizes) ---------------------------------------
    Claim(
        id="fig1-gups-1gb-vs-thp",
        source="figure1",
        description="GUPS: 1GB static pages vs THP, native",
        paper_value="large (GUPS is the top 1GB beneficiary; +47% for Trident)",
        lo=1.15,
        hi=1.9,
        extract=lambda r: _f(_row(r, workload="GUPS"), "perf:1GB-Hugetlbfs")
        / _f(_row(r, workload="GUPS"), "perf:2MB-THP"),
    ),
    Claim(
        id="fig1-canneal-1gb-vs-thp",
        source="figure1",
        description="Canneal: 1GB pages vs THP, native",
        paper_value="+30%",
        lo=1.10,
        hi=1.55,
        extract=lambda r: _f(_row(r, workload="Canneal"), "perf:1GB-Hugetlbfs")
        / _f(_row(r, workload="Canneal"), "perf:2MB-THP"),
    ),
    Claim(
        id="fig1-thp-tracks-hugetlbfs",
        source="figure1",
        description="THP within ~0.5% of static 2MB hugetlbfs (avg |delta|)",
        paper_value="within 0.5%",
        lo=0.0,
        hi=0.06,
        extract=lambda r: sum(
            abs(_f(row, "perf:2MB-THP") - _f(row, "perf:2MB-Hugetlbfs"))
            for row in r
        )
        / len(r),
    ),
    Claim(
        id="fig1-unshaded-insensitive",
        source="figure1",
        description="CC/BC/PR/CG gain from 1GB beyond 2MB (max across the four)",
        paper_value="barely gain (<~3%)",
        lo=0.95,
        hi=1.05,
        extract=lambda r: max(
            _f(_row(r, workload=w), "perf:1GB-Hugetlbfs")
            / _f(_row(r, workload=w), "perf:2MB-THP")
            for w in ("CC", "BC", "PR", "CG")
        ),
    ),
    # ---- Figure 2 (virtualized page sizes) -----------------------------------
    Claim(
        id="fig2-shaded-1gb-vs-2mb",
        source="figure2",
        description="shaded eight: 1GB+1GB vs 2MB+2MB geomean, virtualized",
        paper_value="+17.6% average",
        lo=1.08,
        hi=1.45,
        extract=lambda r: _geomean(
            _f(_row(r, workload=w), "perf:1GB+1GB")
            / _f(_row(r, workload=w), "perf:2MB+2MB")
            for w in (
                "XSBench",
                "SVM",
                "Graph500",
                "Btree",
                "GUPS",
                "Redis",
                "Memcached",
                "Canneal",
            )
        ),
    ),
    # ---- Figure 3 (mappability gap) ------------------------------------------
    Claim(
        id="fig3-svm-gap",
        source="figure3",
        description="SVM: GB 2MB- but not 1GB-mappable at end of setup",
        paper_value="several GB (Figure 3b gap)",
        lo=1.5,
        hi=12.0,
        extract=lambda r: _f(
            [row for row in r if row["workload"] == "SVM"][-1], "gap_gb"
        ),
    ),
    # ---- Figure 7 (smart compaction copies less) ------------------------------
    Claim(
        id="fig7-max-reduction",
        source="figure7",
        description="max % reduction in bytes copied, smart vs normal",
        paper_value="up to 85%",
        lo=35.0,
        hi=100.0,
        extract=lambda r: max(_f(row, "reduction_pct") for row in r),
    ),
    # ---- Figure 9 (unfragmented) ----------------------------------------------
    Claim(
        id="fig9-trident-vs-thp",
        source="figure9",
        description="Trident vs THP geomean, unfragmented",
        paper_value="+14% average",
        lo=1.06,
        hi=1.30,
        extract=lambda r: _f(_row(r, workload="geomean"), "perf:Trident"),
    ),
    Claim(
        id="fig9-gups",
        source="figure9",
        description="GUPS: Trident vs THP, unfragmented",
        paper_value="+47%",
        lo=1.25,
        hi=1.75,
        extract=lambda r: _f(_row(r, workload="GUPS"), "perf:Trident"),
    ),
    Claim(
        id="fig9-beats-hawkeye",
        source="figure9",
        description="Trident >= HawkEye on the geomean",
        paper_value="+14% over HawkEye",
        lo=0.98,
        hi=2.0,
        extract=lambda r: _f(_row(r, workload="geomean"), "perf:Trident")
        / _f(_row(r, workload="geomean"), "perf:HawkEye"),
    ),
    # ---- Figure 10 (fragmented) -------------------------------------------------
    Claim(
        id="fig10-trident-vs-thp",
        source="figure10",
        description="Trident vs THP geomean, fragmented",
        paper_value="+18% average",
        lo=1.05,
        hi=1.35,
        extract=lambda r: _f(_row(r, workload="geomean"), "perf:Trident"),
    ),
    # ---- Figure 11 (ablation) -----------------------------------------------------
    Claim(
        id="fig11-1gonly-loses",
        source="figure11",
        description="Trident / Trident-1Gonly geomean, unfragmented",
        paper_value="significant gap (1Gonly can lose even to THP)",
        lo=1.02,
        hi=2.5,
        extract=lambda r: _f(
            _row(r, state="unfrag", workload="geomean"), "perf:Trident"
        )
        / _f(_row(r, state="unfrag", workload="geomean"), "perf:Trident-1Gonly"),
    ),
    Claim(
        id="fig11-nc-equal-unfrag",
        source="figure11",
        description="|Trident - Trident-NC| geomean, unfragmented",
        paper_value="no difference (compaction never runs)",
        lo=0.0,
        hi=0.05,
        extract=lambda r: abs(
            _f(_row(r, state="unfrag", workload="geomean"), "perf:Trident")
            - _f(_row(r, state="unfrag", workload="geomean"), "perf:Trident-NC")
        ),
    ),
    Claim(
        id="fig11-smart-helps-frag",
        source="figure11",
        description="Trident / Trident-NC geomean, fragmented",
        paper_value="smart compaction adds 2-6% for several workloads",
        lo=0.99,
        hi=1.25,
        extract=lambda r: _f(
            _row(r, state="frag", workload="geomean"), "perf:Trident"
        )
        / _f(_row(r, state="frag", workload="geomean"), "perf:Trident-NC"),
    ),
    # ---- Figure 12 (virtualized dynamic) ---------------------------------------------
    Claim(
        id="fig12-trident-vs-thp",
        source="figure12",
        description="Trident+Trident vs THP+THP geomean",
        paper_value="+16% average",
        lo=1.06,
        hi=1.35,
        extract=lambda r: _f(
            _row(r, workload="geomean"), "perf:Trident+Trident"
        ),
    ),
    # ---- Figure 13 (Trident-pv) -----------------------------------------------------
    Claim(
        id="fig13-trident-beats-thp",
        source="figure13",
        description="Trident vs THP geomean, fragmented gPA, capped khugepaged",
        paper_value="Trident > THP here too",
        lo=1.02,
        hi=1.6,
        extract=lambda r: _f(
            _row(r, workload="geomean"), "perf:Trident+Trident"
        ),
    ),
    Claim(
        id="fig13-pv-vs-trident",
        source="figure13",
        description="Trident-pv vs Trident geomean",
        paper_value="+5% on XSBench/GUPS/Memcached/SVM, up to +10%; not universal",
        lo=0.95,
        hi=1.15,
        extract=lambda r: _f(_row(r, workload="geomean"), "pv_vs_trident"),
    ),
    # ---- Table 3 ---------------------------------------------------------------------
    Claim(
        id="t3-gups-prealloc",
        source="table3",
        description="GUPS page-fault-only 1GB coverage, unfragmented (GB)",
        paper_value="31 of 32 GB",
        lo=28.0,
        hi=32.5,
        extract=lambda r: _f(_row(r, workload="GUPS"), "unfrag:pf_only:1GB"),
    ),
    Claim(
        id="t3-redis-needs-promotion",
        source="table3",
        description="Redis page-fault-only 1GB coverage, unfragmented (GB)",
        paper_value="0 GB (incremental allocation)",
        lo=0.0,
        hi=6.0,
        extract=lambda r: _f(_row(r, workload="Redis"), "unfrag:pf_only:1GB"),
    ),
    Claim(
        id="t3-redis-promotion-recovers",
        source="table3",
        description="Redis 1GB coverage after promotion, unfragmented (GB)",
        paper_value="39 GB",
        lo=30.0,
        hi=44.0,
        extract=lambda r: _f(
            _row(r, workload="Redis"), "unfrag:smart_compaction:1GB"
        ),
    ),
    Claim(
        id="t3-xsbench-frag-partial",
        source="table3",
        description="XSBench 1GB coverage with smart compaction, fragmented (GB)",
        paper_value="80 of 117 GB",
        lo=40.0,
        hi=117.5,
        extract=lambda r: _f(
            _row(r, workload="XSBench"), "frag:smart_compaction:1GB"
        ),
    ),
    # ---- Table 4 ----------------------------------------------------------------------
    Claim(
        id="t4-fault-failures-high",
        source="table4",
        description="XSBench % fault-time 1GB failures under fragmentation",
        paper_value="94%",
        lo=60.0,
        hi=100.0,
        extract=lambda r: _f(_row(r, workload="XSBench"), "fault_fail_pct"),
    ),
    Claim(
        id="t4-redis-na",
        source="table4",
        description="Redis fault-time 1GB attempts (paper: NA)",
        paper_value="NA (no 1GB-mappable ranges at fault time)",
        lo=0.0,
        hi=4.0,
        extract=lambda r: _f(_row(r, workload="Redis"), "fault_attempts"),
    ),
    # ---- Table 5 ----------------------------------------------------------------------
    Claim(
        id="t5-tail-safe",
        source="table5",
        description="worst Trident p99 / THP p99 across Redis+Memcached x frag states",
        paper_value="Trident does not hurt tail latency",
        lo=0.0,
        hi=1.2,
        extract=lambda r: max(
            _f(row, "p99_us:Trident") / _f(row, "p99_us:2MB-THP") for row in r
        ),
    ),
    # ---- Latency microbenchmarks ----------------------------------------------------------
    Claim(
        id="lat-1gb-fault-sync",
        source="latency_micro",
        description="1GB fault with synchronous zeroing (ms)",
        paper_value="~400 ms",
        lo=330.0,
        hi=480.0,
        extract=lambda r: _f(
            _row(r, metric="1GB fault, sync zero (ms)"), "measured"
        ),
    ),
    Claim(
        id="lat-1gb-fault-async",
        source="latency_micro",
        description="1GB fault from the zero-fill pool (ms)",
        paper_value="2.7 ms",
        lo=2.4,
        hi=3.0,
        extract=lambda r: _f(
            _row(r, metric="1GB fault, async pool (ms)"), "measured"
        ),
    ),
    Claim(
        id="lat-pv-batched",
        source="latency_micro",
        description="batched pv promotion of one 1GB region (us)",
        paper_value="~500 us",
        lo=420.0,
        hi=580.0,
        extract=lambda r: _f(
            _row(r, metric="1GB promotion, pv batched (us)"), "measured"
        ),
    ),
    # ---- Bloat -------------------------------------------------------------------------------
    Claim(
        id="bloat-memcached",
        source="bloat",
        description="Memcached bloat, Trident over THP (GB)",
        paper_value="+38 GB",
        lo=3.0,
        hi=70.0,
        extract=lambda r: _f(_row(r, workload="Memcached"), "trident_over_thp_gb"),
    ),
    # ---- Kernel direct map ----------------------------------------------------------------------
    Claim(
        id="directmap-gain",
        source="kernel_directmap",
        description="kernel speedup from 1GB direct map (%)",
        paper_value="2-3%",
        lo=0.5,
        hi=7.0,
        extract=lambda r: _f(
            _row(r, direct_map="1GB vs 2MB kernel speedup (%)"),
            "kernel_cycles_per_access",
        ),
    ),
)


def _geomean(values) -> float:
    vals = list(values)
    product = 1.0
    for v in vals:
        product *= v
    return product ** (1.0 / len(vals))
