"""Seed replication: run a configuration across seeds, report mean ± std.

The figures regenerate from single seeded runs; this module quantifies how
much the headline ratios move across seeds, which is what EXPERIMENTS.md's
"a few points with seed" statement is based on.

    python -m repro.analysis.replication GUPS Trident 2MB-THP --seeds 5
"""

from __future__ import annotations

import math
import sys
from dataclasses import dataclass

from repro.experiments.runner import NativeRunner, RunConfig


@dataclass
class Replication:
    """Speedup of ``policy`` over ``baseline`` across seeds."""

    workload: str
    policy: str
    baseline: str
    speedups: list[float]

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def std(self) -> float:
        if len(self.speedups) < 2:
            return 0.0
        m = self.mean
        var = sum((s - m) ** 2 for s in self.speedups) / (len(self.speedups) - 1)
        return math.sqrt(var)

    @property
    def ci95_halfwidth(self) -> float:
        """Normal-approximation 95% half-width (fine for n >= 5)."""
        if len(self.speedups) < 2:
            return 0.0
        return 1.96 * self.std / math.sqrt(len(self.speedups))

    def summary(self) -> str:
        return (
            f"{self.workload}: {self.policy} vs {self.baseline} = "
            f"{self.mean:.3f} +/- {self.ci95_halfwidth:.3f} "
            f"(std {self.std:.3f}, n={len(self.speedups)})"
        )


def replicate(
    workload: str,
    policy: str,
    baseline: str,
    seeds: tuple[int, ...] = (1, 2, 3, 5, 7),
    n_accesses: int = 40_000,
    fragmented: bool = False,
) -> Replication:
    """Measure speedup across seeds (both runs share each seed)."""
    speedups = []
    for seed in seeds:
        runs = {}
        for p in (policy, baseline):
            runs[p] = NativeRunner(
                RunConfig(
                    workload,
                    p,
                    fragmented=fragmented,
                    n_accesses=n_accesses,
                    seed=seed,
                )
            ).run()
        speedups.append(runs[baseline].runtime_ns / runs[policy].runtime_ns)
    return Replication(workload, policy, baseline, speedups)


def main(argv: list[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) < 3:
        print(
            "usage: python -m repro.analysis.replication "
            "<workload> <policy> <baseline> [--seeds N] [--fragmented]"
        )
        return 2
    workload, policy, baseline = argv[:3]
    n_seeds = 5
    if "--seeds" in argv:
        n_seeds = int(argv[argv.index("--seeds") + 1])
    seeds = tuple(range(1, n_seeds + 1))
    result = replicate(
        workload, policy, baseline, seeds, fragmented="--fragmented" in argv
    )
    print(result.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
