"""The simulated machine: physical memory + OS policy + processes.

``System`` is the kernel context every policy runs against.  It owns the
buddy allocator (extended to the large order — Trident's first change), the
per-region counters, the reverse map, the zero-fill engine, both compactors
and the fragmentation state, and it drives the background daemons on a
configurable cadence while workloads touch memory.

The system is also the workload-facing syscall surface: ``sys_mmap`` /
``sys_munmap`` / ``touch``.  ``touch`` is the hot path: translate, fault on
demand through the policy, then run the address through the process's TLB
hierarchy, accumulating the translation-cycle statistics the figures are
computed from.
"""

from __future__ import annotations

import numpy as np

from repro.config import FREQ_GHZ, MachineConfig, set_active_geometry
from repro.core.compaction import NormalCompactor, SmartCompactor
from repro.core.rmap import ReverseMap
from repro.mem.buddy import BuddyAllocator
from repro.mem.fragmentation import FragmentationInjector, fmfi
from repro.mem.numa import NumaBuddyPools, NumaTopology
from repro.mem.regions import RegionTracker
from repro.mem.zerofill import ZeroFillEngine
from repro.obs import Observability
from repro.sim.batch import BatchEngine, BatchResult, TouchResult
from repro.sim.process import Process
from repro.tlb.hierarchy import TLBHierarchy


class System:
    """One simulated machine running one OS memory policy."""

    def __init__(
        self,
        machine: MachineConfig,
        policy_factory,
        seed: int = 0,
        daemon_period_accesses: int = 20_000,
        daemon_budget_ns: float = 2_000_000.0,
        obs: Observability | None = None,
        numa: NumaTopology | None = None,
        pt_replication: bool = False,
    ) -> None:
        self.machine = machine
        self.geometry = machine.geometry
        # Deprecated PageSize aliases resolve against the live machine.
        set_active_geometry(self.geometry)
        self.cost = machine.cost
        #: the machine's only RNG: a seeded generator threaded from the run
        #: config so every stochastic kernel behaviour replays byte-for-byte
        self.rng = np.random.default_rng(seed)
        #: per-machine observability (metrics registry + tracer); every
        #: substrate component below instruments itself against it
        self.obs = obs if obs is not None else Observability()
        self.regions = RegionTracker(
            machine.total_frames, machine.geometry, obs=self.obs
        )
        #: NUMA shape (None = the flat pre-NUMA machine, byte-identical to
        #: a 1-node topology — see tests/sim/test_numa_differential.py)
        self.numa = numa
        #: Mitosis-style page-table replication: walks always hit a local
        #: replica; every fault pays pte_update_ns per remote replica
        self.pt_replication = bool(pt_replication) and (
            numa is not None and numa.nodes > 1
        )
        if numa is not None:
            self.buddy = NumaBuddyPools(
                machine.total_frames,
                machine.geometry.large_order,
                numa,
                listeners=(self.regions,),
                obs=self.obs,
            )
        else:
            self.buddy = BuddyAllocator(
                machine.total_frames,
                machine.geometry.large_order,
                listeners=(self.regions,),
                obs=self.obs,
            )
        #: remote-penalty charging only exists on a real multi-node shape
        self._numa_active = numa is not None and numa.nodes > 1
        self.faults_handled = 0
        self.replica_updates = 0
        #: cumulative ns of every NUMA charge (walk + data penalties and
        #: replica maintenance) — lets callers like the service layer
        #: attribute the interconnect cost to the work that incurred it
        self.numa_penalty_ns_total = 0.0
        self._c_walk_pen = self._c_access_pen = None
        self._c_replica_updates = self._c_replica_ns = None
        if self._numa_active:
            m = self.obs.metrics
            self._c_walk_pen = m.counter("numa_remote_walk_penalty_ns_total")
            self._c_access_pen = m.counter("numa_remote_access_penalty_ns_total")
            self._c_replica_updates = m.counter("numa_replica_updates_total")
            self._c_replica_ns = m.counter("numa_replica_update_ns_total")
        self.rmap = ReverseMap()
        self.zerofill = ZeroFillEngine(
            self.buddy, self.geometry, self.cost, obs=self.obs
        )
        self.normal_compactor = NormalCompactor(
            self.buddy, self.regions, self.rmap, self.geometry, self.cost,
            obs=self.obs,
        )
        self.smart_compactor = SmartCompactor(
            self.buddy, self.regions, self.rmap, self.geometry, self.cost,
            obs=self.obs,
        )
        self.processes: list[Process] = []
        self.injector: FragmentationInjector | None = None
        #: sampled runtime invariant auditing (repro.lint.invariants);
        #: attached by the runner when --audit is on, None otherwise
        self.auditor = None
        self._next_pid = 1
        self._accesses_since_daemon = 0
        self._batch_engine: BatchEngine | None = None
        self.daemon_period_accesses = daemon_period_accesses
        self.daemon_budget_ns = daemon_budget_ns
        self.daemon_ns_total = 0.0
        self._reserve_kernel_memory()
        self.policy = policy_factory(self)
        self.policy.on_boot()
        self.obs.metrics.add_collector(self._collect_system_metrics)
        self._register_timeline_series()

    @property
    def clock(self):
        """The machine's simulated-time clock (owned by the obs bundle)."""
        return self.obs.clock

    def _register_timeline_series(self) -> None:
        """Wire the paper's time-varying quantities into the sampler.

        Only runs when the obs bundle was built with ``timeline=True``; the
        gauges read authoritative simulator state (the same sources the
        snapshot collectors mirror), so the series and the end-of-run
        metrics agree by construction.
        """
        sampler = self.obs.timeline
        if sampler is None:
            return
        regions = self.regions
        fpl = self.geometry.frames_per_large
        sampler.add_series("fmfi", lambda: self.fmfi, unit="index")
        sampler.add_series(
            "free_large_regions",
            lambda: float(int((regions.free_frames == fpl).sum())),
            unit="regions",
        )
        sampler.add_series(
            "zerofill_pool",
            lambda: float(self.zerofill.pool_size),
            unit="blocks",
        )
        sampler.add_series(
            "buddy_free_frames",
            lambda: float(self.buddy.free_frames),
            unit="frames",
        )
        for size in self.geometry.all_levels:
            sampler.add_series(
                f"mapped_bytes_{self.geometry.label_for(size)}",
                self._mapped_bytes_reader(size),
                unit="bytes",
            )
        if self._numa_active:
            for node in range(self.numa.nodes):
                sampler.add_series(
                    f"numa_node{node}_free_frames",
                    self._node_free_reader(node),
                    unit="frames",
                )
                sampler.add_series(
                    f"numa_node{node}_fmfi",
                    self._node_fmfi_reader(node),
                    unit="index",
                )

    def _node_free_reader(self, node: int):
        return lambda: float(self.buddy.node_free_frames(node))

    def _node_fmfi_reader(self, node: int):
        return lambda: self.buddy.node_fmfi(node)

    def _mapped_bytes_reader(self, size: int):
        def read() -> float:
            return float(
                sum(p.pagetable.mapped_bytes(size) for p in self.processes)
            )

        return read

    def _collect_system_metrics(self, metrics) -> None:
        """Snapshot-time system-wide gauges and aggregated TLB totals."""
        metrics.gauge("system_fmfi").value = self.fmfi
        metrics.gauge("sim_clock_ns").set(self.obs.clock.now_ns)
        metrics.counter("system_daemon_ns_total").set(self.daemon_ns_total)
        accesses = l1 = l2 = 0
        walks = {s: 0 for s in self.geometry.all_levels}
        for process in self.processes:
            stats = process.tlb.stats
            accesses += stats.accesses
            l1 += stats.l1_hits
            l2 += stats.l2_hits
            for size in self.geometry.all_levels:
                walks[size] += stats.walks_by_size[size]
        metrics.counter("tlb_accesses_total").set(accesses)
        metrics.counter("tlb_l1_hits_total").set(l1)
        metrics.counter("tlb_l2_hits_total").set(l2)
        for size in self.geometry.all_levels:
            metrics.counter(
                "tlb_walks_total", size=self.geometry.label_for(size)
            ).set(walks[size])

    def _reserve_kernel_memory(self) -> None:
        """Boot-time unmovable kernel allocations.

        The buddy hands out lowest addresses first, so these concentrate in
        the low regions — the analogue of Linux grouping unmovable
        allocations by migratetype.  A sprinkle of them lands mid-memory to
        give normal compaction something to trip over.
        """
        n = int(self.machine.total_frames * self.machine.kernel_unmovable_fraction)
        for _ in range(max(1, n)):
            self.buddy.alloc(0, movable=False)

    # -- fragmentation control ----------------------------------------------
    def fragment(
        self,
        fill_fraction: float = 0.95,
        residual_fraction: float = 0.30,
        unmovable_prob: float = 0.002,
    ) -> float:
        """Fragment physical memory (paper Section 3); returns large-order FMFI.

        The residual page-cache frames are registered in the rmap so
        compaction can migrate them, exactly like movable page cache.
        """
        self.injector = FragmentationInjector(self.buddy, self.rng)
        index = self.injector.fragment(
            fill_fraction, residual_fraction, unmovable_prob
        )
        for pfn in self.injector.cache_frames():
            self.rmap.register(pfn, 0, self.injector)
        return index

    @property
    def fmfi(self) -> float:
        """Current fragmentation index at the large order."""
        return fmfi(self.buddy, self.geometry.large_order)

    def reclaim(self, n_frames: int) -> int:
        """Memory-pressure hook: drop page cache, then the zero-fill pool."""
        freed = 0
        if self.injector is not None:
            for pfn in self.injector.reclaim(n_frames):
                self.rmap.unregister(pfn)
                freed += 1
        if freed < n_frames:
            freed += self.zerofill.release_all() * self.geometry.frames_per_large
        return freed

    # -- processes --------------------------------------------------------------
    def create_process(self, name: str = "app", home_node: int = 0) -> Process:
        tlb = TLBHierarchy(
            self.machine.tlb, self.machine.walk, self.geometry, obs=self.obs
        )
        process = Process(self._next_pid, name, self.geometry, tlb)
        self._next_pid += 1
        if self._numa_active:
            if not 0 <= home_node < self.numa.nodes:
                raise ValueError(
                    f"home_node {home_node} out of range "
                    f"[0, {self.numa.nodes})"
                )
            process.home_node = home_node
            # Page tables are built by the boot CPU (first-touch on node
            # 0); replication sidesteps the resulting remote walks.
            process.pt_node = 0
            process.pagetable.enable_node_accounting(
                self.buddy.node_of, self.numa.nodes
            )
        self.processes.append(process)
        return process

    def exit_process(self, process: Process) -> None:
        """Tear a process down: free every mapping and retire it.

        The policy's unmap path handles huge-page splitting and rmap
        bookkeeping, so the buddy ends up exactly as before the process.
        """
        for vma in list(process.aspace.iter_vmas()):
            process.aspace.munmap(vma.start)
            self.policy.unmap_range(process, vma.start, vma.length)
        self.processes.remove(process)

    # -- syscall surface ----------------------------------------------------------
    def sys_mmap(self, process: Process, nbytes: int, kind: str = "heap") -> int:
        """Allocate virtual memory; returns the start address.

        The policy may request stronger alignment for heap segments
        (libhugetlbfs aligns eligible segments to its page size).
        """
        align = None
        if kind in ("heap", "data", "bss"):
            align = self.policy.heap_alignment_size
        vma = process.aspace.mmap(nbytes, name=kind, align=align)
        return vma.start

    def sys_munmap(self, process: Process, addr: int) -> None:
        """Release the VMA at ``addr`` and free its physical memory."""
        vma = process.aspace.munmap(addr)
        self.policy.unmap_range(process, vma.start, vma.length)

    # -- the hot path ------------------------------------------------------------
    #: whether ``touch_batch`` may use the vectorized engine; subclasses
    #: whose ``touch`` does per-access work beyond the native contract
    #: (e.g. the guest's EPT backing) opt out and fall back to the loop
    batch_hot_path = True

    def touch(self, process: Process, va: int) -> TouchResult:
        """One application load/store; returns a typed :class:`TouchResult`.

        The result subclasses ``float`` (translation cycles) for backward
        compatibility; new code reads ``.cycles`` / ``.faulted`` /
        ``.page_size``.  Bulk callers should use :meth:`touch_batch`.
        """
        mapping = process.pagetable.translate(va)
        faulted = mapping is None
        if faulted:
            mapping = self._fault(process, va)
        process.record_touch(va)
        cycles = process.tlb.access(va, mapping)
        self._accesses_since_daemon += 1
        if self._accesses_since_daemon >= self.daemon_period_accesses:
            self.run_daemons()
        return TouchResult(cycles, faulted=faulted, page_size=mapping.page_size)

    def _fault(self, process: Process, va: int):
        """Fault slow path, bracketed by a ``fault`` span.

        The policy records the fault's latency in ``stats.fault_ns``; leaf
        sites inside the handler (sync compaction, pv exchanges) may have
        advanced the clock already, so only the *residual* is advanced here
        — the span's duration then equals the recorded latency exactly,
        which is what lets the attribution table reconcile with
        :meth:`total_fault_ns`.
        """
        clock = self.obs.clock
        stats = self.policy.stats
        fault_ns_before = stats.fault_ns
        start = clock.now_ns
        numa_active = self._numa_active
        if numa_active:
            # Fault-time allocations land on the faulting tenant's home
            # node when it has room, spilling remote deterministically.
            self.buddy.set_alloc_preference(process.home_node)
        try:
            with self.obs.spans.span("fault") as sp:
                self.policy.handle_fault(process, va)
                process.faults += 1
                mapping = process.pagetable.translate(va)
                assert mapping is not None, f"fault handler left va {va:#x} unmapped"
                latency = stats.fault_ns - fault_ns_before
                residual = latency - (clock.now_ns - start)
                if residual > 0.0:
                    clock.advance(residual)
                sp.set(
                    order=self.geometry.order_for(mapping.page_size),
                    latency_ns=latency,
                )
        finally:
            if numa_active:
                self.buddy.set_alloc_preference(None)
        self.faults_handled += 1
        if self.pt_replication:
            # Mitosis's price for always-local walks: the new leaf entry
            # is written into every remote node's replica.  Charged after
            # the span closes so span duration still reconciles with the
            # policy-recorded fault latency.
            replicas = self.numa.nodes - 1
            replica_ns = self.cost.pte_update_ns * replicas
            clock.advance(replica_ns)
            self.numa_penalty_ns_total += replica_ns
            self.replica_updates += replicas
            self._c_replica_updates.inc(replicas)
            self._c_replica_ns.inc(replica_ns)
        if self.auditor is not None:
            self.auditor.maybe_audit()
        return mapping

    def touch_batch(self, process: Process, vas) -> BatchResult:
        """Touch a whole address stream; returns aggregate :class:`BatchResult`.

        This is the primary hot-path API.  When the process translates
        through a native :class:`TLBHierarchy` the stream runs on the
        vectorized batch engine (:mod:`repro.sim.batch`), which is
        counter-for-counter identical to the scalar loop; otherwise (and
        for subclasses that opt out via ``batch_hot_path``) it falls back
        to per-access ``touch``.
        """
        vas = np.ascontiguousarray(np.asarray(vas, dtype=np.int64))
        stats = process.tlb.stats
        policy_stats = self.policy.stats
        before = (
            stats.accesses,
            stats.translation_cycles,
            stats.l1_hits,
            stats.l2_hits,
            stats.walks,
            dict(stats.walks_by_size),
            process.faults,
            policy_stats.fault_ns,
        )
        if self.batch_hot_path and isinstance(process.tlb, TLBHierarchy):
            if self._batch_engine is None:
                self._batch_engine = BatchEngine(self)
            self._batch_engine.run(process, vas)
        else:
            for va in vas:
                self.touch(process, int(va))
        result = BatchResult(
            accesses=stats.accesses - before[0],
            translation_cycles=stats.translation_cycles - before[1],
            l1_hits=stats.l1_hits - before[2],
            l2_hits=stats.l2_hits - before[3],
            walks=stats.walks - before[4],
            faults=process.faults - before[6],
            fault_ns=policy_stats.fault_ns - before[7],
            walks_by_size={
                s: stats.walks_by_size[s] - before[5][s]
                for s in self.geometry.all_levels
            },
        )
        if self._numa_active:
            self._charge_numa_batch(process, result)
        return result

    def _charge_numa_batch(self, process: Process, br: BatchResult) -> None:
        """Charge the batch's remote-access penalties on the SimClock.

        Computed from the batch's aggregate counters (identical whether
        the vectorized engine or the scalar fallback produced them, so
        batch/scalar equivalence survives NUMA):

        * **walk term** — every page-walk memory access hits the page
          tables on ``pt_node``; remote unless the process runs there or
          replication keeps a local replica (Mitosis).
        * **data term** — the cache-missing fraction of data accesses
          lands on each node in proportion to the process's resident
          frames, so the remotely-resident fraction pays the multiplier.
        """
        extra = self.numa.remote_multiplier - 1.0
        if extra <= 0.0:
            return
        mem_ns = self.machine.walk.mem_access_cycles / FREQ_GHZ
        clock = self.obs.clock
        levels = self.machine.walk.levels_for
        if not self.pt_replication and process.pt_node != process.home_node:
            walk_accesses = sum(
                levels(s) * w for s, w in br.walks_by_size.items()
            )
            walk_pen = walk_accesses * extra * mem_ns
            if walk_pen > 0.0:
                clock.advance(walk_pen)
                self.numa_penalty_ns_total += walk_pen
                self._c_walk_pen.inc(walk_pen)
        remote_frac = process.pagetable.remote_resident_fraction(
            process.home_node
        )
        data_pen = (
            br.accesses
            * self.numa.data_dram_fraction
            * remote_frac
            * extra
            * mem_ns
        )
        if data_pen > 0.0:
            clock.advance(data_pen)
            self.numa_penalty_ns_total += data_pen
            self._c_access_pen.inc(data_pen)

    #: kswapd low watermark: background reclaim keeps this fraction of
    #: memory free so compaction always has slots to move pages into
    free_watermark = 0.06

    def run_daemons(self, budget_ns: float | None = None) -> float:
        """Give the background threads one scheduling quantum.

        Runs kswapd-style watermark reclaim first (page cache shrinks when
        free memory dips below the low watermark — reclaim is not charged
        to khugepaged's CPU budget, matching Linux's separate kswapd
        thread), then the policy's own daemons.
        """
        self._accesses_since_daemon = 0
        watermark = int(self.machine.total_frames * self.free_watermark)
        if self.buddy.free_frames < watermark:
            self.reclaim(watermark - self.buddy.free_frames)
        clock = self.obs.clock
        start = clock.now_ns
        with self.obs.spans.span("daemon_tick") as sp:
            used = self.policy.background_tick(
                self.daemon_budget_ns if budget_ns is None else budget_ns
            )
            # Leaf sites (zero-fill, compaction, pv) advanced their share
            # of ``used`` already; advance only the residual scan/copy ns.
            residual = used - (clock.now_ns - start)
            if residual > 0.0:
                clock.advance(residual)
            sp.set(used_ns=used)
        self.daemon_ns_total += used
        if self.auditor is not None:
            self.auditor.maybe_audit()
        return used

    def settle(self, ticks: int = 50, budget_ns: float | None = None) -> None:
        """Run daemons repeatedly (an idle period: promotions catch up)."""
        for _ in range(ticks):
            self.run_daemons(budget_ns)

    def settle_until_quiet(
        self,
        max_ticks: int = 400,
        quiet_ticks: int = 5,
        budget_ns: float | None = None,
    ) -> int:
        """Run daemons until promotion activity stops changing.

        Returns the number of ticks executed.  Used by the runner to reach
        khugepaged's steady state regardless of footprint size.
        """
        quiet = 0
        stats = self.policy.stats
        last = (dict(stats.promoted), dict(stats.demoted))
        for tick in range(max_ticks):
            self.run_daemons(budget_ns)
            now = (dict(stats.promoted), dict(stats.demoted))
            # A tick spent repaying CPU-cap debt is throttling, not
            # convergence: only debt-free idle ticks count as quiet.
            throttled = getattr(self.policy, "_debt_ns", 0.0) > 0.0
            quiet = quiet + 1 if (now == last and not throttled) else 0
            last = now
            if quiet >= quiet_ticks:
                return tick + 1
        return max_ticks

    # -- metrics helpers ----------------------------------------------------------
    def mapped_bytes_by_size(self, process: Process) -> dict[int, int]:
        return {
            size: process.pagetable.mapped_bytes(size)
            for size in self.geometry.all_levels
        }

    def total_fault_ns(self) -> float:
        return self.policy.stats.fault_ns
