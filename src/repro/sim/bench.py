"""Hot-path microbenchmark: ``touch_batch`` vectorized vs the scalar loop.

``repro bench`` replays the same warm zipf address stream through two
otherwise-identical systems — one with :attr:`System.batch_hot_path`
enabled (the vectorized engine in :mod:`repro.sim.batch`) and one with
it disabled (the per-access scalar loop) — and reports throughput for
each plus the speedup.  Because the batched engine must be
counter-for-counter identical to the scalar path, the bench also
fingerprints the complete simulation state after both runs and fails
if any counter, TLB set ordering, histogram, or accessed bit differs.

The JSON report (``BENCH_hotpath.json`` by default) is the artifact CI
uploads; the exit status gates on both the counter match and
``--min-speedup``.
"""

from __future__ import annotations

import json
import math
import sys
import time
from typing import Any

import numpy as np

from repro.config import default_machine
from repro.experiments.configs import policy_factory, resolve_policy
from repro.sim.system import System
from repro.workloads.access import zipf

#: policies benched by default: the paper's headline mechanism plus the
#: two ends of the page-size spectrum it is compared against.
DEFAULT_POLICIES = ("Trident", "2MB-THP", "4KB")

#: floor below which a speedup ratio is timer noise rather than signal:
#: the timed region must cover this many accesses AND this much scalar
#: wall time before ``--min-speedup`` may gate on it.
MIN_GATE_ACCESSES = 1_000
MIN_GATE_SECONDS = 1e-3


def state_fingerprint(system: System, process) -> dict[str, Any]:
    """Every piece of simulation state the batched path must reproduce.

    Used both by the bench's equivalence gate and by the committed
    equivalence test suite.  Includes per-set TLB dict *ordering* (LRU
    recency), walk-latency histograms, and page-table accessed bits —
    not just the aggregate counters — so "close enough" cannot pass.
    """
    tlb = process.tlb
    st = tlb.stats
    d: dict[str, Any] = {
        "accesses": st.accesses,
        "l1_hits": st.l1_hits,
        "l2_hits": st.l2_hits,
        "walks": st.walks,
        "walks_by_size": dict(st.walks_by_size),
        "translation_cycles": st.translation_cycles,
        "walk_cycles": st.walk_cycles,
        "walker": (tlb.walker.walks, tlb.walker.walk_cycles),
        "clock_ns": system.obs.clock.now_ns,
        "faults": process.faults,
        "fault_ns": system.policy.stats.fault_ns,
        "touched_pages": len(process.touched_pages),
        "since_daemon": system._accesses_since_daemon,
    }
    structs = {f"l1:{size}": t for size, t in tlb.l1.items()}
    for group, t in tlb.l2.items():
        structs[f"l2_{group}"] = t
    for name, t in structs.items():
        d[f"tlb:{name}"] = (t.hits, t.misses, [list(s.keys()) for s in t._sets])
    for size, h in tlb._h_walk.items():
        d[f"hist:{size}"] = (h.count, h.sum, list(h.bucket_counts))
    for size in range(process.pagetable.n_levels):
        level = process.pagetable._levels[size]
        d[f"accessed:{size}"] = sorted(
            vpn for vpn, m in level.items() if m.accessed
        )
    return d


def _counters_digest(fp: dict[str, Any]) -> dict[str, Any]:
    """The headline counters recorded in the JSON report."""
    return {
        key: fp[key]
        for key in (
            "accesses",
            "l1_hits",
            "l2_hits",
            "walks",
            "translation_cycles",
            "walk_cycles",
            "faults",
            "clock_ns",
            "touched_pages",
        )
    }


def _timed_run(
    policy_name: str,
    *,
    batched: bool,
    accesses: int,
    warmup: int,
    footprint: int,
    regions: int,
    seed: int,
    stream_seed: int,
) -> tuple[float, float, dict[str, Any]]:
    """One warm run; returns (M accesses/s, elapsed s, state fingerprint)."""
    factory = policy_factory(resolve_policy(policy_name))
    system = System(default_machine(regions), factory, seed=seed)
    system.batch_hot_path = batched
    process = system.create_process()
    base = system.sys_mmap(process, footprint)
    rng = np.random.default_rng(stream_seed)
    stream = zipf(rng, base, footprint, accesses)
    # Warm: first-touch every base page so the timed region is fault-free,
    # then replay a stream prefix to settle promotions and heat the TLBs.
    system.touch_batch(
        process, base + np.arange(0, footprint, 4096, dtype=np.int64)
    )
    system.touch_batch(process, stream[:warmup])
    t0 = time.perf_counter()
    system.touch_batch(process, stream[warmup:])
    elapsed = time.perf_counter() - t0
    # A tiny timed region can finish inside the timer's resolution;
    # report infinite throughput rather than dividing by zero and let
    # the gate-eligibility check downstream reject the run.
    mps = (accesses - warmup) / elapsed / 1e6 if elapsed > 0.0 else math.inf
    return mps, elapsed, state_fingerprint(system, process)


def bench_policy(
    policy_name: str,
    *,
    accesses: int = 1_000_000,
    footprint: int = 32 * 1024 * 1024,
    regions: int = 64,
    seed: int = 5,
    stream_seed: int = 42,
) -> dict[str, Any]:
    """Bench one policy batched vs scalar on the same stream."""
    warmup = min(200_000, accesses // 5)
    batch_mps, batch_s, batch_fp = _timed_run(
        policy_name,
        batched=True,
        accesses=accesses,
        warmup=warmup,
        footprint=footprint,
        regions=regions,
        seed=seed,
        stream_seed=stream_seed,
    )
    scalar_mps, scalar_s, scalar_fp = _timed_run(
        policy_name,
        batched=False,
        accesses=accesses,
        warmup=warmup,
        footprint=footprint,
        regions=regions,
        seed=seed,
        stream_seed=stream_seed,
    )
    counters_match = batch_fp == scalar_fp
    mismatched = (
        []
        if counters_match
        else sorted(k for k in batch_fp if batch_fp[k] != scalar_fp[k])
    )
    timed = accesses - warmup
    # A speedup ratio is only meaningful when both wall times are well
    # above the timer floor; ``None`` marks an un-gateable measurement.
    gateable = (
        timed >= MIN_GATE_ACCESSES
        and scalar_s >= MIN_GATE_SECONDS
        and batch_s > 0.0
    )
    speedup = (
        round(batch_mps / scalar_mps, 2)
        if batch_s > 0.0 and scalar_s > 0.0
        else None
    )
    return {
        "policy": resolve_policy(policy_name),
        "warmup_accesses": warmup,
        "timed_accesses": timed,
        "batch_mps": round(batch_mps, 3) if math.isfinite(batch_mps) else None,
        "scalar_mps": (
            round(scalar_mps, 3) if math.isfinite(scalar_mps) else None
        ),
        "speedup": speedup,
        "gateable": gateable,
        "counters_match": counters_match,
        "mismatched_keys": mismatched,
        "counters": _counters_digest(batch_fp),
    }


def run_bench(
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    *,
    accesses: int = 1_000_000,
    footprint: int = 32 * 1024 * 1024,
    regions: int = 64,
    seed: int = 5,
    stream_seed: int = 42,
    min_speedup: float = 1.0,
    out: str | None = None,
) -> tuple[dict[str, Any], bool]:
    """Run the hot-path bench; returns (report, ok).

    ``ok`` is False when any policy's counters diverge between the two
    paths or its speedup falls below ``min_speedup``.
    """
    results = []
    for name in policies:
        result = bench_policy(
            name,
            accesses=accesses,
            footprint=footprint,
            regions=regions,
            seed=seed,
            stream_seed=stream_seed,
        )
        results.append(result)
        status = "ok" if result["counters_match"] else "COUNTER MISMATCH"
        batch_mps = result["batch_mps"]
        scalar_mps = result["scalar_mps"]
        speedup = result["speedup"]
        print(
            f"{result['policy']:16s} batch "
            f"{'   inf' if batch_mps is None else format(batch_mps, '8.2f')}"
            f" M/s  scalar "
            f"{'  inf' if scalar_mps is None else format(scalar_mps, '7.2f')}"
            f" M/s  speedup "
            f"{'  n/a' if speedup is None else format(speedup, '5.2f') + 'x'}"
            f"  [{status}]"
        )

    def _speedup_ok(r: dict[str, Any]) -> bool:
        if min_speedup <= 0.0:
            return True
        return r["gateable"] and r["speedup"] >= min_speedup

    ok = all(r["counters_match"] and _speedup_ok(r) for r in results)
    report = {
        "benchmark": "hotpath",
        "workload": "zipf",
        "config": {
            "accesses": accesses,
            "footprint_bytes": footprint,
            "machine_regions": regions,
            "seed": seed,
            "stream_seed": stream_seed,
            "min_speedup": min_speedup,
        },
        "results": results,
        "ok": ok,
    }
    if out:
        with open(out, "w") as f:
            json.dump(report, f, indent=2)  # trd: ignore[TRD007] benchmark reports measure host wall time by design; never byte-compared
            f.write("\n")
        print(f"wrote {out}")
    if not ok:
        for r in results:
            if not r["counters_match"]:
                print(
                    f"FAIL {r['policy']}: batched path diverged from scalar "
                    f"on {', '.join(r['mismatched_keys'])}",
                    file=sys.stderr,
                )
            elif min_speedup > 0.0 and not r["gateable"]:
                print(
                    f"FAIL {r['policy']}: run too short to gate "
                    f"--min-speedup ({r['timed_accesses']} timed accesses; "
                    f"need >= {MIN_GATE_ACCESSES} and >= {MIN_GATE_SECONDS}s "
                    f"of scalar wall time) — rerun with more --accesses",
                    file=sys.stderr,
                )
            elif r["speedup"] < min_speedup:
                print(
                    f"FAIL {r['policy']}: speedup {r['speedup']}x below "
                    f"required {min_speedup}x",
                    file=sys.stderr,
                )
    return report, ok
