"""Hundreds-to-thousands of tenants churning shared NUMA allocators.

The service fleet (:mod:`repro.service.fleet`) isolates every tenant on
its own machine; this module models the other end of the consolidation
spectrum — many tenant processes sharing one machine's per-node buddy
pools, where one tenant's mmap/munmap churn fragments the contiguity the
next tenant's huge pages need.  That is the regime the ROADMAP's
production fleet lives in, and the regime Trident's FMFI + smart
compaction story is about.

Scaling comes from *sharding*: ``tenants`` processes split round-robin
over ``shards`` independent machines, each shard a pure function of
``(root seed, shard id)`` via :func:`derive_seed`, executed on the sweep
orchestrator's process pool and merged in canonical shard order.  An
N-tenant run is therefore byte-identical at any ``--jobs`` count — the
same contract the sweep and service layers already keep, extended here
to the multi-tenant machine (pinned by
``tests/sim/test_multitenant.py``).

Churn model, per tenant and round (all draws from the tenant's own
seeded generator, so tenants are order-independent within a round):

* with probability ``churn_prob`` the oldest segment is unmapped and a
  fresh one (2-16 mid pages) mapped — the fragmentation driver;
* one random-access burst of ``accesses_per_round`` touches lands on a
  randomly chosen live segment through the vectorized ``touch_batch``
  hot path, faulting memory in on the tenant's home node.
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import asdict, dataclass

import numpy as np

from repro.config import default_machine
from repro.experiments.configs import policy_factory, resolve_policy
from repro.experiments.orchestrator import UnitSpec, derive_seed, execute_units
from repro.mem.numa import NumaTopology
from repro.obs import Observability
from repro.sim.system import System

#: worker target resolved by the orchestrator's process pool
SHARD_TARGET = "repro.sim.multitenant:run_shard_unit"


@dataclass
class MultiTenantConfig:
    """Knobs for ``repro tenants`` — one consolidated multi-tenant run."""

    tenants: int = 64
    shards: int = 8
    policy: str = "Trident"
    rounds: int = 4
    accesses_per_round: int = 2000
    churn_prob: float = 0.5
    max_segments: int = 4
    #: machine capacity per shard, in large regions per resident tenant
    regions_per_tenant: float = 1.5
    numa_nodes: int = 1
    numa_remote_multiplier: float = 1.4
    pt_replication: bool = False
    audit: bool = False
    seed: int = 7
    jobs: int = 1
    out_dir: str = "report/tenants"
    timeout_s: float = 900.0
    #: directory receiving one ``shardNNNN.prom`` scrape stream per shard
    telemetry_out: str | None = None
    #: simulated milliseconds between scrape frames
    telemetry_interval_ms: float = 1.0


def shard_id(config: MultiTenantConfig, shard: int) -> str:
    """Stable shard identity — the seed-derivation key."""
    return f"tenants:{config.policy}:n{config.tenants}:shard{shard}"


def shard_tenants(config: MultiTenantConfig, shard: int) -> list[int]:
    """Round-robin tenant ids owned by ``shard``."""
    return list(range(shard, config.tenants, config.shards))


class MultiTenantMachine:
    """One shard: many tenant processes sharing one (NUMA) ``System``."""

    #: warn-once keys for oversubscribed shards (cleared by tests via
    #: :meth:`reset_warned`, mirroring ``TouchResult.reset_warned_sites``)
    _warned_keys: set = set()

    def __init__(
        self,
        tenant_ids: list[int],
        policy: str = "Trident",
        seed: int = 0,
        numa_nodes: int = 1,
        numa_remote_multiplier: float = 1.4,
        pt_replication: bool = False,
        regions_per_tenant: float = 1.5,
        max_segments: int = 4,
        audit: bool = False,
    ) -> None:
        if not tenant_ids:
            raise ValueError("shard has no tenants")
        self.tenant_ids = list(tenant_ids)
        self.seed = seed
        self.max_segments = max_segments
        topology = (
            NumaTopology(
                nodes=numa_nodes, remote_multiplier=numa_remote_multiplier
            )
            if numa_nodes > 1
            else None
        )
        nodes = numa_nodes if numa_nodes > 1 else 1
        regions = max(nodes, int(len(tenant_ids) * regions_per_tenant) + 1)
        regions += (-regions) % nodes  # whole regions per node
        machine = default_machine(regions)
        self.system = System(
            machine,
            policy_factory(resolve_policy(policy)),
            seed=seed,
            obs=Observability(),
            numa=topology,
            pt_replication=pt_replication,
        )
        if audit:
            from repro.lint.invariants import attach_auditor

            attach_auditor(self.system)
        self.geometry = machine.geometry
        self._warn_if_oversubscribed(machine)
        self._churn_prob = 0.5
        #: tenant id -> (process, rng, segments[(addr, nbytes)])
        self._tenants: dict[int, tuple] = {}
        for tid in self.tenant_ids:
            process = self.system.create_process(
                f"tenant{tid}", home_node=tid % nodes
            )
            rng = np.random.default_rng(derive_seed(seed, f"tenant{tid}"))
            self._tenants[tid] = (process, rng, [])

    @classmethod
    def reset_warned(cls) -> None:
        """Clear the warn-once state (test isolation fixture hook)."""
        cls._warned_keys.clear()

    def _warn_if_oversubscribed(self, machine) -> None:
        peak = (
            len(self.tenant_ids)
            * self.max_segments
            * 16  # largest segment draw, in mid pages
            * self.geometry.mid_size
        )
        if peak <= 0.9 * machine.total_bytes:
            return
        key = f"tenants={len(self.tenant_ids)}:frames={machine.total_frames}"
        if key in self._warned_keys:
            return
        self._warned_keys.add(key)
        warnings.warn(
            f"shard oversubscribed: {len(self.tenant_ids)} tenants may peak "
            f"at {peak} bytes against {machine.total_bytes} physical "
            "(raise regions_per_tenant)",
            RuntimeWarning,
            stacklevel=2,
        )

    # -- the churn loop ---------------------------------------------------
    def _churn_tenant(self, tid: int) -> None:
        process, rng, segments = self._tenants[tid]
        if float(rng.random()) < self._churn_prob and segments:
            if len(segments) >= self.max_segments:
                addr, _ = segments.pop(0)
                self.system.sys_munmap(process, addr)
        if len(segments) < self.max_segments:
            nbytes = int(rng.integers(2, 17)) * self.geometry.mid_size
            addr = self.system.sys_mmap(process, nbytes)
            segments.append((addr, nbytes))

    def _touch_tenant(self, tid: int, accesses: int) -> None:
        process, rng, segments = self._tenants[tid]
        addr, nbytes = segments[int(rng.integers(0, len(segments)))]
        offsets = rng.integers(0, nbytes // 8, size=accesses) * 8
        self.system.touch_batch(process, addr + offsets.astype(np.int64))

    def run_round(self, accesses_per_round: int, churn_prob: float) -> None:
        """One deterministic round-robin pass over every tenant."""
        self._churn_prob = churn_prob
        for tid in self.tenant_ids:
            self._churn_tenant(tid)
            self._touch_tenant(tid, accesses_per_round)
        self.system.run_daemons()

    def run(
        self, rounds: int, accesses_per_round: int, churn_prob: float
    ) -> dict:
        """Drive the full churn schedule; returns the shard's record."""
        for _ in range(rounds):
            self.run_round(accesses_per_round, churn_prob)
        self.system.settle(ticks=10)
        if self.system.auditor is not None:
            self.system.auditor.audit()
        return self.record()

    # -- results ----------------------------------------------------------
    def record(self) -> dict:
        """JSON-able shard record: per-tenant stats + machine state."""
        system = self.system
        buddy = system.buddy
        nodes = getattr(buddy, "nodes", 1)
        tenants = []
        for tid in self.tenant_ids:
            process, _, segments = self._tenants[tid]
            tenants.append(
                {
                    "tenant": tid,
                    "home_node": process.home_node,
                    "faults": process.faults,
                    "accesses": process.tlb.stats.accesses,
                    "walks": process.tlb.stats.walks,
                    "mapped_bytes": process.mapped_bytes,
                    "segments": len(segments),
                    # contiguity available where this tenant allocates
                    "home_fmfi": (
                        buddy.node_fmfi(process.home_node)
                        if nodes > 1
                        else system.fmfi
                    ),
                }
            )
        machine: dict = {
            "clock_ns": system.clock.now_ns,
            "fmfi": system.fmfi,
            "free_frames": buddy.free_frames,
            "faults": sum(t["faults"] for t in tenants),
            "accesses": sum(t["accesses"] for t in tenants),
        }
        if nodes > 1:
            machine["node_free_frames"] = [
                buddy.node_free_frames(n) for n in range(nodes)
            ]
            machine["node_fmfi"] = [buddy.node_fmfi(n) for n in range(nodes)]
            snap = system.obs.metrics.snapshot()
            machine["numa_counters"] = {
                name: value
                for name, value in sorted(snap["counters"].items())
                if name.startswith("numa_")
            }
            machine["numa_node_gauges"] = {
                name: value
                for name, value in sorted(snap["gauges"].items())
                if name.startswith("numa_")
            }
        if system.auditor is not None:
            machine["audit_runs"] = system.auditor.audits
            machine["audit_checks"] = system.auditor.checks
            machine["audit_violations"] = system.auditor.violations
        return {"tenants": tenants, "machine": machine}


def run_shard(
    shard: int,
    tenant_ids: list[int],
    policy: str,
    seed: int,
    rounds: int,
    accesses_per_round: int,
    churn_prob: float,
    max_segments: int,
    regions_per_tenant: float,
    numa_nodes: int,
    numa_remote_multiplier: float,
    pt_replication: bool,
    audit: bool,
    telemetry_out: str | None = None,
    telemetry_interval_ms: float = 1.0,
) -> dict:
    """One shard, as a pure function of its arguments (the worker body).

    With ``telemetry_out`` set, the shard's registry is additionally
    scraped on the simulated-clock cadence into one ``.prom`` stream —
    the record itself is unchanged, so telemetry never perturbs the
    byte-determinism of the manifest.
    """
    machine = MultiTenantMachine(
        tenant_ids,
        policy=policy,
        seed=seed,
        numa_nodes=numa_nodes,
        numa_remote_multiplier=numa_remote_multiplier,
        pt_replication=pt_replication,
        regions_per_tenant=regions_per_tenant,
        max_segments=max_segments,
        audit=audit,
    )
    scraper = None
    if telemetry_out:
        from repro.obs.telemetry import ScrapeFileSink, TelemetryScraper

        obs = machine.system.obs
        scraper = TelemetryScraper(
            obs.clock,
            obs.metrics,
            ScrapeFileSink(telemetry_out),
            interval_ms=telemetry_interval_ms,
        )
    record = machine.run(rounds, accesses_per_round, churn_prob)
    if scraper is not None:
        scraper.close()
    record["shard"] = shard
    return record


def run_shard_unit(out_path: str, **kwargs) -> dict:
    """Worker target: run one shard, persist its record, report outputs."""
    record = run_shard(**kwargs)
    os.makedirs(os.path.dirname(out_path) or ".", exist_ok=True)
    with open(out_path, "w") as f:
        json.dump(record, f, indent=2, sort_keys=True)
        f.write("\n")
    return {"outputs": [out_path]}


def build_shard_specs(config: MultiTenantConfig) -> list:
    """One :class:`UnitSpec` per shard, seeds derived per shard id."""
    specs: list[UnitSpec] = []
    for shard in range(config.shards):
        tenant_ids = shard_tenants(config, shard)
        if not tenant_ids:
            continue
        unit_id = shard_id(config, shard)
        seed = derive_seed(config.seed, unit_id)
        kwargs = {
            "shard": shard,
            "tenant_ids": tenant_ids,
            "policy": config.policy,
            "seed": seed,
            "rounds": config.rounds,
            "accesses_per_round": config.accesses_per_round,
            "churn_prob": config.churn_prob,
            "max_segments": config.max_segments,
            "regions_per_tenant": config.regions_per_tenant,
            "numa_nodes": config.numa_nodes,
            "numa_remote_multiplier": config.numa_remote_multiplier,
            "pt_replication": config.pt_replication,
            "audit": config.audit,
            **(
                {
                    "telemetry_out": os.path.join(
                        config.telemetry_out, f"shard{shard:04d}.prom"
                    ),
                    "telemetry_interval_ms": config.telemetry_interval_ms,
                }
                if config.telemetry_out
                else {}
            ),
            "out_path": os.path.join(
                config.out_dir, "shards", f"shard{shard:04d}.json"
            ),
        }
        specs.append(
            UnitSpec(
                unit_id=unit_id,
                target=SHARD_TARGET,
                kwargs=kwargs,
                seed=seed,
                timeout_s=config.timeout_s,
            )
        )
    return specs


def run_multi_tenant(config: MultiTenantConfig, progress=None) -> dict:
    """Run every shard on the pool engine and compile the manifest.

    The manifest is a pure function of (config, seed): shards merge in
    canonical order from their JSON records, wall-clock facts are
    excluded, so ``jobs=1`` and ``jobs=N`` produce identical bytes.
    """
    if config.tenants < 1:
        raise ValueError("need at least one tenant")
    if config.shards < 1:
        raise ValueError("need at least one shard")
    os.makedirs(config.out_dir, exist_ok=True)
    specs = build_shard_specs(config)
    results = execute_units(specs, jobs=config.jobs, progress=progress)
    failed = [
        f"{unit_id} ({results[unit_id].status}: {results[unit_id].error})"
        for unit_id in sorted(results)
        if results[unit_id].status != "ok"
    ]
    if failed:
        raise RuntimeError(
            f"{len(failed)} tenant shard(s) failed: " + "; ".join(failed)
        )
    records = []
    for spec in specs:
        with open(spec.kwargs["out_path"]) as f:
            records.append(json.load(f))
    manifest = build_manifest(config, records)
    path = os.path.join(config.out_dir, "tenants_manifest.json")
    with open(path, "w") as f:
        json.dump(manifest, f, indent=2, sort_keys=True)
        f.write("\n")
    return manifest


def build_manifest(config: MultiTenantConfig, records: list) -> dict:
    """Merge shard records into the run manifest (deterministic bytes)."""
    cfg = asdict(config)
    # environment facts, not run parameters (telemetry_out is a host path)
    for env_key in ("jobs", "out_dir", "timeout_s", "telemetry_out"):
        cfg.pop(env_key)
    all_tenants = [t for r in records for t in r["tenants"]]
    totals = {
        "tenants": len(all_tenants),
        "faults": sum(t["faults"] for t in all_tenants),
        "accesses": sum(t["accesses"] for t in all_tenants),
        "mapped_bytes": sum(t["mapped_bytes"] for t in all_tenants),
        "mean_fmfi": (
            sum(r["machine"]["fmfi"] for r in records) / len(records)
            if records
            else 0.0
        ),
        "audit_checks": sum(
            r["machine"].get("audit_checks", 0) for r in records
        ),
        "audit_violations": sum(
            r["machine"].get("audit_violations", 0) for r in records
        ),
    }
    if config.numa_nodes > 1:
        nodes = config.numa_nodes
        totals["node_free_frames"] = [
            sum(r["machine"]["node_free_frames"][n] for r in records)
            for n in range(nodes)
        ]
        totals["mean_node_fmfi"] = [
            sum(r["machine"]["node_fmfi"][n] for r in records) / len(records)
            for n in range(nodes)
        ]
    return {
        "kind": "tenants_manifest",
        "config": cfg,
        "totals": totals,
        "shards": records,
    }
