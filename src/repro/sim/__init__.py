"""Simulation engine: processes, the system (machine + OS policy), and the
performance model that converts simulator counters into the paper's metrics.
"""

from repro.sim.process import Process
from repro.sim.system import System
from repro.sim.perfmodel import PerfModel, RunMetrics

__all__ = ["Process", "System", "PerfModel", "RunMetrics"]
