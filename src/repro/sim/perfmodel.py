"""From simulator counters to the paper's metrics.

The access stream a workload drives through the simulator is a *sample* of
the real application's execution: the real benchmarks run for minutes and
touch each page thousands of times, while the sample touches the same
footprint with a few hundred thousand accesses.  Per-access quantities
(translation cycles per access) are therefore measured from the sample,
while one-time OS work (faults, zeroing, promotion copies, compaction) is
already simulated at its true absolute scale — the model combines them as::

    runtime_ns = R * (cpi_base + walk_exposure * translation_cpa) / freq_ghz
                 + fault_ns / fault_parallelism
                 + daemon_exposure * daemon_ns

where ``R`` is the number of accesses the sample represents (footprint
pages x touches-per-page), ``walk_exposure`` is the fraction of translation
latency the out-of-order core cannot hide, ``fault_parallelism`` spreads
first-touch work over the workload's threads, and ``daemon_exposure`` is
how much background-daemon CPU the application effectively pays for (low
natively, high for a VM tenant's capped vCPU).  All four are per-workload
or per-environment calibration constants documented in
``docs/calibration.md``.

* normalized performance (Figures 1b, 2b, 9a, 10a, 11, 12, 13) is the
  inverse runtime ratio against a baseline run;
* the fraction of cycles spent on page walks (Figures 1a, 2a, 9b, 10b) is
  walk cycles over total cycles, the quantity the paper reads from the
  ``DTLB_*_MISSES.WALK_ACTIVE`` counters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import FREQ_GHZ
from repro.obs.metrics import nearest_rank


@dataclass
class RunMetrics:
    """Everything one (workload, policy) run produces."""

    policy: str
    workload: str
    accesses: int
    translation_cycles: float
    walk_cycles: float
    walks: int
    fault_ns: float
    daemon_ns: float
    represented_accesses: int
    cpi_base: float
    freq_ghz: float = FREQ_GHZ
    #: app threads that serve faults concurrently (Table 2): first-touch
    #: zeroing parallelizes across them on the 36-thread testbed
    fault_parallelism: int = 1
    #: fraction of daemon CPU that steals from the application; natively
    #: khugepaged runs on one of many otherwise-idle cores, so it is low,
    #: while a VM tenant pays for every vCPU cycle (the Figure 13 concern)
    daemon_exposure: float = 0.1
    #: fraction of translation cycles exposed on the critical path (an
    #: out-of-order core hides part of the walk latency; paper Section 4.1)
    walk_exposure: float = 1.0
    mapped_bytes_by_size: dict[int, int] | None = None
    fault_mapped: dict[int, int] | None = None
    promoted: dict[int, int] | None = None
    bloat_bytes: int = 0
    compaction_bytes_copied: int = 0
    fault_large_attempts: int = 0
    fault_large_failures: int = 0
    promo_large_attempts: int = 0
    promo_large_failures: int = 0
    #: async zero-fill pool accounting (Figure 5's fast fault path): how
    #: often the fault/promotion path found a pre-zeroed block waiting
    zerofill_pool_hits: int = 0
    zerofill_pool_misses: int = 0
    zerofill_blocks_zeroed: int = 0
    request_latencies_ns: list[float] | None = None

    # -- derived quantities ------------------------------------------------
    @property
    def translation_cycles_per_access(self) -> float:
        return self.translation_cycles / self.accesses if self.accesses else 0.0

    @property
    def walk_cycles_per_access(self) -> float:
        return self.walk_cycles / self.accesses if self.accesses else 0.0

    @property
    def app_cycles_per_access(self) -> float:
        return self.cpi_base + self.walk_exposure * self.translation_cycles_per_access

    @property
    def effective_fault_ns(self) -> float:
        return self.fault_ns / max(1, self.fault_parallelism)

    @property
    def runtime_ns(self) -> float:
        compute_ns = (
            self.represented_accesses * self.app_cycles_per_access / self.freq_ghz
        )
        return (
            compute_ns
            + self.effective_fault_ns
            + self.daemon_exposure * self.daemon_ns
        )

    @property
    def walk_cycle_fraction(self) -> float:
        """Fraction of execution cycles spent in page walks.

        The hardware counters (``DTLB_*_MISSES.WALK_ACTIVE``) count cycles a
        walker is active whether or not the core hides them, so the fraction
        uses undiscounted translation cycles in the denominator.
        """
        total_cycles = (
            self.represented_accesses
            * (self.cpi_base + self.translation_cycles_per_access)
            + (self.effective_fault_ns + self.daemon_exposure * self.daemon_ns)
            * self.freq_ghz
        )
        walk = self.represented_accesses * self.walk_cycles_per_access
        return walk / total_cycles if total_cycles else 0.0

    def speedup_over(self, baseline: "RunMetrics") -> float:
        """Normalized performance: baseline runtime / this runtime."""
        return baseline.runtime_ns / self.runtime_ns

    def walk_fraction_vs(self, baseline: "RunMetrics") -> float:
        """Walk-cycle fraction normalized to a baseline (the figures' y-axis)."""
        base = baseline.walk_cycle_fraction
        return self.walk_cycle_fraction / base if base else 0.0

    def percentile_latency_ns(self, pct: float = 99.0) -> float:
        """Tail latency over recorded request samples (Table 5).

        Ceil-based nearest-rank: the p-th percentile is the smallest sample
        such that at least p% of the samples are <= it.  (The previous
        ``round``-based index under-reported tails on small sample sets —
        rounding 48.51 down to 48 reports the 49th of 50 samples as "p99".)
        """
        if not self.request_latencies_ns:
            return 0.0
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"pct must be in [0, 100], got {pct}")
        data = sorted(self.request_latencies_ns)
        return data[nearest_rank(len(data), pct)]


class PerfModel:
    """Builds :class:`RunMetrics` from a finished system/process pair."""

    def __init__(
        self,
        cpi_base: float,
        represented_accesses: int,
        freq_ghz: float = FREQ_GHZ,
        daemon_exposure: float = 0.1,
        walk_exposure: float = 1.0,
        fault_parallelism: int = 1,
    ) -> None:
        if cpi_base <= 0:
            raise ValueError(f"cpi_base must be positive, got {cpi_base}")
        if represented_accesses <= 0:
            raise ValueError("represented_accesses must be positive")
        self.cpi_base = cpi_base
        self.represented_accesses = represented_accesses
        self.freq_ghz = freq_ghz
        self.daemon_exposure = daemon_exposure
        self.walk_exposure = walk_exposure
        self.fault_parallelism = fault_parallelism

    def collect(
        self,
        system,
        process,
        workload_name: str,
        request_latencies_ns: list[float] | None = None,
    ) -> RunMetrics:
        stats = process.tlb.stats
        policy = system.policy.stats
        compaction_bytes = (
            system.normal_compactor.stats.bytes_copied
            + system.smart_compactor.stats.bytes_copied
        )
        return RunMetrics(
            policy=system.policy.name,
            workload=workload_name,
            accesses=stats.accesses,
            translation_cycles=stats.translation_cycles,
            walk_cycles=stats.walk_cycles,
            walks=stats.walks,
            fault_ns=policy.fault_ns,
            daemon_ns=policy.daemon_ns,
            represented_accesses=self.represented_accesses,
            cpi_base=self.cpi_base,
            freq_ghz=self.freq_ghz,
            daemon_exposure=self.daemon_exposure,
            walk_exposure=self.walk_exposure,
            fault_parallelism=self.fault_parallelism,
            mapped_bytes_by_size=system.mapped_bytes_by_size(process),
            fault_mapped=dict(policy.fault_mapped),
            promoted=dict(policy.promoted),
            bloat_bytes=process.bloat_bytes,
            compaction_bytes_copied=compaction_bytes,
            fault_large_attempts=policy.fault_large_attempts,
            fault_large_failures=policy.fault_large_failures,
            promo_large_attempts=policy.promo_large_attempts,
            promo_large_failures=policy.promo_large_failures,
            zerofill_pool_hits=system.zerofill.pool_hits,
            zerofill_pool_misses=system.zerofill.pool_misses,
            zerofill_blocks_zeroed=system.zerofill.blocks_zeroed,
            request_latencies_ns=request_latencies_ns,
        )


def mapped_gb_equivalent(nbytes: int, scale_factor: int) -> float:
    """Convert scaled simulator bytes back to paper-scale GB for reporting."""
    return nbytes * scale_factor / (1 << 30)
