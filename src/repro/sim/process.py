"""A simulated process: address space, page table, TLB, touch history.

The process is the unit the OS policies operate on.  ``touched_pages``
records every base page the application has actually written — the ground
truth for memory-bloat accounting (mapped-but-never-touched bytes) and for
HawkEye's bloat recovery.
"""

from __future__ import annotations

from repro.config import PageGeometry
from repro.core.policy import ProcessFrameOwner
from repro.vm.addrspace import AddressSpace
from repro.vm.pagetable import PageTable


class Process:
    """One simulated application process."""

    def __init__(self, pid: int, name: str, geometry: PageGeometry, tlb) -> None:
        self.pid = pid
        self.name = name
        self.geometry = geometry
        self.aspace = AddressSpace(geometry)
        self.pagetable = PageTable(geometry)
        self.tlb = tlb  # TLBHierarchy (native) or NestedTranslationUnit (virt)
        self.frame_owner = ProcessFrameOwner(self)
        self.touched_pages: set[int] = set()  # base VPNs ever accessed
        self.faults = 0
        #: NUMA placement: the node this process's CPU is pinned to, and
        #: the node holding its page tables (first-touch: the boot node,
        #: where the kernel built them — the Mitosis problem statement).
        #: Both stay 0 on single-node machines.
        self.home_node = 0
        self.pt_node = 0

    # -- touch bookkeeping ------------------------------------------------
    def record_touch(self, va: int) -> None:
        self.touched_pages.add(va >> self.geometry.base_shift)

    def touched_base_pages_in(self, va: int, nbytes: int) -> int:
        """How many base pages in [va, va+nbytes) were ever touched."""
        shift = self.geometry.base_shift
        first = va >> shift
        last = (va + nbytes - 1) >> shift
        touched = self.touched_pages
        return sum(1 for vpn in range(first, last + 1) if vpn in touched)

    def touched_base_vas_in(self, va: int, nbytes: int) -> list[int]:
        """Base-page-aligned VAs of touched pages in the range."""
        shift = self.geometry.base_shift
        first = va >> shift
        last = (va + nbytes - 1) >> shift
        touched = self.touched_pages
        return [vpn << shift for vpn in range(first, last + 1) if vpn in touched]

    # -- accounting ------------------------------------------------------------
    @property
    def mapped_bytes(self) -> int:
        return self.pagetable.mapped_bytes()

    @property
    def touched_bytes(self) -> int:
        return len(self.touched_pages) * self.geometry.base_size

    @property
    def bloat_bytes(self) -> int:
        """Bytes mapped by the OS that the application never touched."""
        return max(0, self.mapped_bytes - self.touched_bytes)
