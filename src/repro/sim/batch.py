"""Batch-first hot path: typed touch results and the vectorized engine.

``System.touch_batch`` is the primary API every workload drives accesses
through; this module implements the engine behind it.  A numpy address
stream is cut into *segments* inside which the simulation is closed-form:

* a segment never crosses a **fault** — the first unmapped address ends
  it, the fault is handled on the scalar slow path (policy, spans, audit),
  and translation restarts because the handler may have mapped neighbours;
* a segment never crosses the **daemon cadence** — after exactly
  ``daemon_period_accesses`` touches the background daemons run, and they
  may promote/demote pages and shoot down TLB entries, both of which
  invalidate cached translations.

Within a segment the page table is static, so mappings are resolved
per-*extent* rather than per-access: each page-table level is probed once
per distinct VPN (``np.unique``) instead of once per access, and the TLB
hierarchy is simulated by the vectorized reuse-distance kernel in
:mod:`repro.tlb.batch`.  The engine is counter-for-counter identical to a
scalar ``touch`` loop — including float accumulation order in
``TranslationStats`` and ``SimClock`` — which the equivalence suite in
``tests/sim/test_batch_equivalence.py`` locks down.
"""

from __future__ import annotations

import sys
import warnings
from dataclasses import dataclass, field

import numpy as np

from repro.tlb.batch import hierarchy_touch_batch

_RAW_FLOAT_MSG = (
    "TouchResult consumed as a raw float; read .cycles / .faulted / "
    ".page_size instead (deprecation shim, lint rule TRD005)"
)


class TouchResult(float):
    """Typed result of one ``System.touch``.

    Subclasses ``float`` (the translation cycles) as the deprecation shim:
    legacy callers that treat the return value as a bare cycle count keep
    working, while new code reads the typed fields.  The project linter
    (TRD005) flags raw-float usage so call sites migrate to ``.cycles``;
    at runtime the shim emits one :class:`DeprecationWarning` per call
    site (never per access — a million-touch loop warns once), attributed
    to the caller via ``stacklevel=2``.
    """

    __slots__ = ("faulted", "page_size")

    faulted: bool
    page_size: int

    #: call sites (filename, lineno) that already warned — per-site dedup
    #: independent of the interpreter's warning filters, so hot loops pay
    #: one set lookup, not a ``warnings.warn`` call per access
    _warned_sites: set[tuple[str, int]] = set()

    def __new__(
        cls, cycles: float, faulted: bool = False, page_size: int = 0
    ) -> "TouchResult":
        self = super().__new__(cls, cycles)
        self.faulted = faulted
        self.page_size = page_size
        return self

    @classmethod
    def reset_warned_sites(cls) -> None:
        """Forget which call sites warned (test isolation hook)."""
        cls._warned_sites.clear()

    def _first_use_at_site(self) -> bool:
        """True when the raw-float caller two frames up has not warned yet."""
        frame = sys._getframe(2)
        site = (frame.f_code.co_filename, frame.f_lineno)
        if site in TouchResult._warned_sites:
            return False
        TouchResult._warned_sites.add(site)
        return True

    @property
    def cycles(self) -> float:
        """Translation cycles beyond an L1 TLB hit."""
        return float.__float__(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TouchResult(cycles={float.__float__(self)!r}, "
            f"faulted={self.faulted}, "
            f"page_size={self.page_size})"
        )


def _raw_float_shim(opname: str):
    """A float operator that warns once per call site before delegating."""
    float_op = getattr(float, opname)

    def shim(self, *args):
        if self._first_use_at_site():
            warnings.warn(_RAW_FLOAT_MSG, DeprecationWarning, stacklevel=2)
        return float_op(self, *args)

    shim.__name__ = opname
    shim.__qualname__ = f"TouchResult.{opname}"
    shim.__doc__ = float_op.__doc__
    return shim


#: the raw-float surface covered by the shim: numeric coercion and
#: arithmetic.  Comparisons and hashing stay silent — they are how dicts
#: and test assertions handle any value and would drown the signal.
for _opname in (
    "__float__", "__int__", "__add__", "__radd__", "__sub__", "__rsub__",
    "__mul__", "__rmul__", "__truediv__", "__rtruediv__", "__neg__",
    "__abs__",
):
    setattr(TouchResult, _opname, _raw_float_shim(_opname))
del _opname


@dataclass
class BatchResult:
    """Aggregate outcome of one ``touch_batch`` call.

    The scalar ``touch`` returns the one-element view of the same contract
    (:class:`TouchResult`); ``touch_batch`` aggregates because per-access
    results of a million-access stream would defeat the point of batching.
    """

    accesses: int = 0
    translation_cycles: float = 0.0
    l1_hits: int = 0
    l2_hits: int = 0
    walks: int = 0
    faults: int = 0
    fault_ns: float = 0.0
    walks_by_size: dict[int, int] = field(
        default_factory=lambda: {s: 0 for s in range(3)}
    )

    @property
    def cycles(self) -> float:
        """Alias matching :class:`TouchResult` — total translation cycles."""
        return self.translation_cycles


#: first vectorized-translation window; grows toward ``_MAX_WINDOW`` while
#: the stream is fault-free and shrinks back on a fault, so fault storms
#: (cold first-touch passes) do not pay for repeatedly translating a long
#: tail they never reach
_MIN_WINDOW = 256
_MAX_WINDOW = 65536


class BatchEngine:
    """Vectorized executor behind ``System.touch_batch``."""

    def __init__(self, system) -> None:
        self.system = system
        self._window = 4096

    def run(self, process, vas: np.ndarray) -> None:
        system = self.system
        n = len(vas)
        i = 0
        while i < n:
            # The daemon cadence bounds the segment: daemons may remap
            # pages and shoot down TLB entries, so no batch crosses one.
            room = max(
                1,
                system.daemon_period_accesses - system._accesses_since_daemon,
            )
            end = min(n, i + min(room, self._window))
            seg = vas[i:end]
            sizes, fault_at, mapped_vpns = translate_segment(
                process.pagetable, seg
            )
            if fault_at is not None:
                end = i + fault_at
                seg = seg[:fault_at]
                sizes = sizes[:fault_at]
                self._window = max(_MIN_WINDOW, fault_at * 2)
                # The per-size VPN extents cover the untruncated probe
                # window; recompute them over the survivors instead.
                mapped_vpns = None
            else:
                self._window = min(_MAX_WINDOW, self._window * 2)
            if len(seg):
                self._touch_mapped(process, seg, sizes, mapped_vpns)
                system._accesses_since_daemon += len(seg)
            i = end
            if fault_at is not None and i < n:
                self._touch_faulting(process, int(vas[i]))
                i += 1
            if system._accesses_since_daemon >= system.daemon_period_accesses:
                system.run_daemons()

    def _touch_mapped(
        self, process, seg: np.ndarray, sizes: np.ndarray, mapped_vpns=None
    ) -> None:
        """One fully-mapped, daemon-free segment: the vectorized fast path."""
        pagetable = process.pagetable
        # Touched-page bookkeeping and access bits, once per distinct page
        # instead of once per access (both are idempotent set/flag writes).
        base_vpns = np.unique(seg >> pagetable._shifts[0])
        process.touched_pages.update(base_vpns.tolist())
        for size in range(pagetable.n_levels):
            level = pagetable._levels[size]
            if mapped_vpns is not None:
                vpns = mapped_vpns.get(size)
                if vpns is None:
                    continue
                vpn_list = vpns.tolist()
            else:
                idx = np.flatnonzero(sizes == size)
                if len(idx) == 0:
                    continue
                vpn_list = np.unique(
                    seg[idx] >> pagetable._shifts[size]
                ).tolist()
            for vpn in vpn_list:  # trd: ignore[TRD008] accessed-bit writes on distinct pages only; bounded by segment footprint, not access count
                level[vpn].accessed = True
        hierarchy_touch_batch(process.tlb, sizes, seg)

    def _touch_faulting(self, process, va: int) -> None:
        """The access that ended the segment: scalar fault slow path.

        Mirrors ``System.touch`` exactly: fault through the policy, record
        the touch, then run the address through the TLB.
        """
        system = self.system
        mapping = system._fault(process, va)
        process.record_touch(va)
        process.tlb.access(va, mapping)
        system._accesses_since_daemon += 1


def translate_segment(pagetable, seg: np.ndarray):
    """Vectorized page-table walk over ``seg``.

    Returns ``(sizes, fault_at, mapped_vpns)``: per-access mapping page
    sizes, the index of the first unmapped address (``None`` if fully
    mapped), and the distinct mapped VPNs probed per size (reused by the
    caller for accessed-bit marking).  Each page-table level is probed
    once per distinct VPN, honouring the radix tree's leaf precedence
    (large shadows mid shadows base) exactly like the scalar
    ``PageTable.translate``.
    """
    n = len(seg)
    sizes = np.empty(n, dtype=np.int64)
    remaining = np.ones(n, dtype=bool)
    mapped_vpns: dict[int, np.ndarray] = {}
    for size in pagetable.levels_desc:
        level = pagetable._levels[size]
        if not level:
            continue
        idx = np.flatnonzero(remaining)
        if len(idx) == 0:
            break
        vpns = seg[idx] >> pagetable._shifts[size]
        uniq, inverse = np.unique(vpns, return_inverse=True)
        present = np.fromiter(
            (u in level for u in uniq.tolist()),
            dtype=bool,
            count=len(uniq),
        )
        hit = present[inverse]
        if hit.any():
            sizes[idx[hit]] = size
            remaining[idx[hit]] = False
            mapped_vpns[size] = uniq[present]
    unmapped = np.flatnonzero(remaining)
    if len(unmapped) == 0:
        return sizes, None, mapped_vpns
    return sizes, int(unmapped[0]), mapped_vpns
