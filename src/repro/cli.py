"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``        one (workload, policy) measurement, native or virtualized
``experiment`` regenerate a figure/table by name (or ``all``), serially
``sweep``      regenerate figures/tables on the parallel orchestrator
``list``       show available workloads, policies and experiments
``geometry``   list/describe page-size geometries, validate custom JSON
``metrics``    list exportable metrics, or summarize a metrics.json file
``report``     render a metrics.json / sweep manifest into an HTML report
``bench``      hot-path microbenchmark (batched vs scalar, BENCH_hotpath.json)
``lint``       project-specific static analysis (TRD rules, docs/linting.md)
``loadgen``    open-loop service traffic against a homogeneous tenant fleet
``serve``      heterogeneous service fleet from a JSON config (docs/service.md)
``tenants``    many tenants churning sharded NUMA machines (docs/numa.md)
``watch``      live terminal dashboard over telemetry scrape streams

Examples::

    python -m repro list
    python -m repro run GUPS Trident --fragmented
    python -m repro run GUPS --policy trident --trace --metrics-out m.json
    python -m repro run Canneal Trident --virt --host-policy Trident
    python -m repro run GUPS Trident --audit --audit-every 1024
    python -m repro run GUPS Trident --timeline-out t.json --report-out r.html
    python -m repro run GUPS Trident --geometry sv-napot
    python -m repro geometry list
    python -m repro geometry describe arm16k
    python -m repro geometry validate my_geometry.json
    python -m repro experiment figure9 --metrics-out report/metrics
    python -m repro sweep --quick --jobs 4 --seed 7
    python -m repro sweep figure2 table3 --jobs 2 --timeout 600
    python -m repro sweep --resume report/sweep_manifest.json
    python -m repro sweep --quick --timeline --out report
    python -m repro report report/sweep_manifest.json -o sweep.html
    python -m repro metrics m.json
    python -m repro bench --accesses 200000 --min-speedup 2
    python -m repro lint src/ --format json
    python -m repro loadgen --workloads GUPS --rate 5000,20000,80000 --tenants 2
    python -m repro loadgen --workloads GUPS --rate 20000 --closed-loop
    python -m repro loadgen --workloads GUPS --rate 40000 \\
        --telemetry-out report/service/telemetry --alerts rules.json
    python -m repro serve --config fleet.json --jobs 4 --out report/service
    python -m repro metrics m.json --format prom
    python -m repro watch report/service/telemetry --once
"""

from __future__ import annotations

import argparse
import sys

from repro.config import SCALE_FACTOR
from repro.obs.options import add_obs_args, obs_options_from_args


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Trident (MICRO 2021) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure one workload under one policy")
    run.add_argument("workload", help="Table 2 name, e.g. GUPS")
    run.add_argument(
        "policy",
        nargs="?",
        default=None,
        help="policy config, e.g. Trident or 2MB-THP",
    )
    run.add_argument(
        "--policy",
        dest="policy_opt",
        default=None,
        help="alternative to the positional policy argument",
    )
    run.add_argument("--fragmented", action="store_true")
    run.add_argument(
        "--geometry",
        default=None,
        metavar="NAME",
        help="page-size geometry: a preset (x86, sv-napot, arm16k) or a "
        "custom .json file (default: the x86 three-tier pipeline)",
    )
    run.add_argument("--virt", action="store_true", help="run inside a VM")
    run.add_argument("--host-policy", default="Trident")
    run.add_argument("--accesses", type=int, default=80_000)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--baseline",
        default=None,
        help="also run this policy and report relative numbers",
    )
    add_obs_args(run, scope="run")

    exp = sub.add_parser("experiment", help="regenerate a figure/table")
    exp.add_argument("name", help="e.g. figure9, table3, latency_micro, all")
    exp.add_argument(
        "--metrics-out",
        default=None,
        metavar="DIR",
        help="write per-run metrics_<workload>_<policy>.json files into DIR",
    )
    exp.add_argument(
        "--quick",
        action="store_true",
        help="reduced-size pass (the module's QUICK_KWARGS)",
    )
    exp.add_argument("--seed", type=int, default=7)
    add_obs_args(exp, scope="experiment")

    sweep = sub.add_parser(
        "sweep",
        help="regenerate figures/tables in parallel (process pool, "
        "deterministic per-unit seeds, run manifest)",
    )
    sweep.add_argument(
        "modules",
        nargs="*",
        help="subset of experiment modules (default: all)",
    )
    sweep.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (1 = serial, same outputs bit-for-bit)",
    )
    sweep.add_argument(
        "--timeout",
        type=float,
        default=900.0,
        metavar="S",
        help="per-unit wall-clock timeout in seconds",
    )
    sweep.add_argument("--seed", type=int, default=7, help="root seed")
    sweep.add_argument(
        "--quick",
        action="store_true",
        help="reduced-size pass (every module's QUICK_KWARGS)",
    )
    sweep.add_argument(
        "--retries",
        type=int,
        default=1,
        help="retries per unit after a failure/timeout/crash",
    )
    sweep.add_argument(
        "--backoff",
        type=float,
        default=0.5,
        metavar="S",
        help="base retry backoff (doubles per attempt)",
    )
    sweep.add_argument(
        "--out",
        default="report",
        metavar="DIR",
        help="output directory (CSVs, partial/, metrics/, logs/, manifest)",
    )
    sweep.add_argument(
        "--resume",
        default=None,
        metavar="MANIFEST",
        help="skip units already 'ok' in this prior sweep manifest",
    )
    add_obs_args(sweep, scope="sweep")

    sub.add_parser("list", help="list workloads, policies, experiments")

    geo = sub.add_parser(
        "geometry",
        help="list/describe page-size geometries, validate custom JSON",
    )
    geo_sub = geo.add_subparsers(dest="geometry_command", required=True)
    geo_sub.add_parser("list", help="list the built-in geometry presets")
    geo_desc = geo_sub.add_parser(
        "describe",
        help="print one geometry's level ladder and TLB/walk parameters",
    )
    geo_desc.add_argument(
        "name",
        help="a preset key (x86, sv-napot, arm16k) or a .json geometry file",
    )
    geo_val = geo_sub.add_parser(
        "validate",
        help="validate a custom JSON geometry file (exit 0 iff loadable)",
    )
    geo_val.add_argument("path", metavar="FILE", help="geometry .json file")

    met = sub.add_parser(
        "metrics",
        help="list exportable metrics, or summarize a metrics.json snapshot",
    )
    met.add_argument(
        "file",
        nargs="?",
        default=None,
        metavar="METRICS_JSON",
        help="exported snapshot to summarize (histograms render as "
        "p50/p90/p99, not raw buckets); omit to list the catalogue",
    )
    met.add_argument(
        "--kind",
        choices=("counter", "gauge", "histogram"),
        default=None,
        help="only show metrics of this kind",
    )
    met.add_argument(
        "--format",
        choices=("text", "prom"),
        default="text",
        help="snapshot output: human tables (text) or Prometheus "
        "exposition text (prom); prom requires METRICS_JSON",
    )

    rep = sub.add_parser(
        "report",
        help="render a metrics.json or sweep manifest into a single-file "
        "HTML timeline report",
    )
    rep.add_argument(
        "path",
        help="a run's metrics.json, or a sweep_manifest.json to aggregate",
    )
    rep.add_argument(
        "-o",
        "--out",
        default="repro_report.html",
        metavar="PATH",
        help="where to write the HTML report (default: repro_report.html)",
    )

    bench = sub.add_parser(
        "bench",
        help="hot-path microbenchmark: batched touch_batch vs scalar loop",
    )
    bench.add_argument(
        "--accesses",
        type=int,
        default=1_000_000,
        metavar="N",
        help="zipf stream length per run (default: 1000000)",
    )
    bench.add_argument(
        "--policy",
        default=None,
        metavar="NAMES",
        help="comma-separated policy configs to bench "
        "(default: Trident,2MB-THP,4KB)",
    )
    bench.add_argument(
        "--seed",
        type=int,
        default=5,
        help="system seed (stream seed stays fixed for comparability)",
    )
    bench.add_argument(
        "--min-speedup",
        type=float,
        default=1.0,
        metavar="X",
        help="exit nonzero if batched/scalar falls below X (default: 1.0)",
    )
    bench.add_argument(
        "-o",
        "--out",
        default="BENCH_hotpath.json",
        metavar="PATH",
        help="JSON report path (default: BENCH_hotpath.json)",
    )

    lint = sub.add_parser(
        "lint",
        help="project-specific static analysis (see docs/linting.md)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="findings output format",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help="print one rule's rationale and a good/bad example, then exit",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help=(
            "filter findings against a committed baseline; only new "
            "(non-baselined) findings fail the run"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="PATH",
        help="write the current findings as the new baseline and exit 0",
    )

    loadgen = sub.add_parser(
        "loadgen",
        help="open-loop service traffic against a simulated tenant fleet",
    )
    loadgen.add_argument(
        "--workloads",
        default="GUPS",
        metavar="NAMES",
        help="comma-separated Table 2 workloads (default: GUPS)",
    )
    loadgen.add_argument(
        "--policies",
        default="Trident,2MB-THP,4KB",
        metavar="NAMES",
        help="comma-separated policy configs to compare",
    )
    loadgen.add_argument(
        "--rate",
        default="20000",
        metavar="RPS",
        help="offered load per tenant; a comma list sweeps a saturation curve",
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=0.02,
        metavar="S",
        help="simulated seconds of traffic per cell",
    )
    loadgen.add_argument(
        "--tenants",
        type=int,
        default=1,
        help="tenant replicas per (workload, policy, rate) group",
    )
    loadgen.add_argument(
        "--accesses-per-request",
        type=int,
        default=16,
        metavar="K",
        help="workload accesses replayed per request",
    )
    loadgen.add_argument(
        "--slo-ms",
        type=float,
        default=1.0,
        help="latency SLO bound in milliseconds",
    )
    loadgen.add_argument(
        "--closed-loop",
        action="store_true",
        help="closed-loop baseline: next request issues on completion",
    )
    loadgen.add_argument(
        "--arrivals",
        default=None,
        metavar="FILE",
        help="trace-driven arrivals (seconds offsets, one per line) "
        "instead of Poisson",
    )
    loadgen.add_argument("--seed", type=int, default=7, help="root seed")
    loadgen.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=1,
        help="worker processes (1 = serial, same report bit-for-bit)",
    )
    loadgen.add_argument(
        "--out",
        "-o",
        default="report/service",
        metavar="DIR",
        help="output directory (cells/, service_report.json, saturation.csv)",
    )
    loadgen.add_argument(
        "--timeline",
        action="store_true",
        help="record spans + timeline; one Chrome trace per cell "
        "under OUT/traces",
    )
    loadgen.add_argument(
        "--scale-factor",
        type=int,
        default=None,
        metavar="N",
        help=f"footprint divisor (default: project-wide {SCALE_FACTOR})",
    )
    loadgen.add_argument(
        "--numa-nodes",
        type=int,
        default=1,
        metavar="N",
        help="NUMA nodes per tenant machine; cells pin round-robin "
        "(default 1 = flat machine, see docs/numa.md)",
    )
    loadgen.add_argument(
        "--numa-remote",
        type=float,
        default=1.4,
        metavar="X",
        help="remote DRAM latency multiplier (default 1.4)",
    )
    loadgen.add_argument(
        "--pt-replication",
        action="store_true",
        help="replicate page tables per node (Mitosis): local walks, "
        "fault-time replica maintenance",
    )
    _add_service_telemetry_args(loadgen)

    tenants = sub.add_parser(
        "tenants",
        help="many tenants churning one sharded NUMA machine (docs/numa.md)",
    )
    tenants.add_argument(
        "--tenants", type=int, default=64, metavar="N",
        help="tenant processes across all shards (default 64)",
    )
    tenants.add_argument(
        "--shards", type=int, default=8, metavar="N",
        help="independent machine shards tenants split over (default 8)",
    )
    tenants.add_argument(
        "--policy", default="Trident", help="policy config for every shard"
    )
    tenants.add_argument(
        "--rounds", type=int, default=4, metavar="N",
        help="churn rounds per shard (default 4)",
    )
    tenants.add_argument(
        "--accesses", type=int, default=2000, metavar="K",
        help="touches per tenant per round (default 2000)",
    )
    tenants.add_argument(
        "--numa-nodes", type=int, default=2, metavar="N",
        help="NUMA nodes per shard machine (default 2)",
    )
    tenants.add_argument(
        "--numa-remote", type=float, default=1.4, metavar="X",
        help="remote DRAM latency multiplier (default 1.4)",
    )
    tenants.add_argument(
        "--pt-replication", action="store_true",
        help="replicate page tables per node (Mitosis)",
    )
    tenants.add_argument(
        "--audit", action="store_true",
        help="run sampled invariant audits on every shard",
    )
    tenants.add_argument(
        "--quick", action="store_true",
        help="smoke-sized run: 2 rounds, 500 accesses per tenant-round",
    )
    tenants.add_argument("--seed", type=int, default=7, help="root seed")
    tenants.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes (any value, same manifest bit-for-bit)",
    )
    tenants.add_argument(
        "--out", "-o", default="report/tenants", metavar="DIR",
        help="output directory (shards/, tenants_manifest.json)",
    )
    tenants.add_argument(
        "--telemetry-out", default=None, metavar="DIR",
        help="write one Prometheus scrape stream per shard under DIR",
    )
    tenants.add_argument(
        "--telemetry-interval-ms", type=float, default=1.0, metavar="MS",
        help="simulated milliseconds between scrape frames (default: 1)",
    )

    serve = sub.add_parser(
        "serve",
        help="heterogeneous service fleet from a JSON config (docs/service.md)",
    )
    serve.add_argument(
        "--config",
        required=True,
        metavar="FILE",
        help='fleet spec: {"tenants": [{workload, policy, rate_rps}, ...], '
        "duration_s, slo_ms, ...}",
    )
    serve.add_argument("--seed", type=int, default=None, help="override seed")
    serve.add_argument(
        "--jobs", "-j", type=int, default=1, help="worker processes"
    )
    serve.add_argument(
        "--out", "-o", default=None, metavar="DIR", help="override out_dir"
    )
    _add_service_telemetry_args(serve)

    watch = sub.add_parser(
        "watch",
        help="live terminal dashboard over telemetry scrape streams",
    )
    watch.add_argument(
        "source",
        metavar="SOURCE",
        help="a telemetry directory of .prom streams, one stream file, "
        "or an http://HOST:PORT endpoint URL",
    )
    watch.add_argument(
        "--refresh",
        type=float,
        default=1.0,
        metavar="S",
        help="wall seconds between re-renders (default: 1)",
    )
    watch.add_argument(
        "--once",
        action="store_true",
        help="render the current state once and exit (no screen clearing)",
    )
    return parser


def _add_service_telemetry_args(parser: argparse.ArgumentParser) -> None:
    """Telemetry flags shared by ``loadgen`` and ``serve``."""
    parser.add_argument(
        "--telemetry-out",
        default=None,
        metavar="DIR",
        help="write one Prometheus scrape stream per cell under DIR "
        "(frames on the simulated-clock cadence; byte-identical at any "
        "--jobs)",
    )
    parser.add_argument(
        "--telemetry-interval-ms",
        type=float,
        default=1.0,
        metavar="MS",
        help="simulated milliseconds between scrape frames (default: 1)",
    )
    parser.add_argument(
        "--alerts",
        default=None,
        metavar="FILE",
        help="burn-rate / threshold alert rules (JSON or TOML; see "
        "docs/observability.md); requires --telemetry-out, merges cell "
        "transitions into OUT/alerts.json",
    )
    parser.add_argument(
        "--telemetry-port",
        type=int,
        default=None,
        metavar="PORT",
        help="serve the newest frames at http://127.0.0.1:PORT/metrics "
        "while the fleet runs (0 = pick a free port); requires "
        "--telemetry-out",
    )


def _cmd_list() -> int:
    from repro.experiments.configs import POLICY_CONFIGS
    from repro.experiments.run_all import MODULES
    from repro.workloads.registry import REGISTRY, SHADED_EIGHT

    print("Workloads (Table 2):")
    for name, cls in REGISTRY.items():
        spec = cls.spec
        tag = " *" if name in SHADED_EIGHT else ""
        print(
            f"  {name:10s} {spec.paper_footprint_gb:6.1f} GB  "
            f"{spec.threads:2d} threads  {spec.description}{tag}"
        )
    print("  (* = 1GB-sensitive, the paper's shaded set)\n")
    print("Policies:")
    for name in POLICY_CONFIGS:
        print(f"  {name}")
    print("\nExperiments:")
    for name, _ in MODULES:
        print(f"  {name}")
    return 0


def _cmd_geometry(args: argparse.Namespace) -> int:
    from repro.geometries import GEOMETRY_PRESETS, load_geometry_json, resolve_geometry

    if args.geometry_command == "list":
        for key, preset in GEOMETRY_PRESETS.items():
            g = preset.geometry
            ladder = " / ".join(lvl.label for lvl in g.levels)
            print(f"  {key:10s} {g.n_levels} levels  {ladder:28s} {preset.title}")
        print("\n(custom geometries: repro run --geometry my_geometry.json;")
        print(" schema in docs/geometry.md)")
        return 0
    if args.geometry_command == "validate":
        try:
            preset = load_geometry_json(args.path)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
        g = preset.geometry
        print(
            f"ok: {args.path} defines {g.name or preset.key!r} "
            f"({g.n_levels} levels: {' / '.join(lvl.label for lvl in g.levels)})"
        )
        return 0
    # describe
    try:
        preset = resolve_geometry(args.name)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}")
        return 2
    _describe_preset(preset)
    return 0


def _describe_preset(preset) -> None:
    g = preset.geometry
    print(f"{preset.key}: {preset.title}")
    print(f"  {preset.description}")
    print(
        f"  base shift {g.base_shift} ({1 << g.base_shift} B frames), "
        f"{g.n_levels} levels, scale factor {preset.scale_factor}x"
    )
    sections, groups = preset.tlb.resolved(g)
    walk = preset.walk.for_geometry(g)
    print(
        f"  {'LVL':3s} {'NAME':8s} {'LABEL':6s} {'ORDER':5s} {'BYTES':>12s} "
        f"{'FLAGS':12s} {'L1':>8s} {'L2':8s} {'WALK':4s} {'PWC':5s}"
    )
    for level, (lvl, section) in enumerate(zip(g.levels, sections)):
        flags = []
        if lvl.promotable:
            flags.append("promo")
        if lvl.thp_target:
            flags.append("thp")
        if level == g.top_level:
            flags.append("top")
        l1 = f"{section.l1.entries}x{section.l1.ways}"
        print(
            f"  {level:3d} {lvl.name:8s} {lvl.label:6s} {lvl.order:5d} "
            f"{g.bytes_for(level):12d} {','.join(flags) or '-':12s} "
            f"{l1:>8s} {section.l2:8s} {walk.levels_for(level):4d} "
            f"{walk.leaf_cached_prob(level):5.2f}"
        )
    print("  L2 groups: " + ", ".join(
        f"{name}={cfg.entries}x{cfg.ways}" for name, cfg in groups.items()
    ))


def _resolve_policy(name: str) -> str:
    from repro.experiments.configs import resolve_policy

    return resolve_policy(name)


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import (
        NativeRunner,
        RunConfig,
        VirtRunConfig,
        VirtRunner,
    )

    policy_name = args.policy or args.policy_opt
    if policy_name is None:
        print("error: no policy given (positional or --policy)")
        return 2
    preset = None
    if args.geometry:
        from repro.geometries import resolve_geometry

        try:
            preset = resolve_geometry(args.geometry)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}")
            return 2
    obs_options = obs_options_from_args(args)

    def one(policy: str, first: bool):
        obs_kwargs = obs_options.run_kwargs(primary=first)
        if args.virt:
            runner = VirtRunner(
                VirtRunConfig(
                    args.workload,
                    policy,
                    _resolve_policy(args.host_policy),
                    n_accesses=args.accesses,
                    seed=args.seed,
                    guest_fragmented=args.fragmented,
                    geometry_name=args.geometry,
                    **obs_kwargs,
                )
            )
        else:
            runner = NativeRunner(
                RunConfig(
                    args.workload,
                    policy,
                    fragmented=args.fragmented,
                    n_accesses=args.accesses,
                    seed=args.seed,
                    geometry_name=args.geometry,
                    **obs_kwargs,
                )
            )
        return runner.run(), runner.obs

    metrics, obs = one(_resolve_policy(policy_name), first=True)
    _print_metrics(metrics, preset)
    if obs_options.trace_enabled:
        _print_trace_summary(obs, obs_options.trace_out)
    if obs_options.metrics_out:
        print(f"metrics written:   {obs_options.metrics_out}")
    if obs_options.timeline_out:
        print(f"timeline written:  {obs_options.timeline_out}")
    if obs_options.report_out:
        print(f"report written:    {obs_options.report_out}")
    if args.baseline:
        base, _ = one(_resolve_policy(args.baseline), first=False)
        print(
            f"\nvs {base.policy}: speedup {metrics.speedup_over(base):.3f}x, "
            f"walk-cycle fraction {metrics.walk_fraction_vs(base):.3f}x"
        )
    return 0


def _print_trace_summary(obs, trace_out: str | None) -> None:
    summary = obs.tracer.summary()
    print(
        f"trace:             {summary['emitted']} events emitted, "
        f"{summary['buffered']} buffered, {summary['dropped']} dropped"
    )
    tallies = sorted(
        summary["events"].items(), key=lambda kv: kv[1], reverse=True
    )
    for key, count in tallies[:10]:
        print(f"  {key:40s} {count}")
    if len(tallies) > 10:
        print(f"  ... and {len(tallies) - 10} more event types")
    if trace_out:
        written = obs.tracer.export_jsonl(trace_out)
        print(f"trace written:     {trace_out} ({written} events)")


def _print_metrics(m, preset=None) -> None:
    from repro.config import SCALED_GEOMETRY

    geometry = preset.geometry if preset is not None else SCALED_GEOMETRY
    scale = preset.scale_factor if preset is not None else SCALE_FACTOR
    print(f"policy:            {m.policy}")
    print(f"workload:          {m.workload}")
    print(f"accesses sampled:  {m.accesses}")
    print(f"walk cycles/acc:   {m.walk_cycles_per_access:.2f}")
    print(f"walk fraction:     {m.walk_cycle_fraction:.3f}")
    print(f"modeled runtime:   {m.runtime_ns / 1e9:.2f} s")
    if m.mapped_bytes_by_size:
        for size in geometry.levels_desc:
            nbytes = m.mapped_bytes_by_size[size]
            print(
                f"  {geometry.label_for(size):4s} mapped: "
                f"{nbytes * scale / (1 << 30):8.1f} GB (paper scale)"
            )
    if m.bloat_bytes:
        print(
            f"bloat:             {m.bloat_bytes * scale / (1 << 30):.1f} GB"
        )


def _cmd_experiment(
    name: str,
    metrics_out: str | None = None,
    quick: bool = False,
    seed: int = 7,
    audit: bool = False,
    timeline: bool = False,
) -> int:
    import repro.experiments.runner as runner_mod
    from repro.experiments.run_all import MODULES, main as run_all_main

    if metrics_out:
        import os

        os.makedirs(metrics_out, exist_ok=True)
        runner_mod.set_metrics_dir(metrics_out)
    if audit:
        runner_mod.set_audit(True)
    if timeline:
        runner_mod.set_timeline(True)
    try:
        if name == "all":
            run_all_main((["--quick"] if quick else []) + ["--seed", str(seed)])
            return 0
        table = dict(MODULES)
        if name not in table:
            print(
                f"unknown experiment {name!r}; try one of: {', '.join(table)}"
            )
            return 2
        table[name].main(quick=quick, seed=seed)
        return 0
    finally:
        runner_mod.set_metrics_dir(None)
        runner_mod.set_audit(False)
        runner_mod.set_timeline(False)


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.orchestrator import SweepConfig, run_sweep
    from repro.experiments.report import sweep_status_table

    obs = obs_options_from_args(args)
    config = SweepConfig(
        jobs=args.jobs,
        timeout_s=args.timeout,
        root_seed=args.seed,
        quick=args.quick,
        out_dir=args.out,
        max_retries=args.retries,
        backoff_base_s=args.backoff,
        modules=tuple(args.modules),
        resume=args.resume,
        audit=obs.audit,
        timeline=obs.timeline,
    )
    manifest = run_sweep(config, progress=print)
    print()
    print(sweep_status_table(manifest["units"]))
    counts = manifest["counts"]
    print(
        f"sweep finished in {manifest['wall_s']:.1f}s wall "
        f"({manifest['serial_equivalent_s']:.1f}s serial-equivalent), "
        f"{counts.get('ok', 0)}/{len(manifest['units'])} units ok"
    )
    for name, entry in manifest["merged"].items():
        if entry["missing_workloads"]:
            print(
                f"warning: {name} compiled without failed cells: "
                f"{', '.join(entry['missing_workloads'])}"
            )
    print(f"manifest: {manifest['manifest_path']}")
    if manifest["metrics_summary"]:
        print(f"metrics summary: {manifest['metrics_summary']}")
    if manifest.get("report"):
        print(f"timeline report: {manifest['report']}")
    failed = len(manifest["units"]) - counts.get("ok", 0)
    return 3 if failed else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.sim.bench import DEFAULT_POLICIES, run_bench

    policies = (
        tuple(p for p in args.policy.split(",") if p)
        if args.policy
        else DEFAULT_POLICIES
    )
    _, ok = run_bench(
        policies,
        accesses=args.accesses,
        seed=args.seed,
        min_speedup=args.min_speedup,
        out=args.out,
    )
    return 0 if ok else 4


def _cmd_lint(args: argparse.Namespace) -> int:
    import json

    from repro.lint import (
        ALL_RULES,
        apply_baseline,
        load_baseline,
        run_lint_detailed,
        to_sarif,
        write_baseline,
    )

    if args.list_rules:
        print(f"{'CODE':8s} {'NAME':24s} DESCRIPTION")
        for rule in ALL_RULES:
            print(f"{rule.code:8s} {rule.name:24s} {rule.description}")
        return 0
    if args.explain:
        code = args.explain.strip().upper()
        for rule in ALL_RULES:
            if rule.code == code:
                print(f"{rule.code} {rule.name} — {rule.description}")
                if rule.rationale:
                    print(f"\n{rule.rationale}")
                if rule.example_bad:
                    print("\nbad:\n" + _indent_example(rule.example_bad))
                if rule.example_good:
                    print("\ngood:\n" + _indent_example(rule.example_good))
                return 0
        valid = ", ".join(rule.code for rule in ALL_RULES)
        print(f"error: unknown rule code {args.explain!r} (valid: {valid})")
        return 2
    rules = ALL_RULES
    if args.select:
        wanted = {code.strip() for code in args.select.split(",") if code.strip()}
        known = {rule.code for rule in ALL_RULES}
        unknown = wanted - known
        if unknown:
            valid = ", ".join(rule.code for rule in ALL_RULES)
            print(
                f"error: unknown rule code(s): {', '.join(sorted(unknown))} "
                f"(valid: {valid})"
            )
            return 2
        rules = tuple(rule for rule in ALL_RULES if rule.code in wanted)
    try:
        report = run_lint_detailed(args.paths, rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}")
        return 2
    findings = report.findings
    if args.write_baseline:
        write_baseline(findings, args.write_baseline)
        print(
            f"wrote baseline with {len(findings)} entr"
            f"{'y' if len(findings) == 1 else 'ies'} to {args.write_baseline}"
        )
        return 0
    baselined = 0
    if args.baseline:
        try:
            entries = load_baseline(args.baseline)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            print(f"error: cannot read baseline {args.baseline}: {exc}")
            return 2
        result = apply_baseline(findings, entries)
        findings = result.new
        baselined = len(result.matched)
        for rule_code, path, message in result.stale:
            print(
                f"note: stale baseline entry {rule_code} {path}: {message!r} "
                "(no longer found — refresh with --write-baseline)"
            )
    if args.format == "json":
        payload = {
            "findings": [f.to_dict() for f in findings],
            "rule_timings_ms": {
                code: round(ms, 3)
                for code, ms in report.rule_timings_ms.items()
            },
            "files": report.files,
            "baselined": baselined,
        }
        print(json.dumps(payload, indent=2))  # trd: ignore[TRD007] rule timings are diagnostics; lint output is not a determinism surface
    elif args.format == "sarif":
        print(json.dumps(to_sarif(findings, rules), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        if findings:
            print(f"{len(findings)} finding(s)")
        if baselined:
            print(f"({baselined} baselined finding(s) suppressed)")
    return 1 if findings else 0


def _indent_example(example: str) -> str:
    return "\n".join("    " + line for line in example.rstrip().splitlines())


def _cmd_metrics(
    kind: str | None, file: str | None = None, format: str = "text"
) -> int:
    if file is not None:
        return _cmd_metrics_file(file, kind, format)
    if format == "prom":
        print("error: --format prom needs a METRICS_JSON file to render")
        return 2
    from repro.obs import METRIC_CATALOG

    print(f"{'NAME':38s} {'KIND':10s} {'LABELS':12s} DESCRIPTION")
    for name, metric_kind, labels, description in METRIC_CATALOG:
        if kind is not None and metric_kind != kind:
            continue
        print(f"{name:38s} {metric_kind:10s} {labels or '-':12s} {description}")
    return 0


def _cmd_metrics_file(path: str, kind: str | None, format: str = "text") -> int:
    """Summarize an exported snapshot; histograms as nearest-rank percentiles."""
    import json

    try:
        with open(path) as f:
            data = json.load(f)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read metrics file {path}: {exc}")
        return 2
    if not isinstance(data, dict):
        print(
            f"error: {path} is not a metrics snapshot "
            f"(expected a JSON object, got {type(data).__name__})"
        )
        return 2
    # Render into a buffer first: a malformed section must produce one
    # clean error line, not a partial table followed by a traceback.
    try:
        if format == "prom":
            text = _render_metrics_prom(data, kind)
            lines = text.splitlines()
        else:
            lines = _render_metrics_file(data, kind)
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: {path} is not a valid metrics snapshot: {exc!r}")
        return 2
    for line in lines:
        print(line)
    return 0


def _render_metrics_prom(data: dict, kind: str | None) -> str:
    """The snapshot in Prometheus exposition text (``--format prom``)."""
    from repro.obs.telemetry import render_exposition

    if kind is not None:
        section = {"counter": "counters", "gauge": "gauges",
                   "histogram": "histograms"}[kind]
        data = {section: data.get(section, {})}
    return render_exposition(
        {
            "counters": dict(data.get("counters", {})),
            "gauges": dict(data.get("gauges", {})),
            "histograms": dict(data.get("histograms", {})),
        }
    )


def _render_metrics_file(data: dict, kind: str | None) -> list[str]:
    from repro.obs.metrics import percentile_from_buckets

    lines: list[str] = []
    if kind in (None, "counter"):
        counters = data.get("counters", {})
        if counters:
            lines.append("Counters:")
            for name in sorted(counters):
                lines.append(f"  {name:44s} {counters[name]:g}")
    if kind in (None, "gauge"):
        gauges = data.get("gauges", {})
        if gauges:
            lines.append("Gauges:")
            for name in sorted(gauges):
                lines.append(f"  {name:44s} {gauges[name]:g}")
    if kind in (None, "histogram"):
        histograms = data.get("histograms", {})
        if histograms:
            lines.append("Histograms:")
            lines.append(
                f"  {'NAME':34s} {'COUNT':>8s} {'MEAN':>12s} "
                f"{'P50':>12s} {'P90':>12s} {'P99':>12s}"
            )
            for name in sorted(histograms):
                h = histograms[name]
                count = h.get("count", 0)
                mean = h["sum"] / count if count else 0.0
                row = [percentile_from_buckets(h, p) for p in (50.0, 90.0, 99.0)]
                lines.append(
                    f"  {name:34s} {count:8d} {mean:12.4g} "
                    + " ".join(f"{v:12.4g}" for v in row)
                )
    return lines


def _cmd_report(path: str, out: str) -> int:
    from repro.obs.report import load_metrics, runs_from_units, write_report

    try:
        data = load_metrics(path)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {path}: {exc}")
        return 2
    if not isinstance(data, dict):
        print(
            f"error: {path} is not a metrics snapshot or sweep manifest "
            f"(expected a JSON object, got {type(data).__name__})"
        )
        return 2
    if "units" in data:  # a sweep manifest: one section per unit run
        try:
            runs = runs_from_units(data["units"])
        except (AttributeError, KeyError, TypeError, ValueError) as exc:
            print(f"error: {path} is not a valid sweep manifest: {exc!r}")
            return 2
        title = "sweep timeline report"
    elif "timeline" in data:  # a single run's metrics.json
        import os

        runs = [(os.path.basename(path), data)]
        title = "repro timeline report"
    else:
        print(
            f"error: {path} has no timeline section (rerun with --timeline) "
            "and is not a sweep manifest"
        )
        return 2
    if not runs:
        print(f"error: no unit in {path} has a readable timeline section")
        return 2
    try:
        write_report(out, runs, title=title)
    except (AttributeError, KeyError, TypeError, ValueError) as exc:
        print(f"error: {path} has a corrupt timeline/metrics section: {exc!r}")
        return 2
    n = len(runs)
    print(f"report written: {out} ({n} section{'s' if n != 1 else ''})")
    return 0


def _run_fleet_and_print(config, telemetry_port: int | None = None) -> int:
    import os

    from repro.service.fleet import run_fleet
    from repro.service.report import render_service_table

    endpoint = None
    if telemetry_port is not None:
        if not config.telemetry_out:
            print("error: --telemetry-port requires --telemetry-out")
            return 2
        from repro.obs.telemetry.endpoint import (
            TelemetryHTTPServer,
            latest_frames_supplier,
        )

        endpoint = TelemetryHTTPServer(
            latest_frames_supplier(config.telemetry_out), port=telemetry_port
        )
        port = endpoint.start()
        print(f"telemetry endpoint: http://127.0.0.1:{port}/metrics")
    try:
        report = run_fleet(config, progress=print)
    except (RuntimeError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3
    finally:
        if endpoint is not None:
            endpoint.stop()
    print()
    for line in render_service_table(report):
        print(line)
    print()
    print(f"report: {os.path.join(config.out_dir, 'service_report.json')}")
    print(f"saturation: {os.path.join(config.out_dir, 'saturation.csv')}")
    if config.telemetry_out:
        print(f"telemetry: {config.telemetry_out}")
    if config.alerts_path:
        print(f"alerts: {os.path.join(config.out_dir, 'alerts.json')}")
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from repro.service.fleet import ServiceConfig, TenantSpec

    workloads = [w for w in args.workloads.split(",") if w]
    policies = [p for p in args.policies.split(",") if p]
    try:
        rates = [float(r) for r in args.rate.split(",") if r]
    except ValueError:
        print(f"error: --rate must be a comma list of numbers: {args.rate!r}")
        return 2
    if not workloads or not policies or not rates:
        print("error: need at least one workload, policy and rate")
        return 2
    tenants = tuple(
        TenantSpec(workload=w, policy=p, rate_rps=r)
        for w in workloads
        for p in policies
        for r in rates
        for _ in range(args.tenants)
    )
    config = ServiceConfig(
        tenants=tenants,
        duration_s=args.duration,
        accesses_per_request=args.accesses_per_request,
        slo_ms=args.slo_ms,
        mode="closed" if args.closed_loop else "open",
        arrivals_path=args.arrivals,
        seed=args.seed,
        jobs=args.jobs,
        out_dir=args.out,
        timeline=args.timeline,
        scale_factor=args.scale_factor,
        numa_nodes=args.numa_nodes,
        numa_remote_multiplier=args.numa_remote,
        pt_replication=args.pt_replication,
        telemetry_out=args.telemetry_out,
        telemetry_interval_ms=args.telemetry_interval_ms,
        alerts_path=args.alerts,
    )
    if config.alerts_path and not config.telemetry_out:
        print("error: --alerts requires --telemetry-out")
        return 2
    return _run_fleet_and_print(config, telemetry_port=args.telemetry_port)


def _cmd_tenants(args: argparse.Namespace) -> int:
    import os

    from repro.sim.multitenant import MultiTenantConfig, run_multi_tenant

    rounds = 2 if args.quick else args.rounds
    accesses = min(500, args.accesses) if args.quick else args.accesses
    config = MultiTenantConfig(
        tenants=args.tenants,
        shards=min(args.shards, args.tenants),
        policy=args.policy,
        rounds=rounds,
        accesses_per_round=accesses,
        numa_nodes=args.numa_nodes,
        numa_remote_multiplier=args.numa_remote,
        pt_replication=args.pt_replication,
        audit=args.audit,
        seed=args.seed,
        jobs=args.jobs,
        out_dir=args.out,
        telemetry_out=args.telemetry_out,
        telemetry_interval_ms=args.telemetry_interval_ms,
    )
    try:
        manifest = run_multi_tenant(config)
    except (RuntimeError, ValueError) as exc:
        print(f"error: {exc}")
        return 1
    totals = manifest["totals"]
    print(
        f"{totals['tenants']} tenants / {len(manifest['shards'])} shards  "
        f"faults={totals['faults']}  accesses={totals['accesses']}  "
        f"mean_fmfi={totals['mean_fmfi']:.3f}"
    )
    if "mean_node_fmfi" in totals:
        per_node = "  ".join(
            f"node{n}={v:.3f}" for n, v in enumerate(totals["mean_node_fmfi"])
        )
        print(f"per-node FMFI: {per_node}")
    if config.audit:
        print(
            f"audit: checks={totals['audit_checks']} "
            f"violations={totals['audit_violations']}"
        )
    if config.telemetry_out:
        print(f"telemetry: {config.telemetry_out}")
    print(f"manifest: {os.path.join(config.out_dir, 'tenants_manifest.json')}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json

    from repro.service.fleet import ServiceConfig, TenantSpec

    try:
        with open(args.config) as f:
            spec = json.load(f)
    except OSError as exc:
        print(f"error: cannot read {args.config}: {exc.strerror}")
        return 2
    except json.JSONDecodeError as exc:
        print(f"error: {args.config} is not valid JSON: {exc}")
        return 2
    if not isinstance(spec, dict) or not isinstance(spec.get("tenants"), list):
        print(f'error: {args.config} must be an object with a "tenants" list')
        return 2
    try:
        tenants = tuple(
            TenantSpec(
                workload=t["workload"],
                policy=t["policy"],
                rate_rps=float(t["rate_rps"]),
            )
            for t in spec["tenants"]
        )
        fields = {
            k: spec[k]
            for k in (
                "duration_s",
                "accesses_per_request",
                "request_base_service_ns",
                "slo_ms",
                "mode",
                "arrivals_path",
                "seed",
                "out_dir",
                "timeline",
                "scale_factor",
                "settle_ticks",
                "timeout_s",
                "numa_nodes",
                "numa_remote_multiplier",
                "pt_replication",
                "telemetry_out",
                "telemetry_interval_ms",
                "alerts_path",
            )
            if k in spec
        }
        config = ServiceConfig(tenants=tenants, **fields)
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: {args.config} is not a valid fleet spec: {exc!r}")
        return 2
    config.jobs = args.jobs
    if args.seed is not None:
        config.seed = args.seed
    if args.out is not None:
        config.out_dir = args.out
    if args.telemetry_out is not None:
        config.telemetry_out = args.telemetry_out
    if args.telemetry_interval_ms != 1.0:
        config.telemetry_interval_ms = args.telemetry_interval_ms
    if args.alerts is not None:
        config.alerts_path = args.alerts
    if config.alerts_path and not config.telemetry_out:
        print("error: alerts require a telemetry output directory")
        return 2
    return _run_fleet_and_print(config, telemetry_port=args.telemetry_port)


def _cmd_watch(args: argparse.Namespace) -> int:
    from repro.obs.telemetry.dashboard import watch

    try:
        return watch(args.source, refresh_s=args.refresh, once=args.once)
    except KeyboardInterrupt:
        return 0
    except (OSError, ValueError) as exc:
        print(f"error: cannot tail {args.source}: {exc}", file=sys.stderr)
        return 2


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "geometry":
        return _cmd_geometry(args)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        exp_obs = obs_options_from_args(args)
        return _cmd_experiment(
            args.name,
            args.metrics_out,
            quick=args.quick,
            seed=args.seed,
            audit=exp_obs.audit,
            timeline=exp_obs.timeline,
        )
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "metrics":
        return _cmd_metrics(args.kind, args.file, args.format)
    if args.command == "report":
        return _cmd_report(args.path, args.out)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "lint":
        return _cmd_lint(args)
    if args.command == "loadgen":
        return _cmd_loadgen(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "tenants":
        return _cmd_tenants(args)
    if args.command == "watch":
        return _cmd_watch(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
