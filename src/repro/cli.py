"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``run``        one (workload, policy) measurement, native or virtualized
``experiment`` regenerate a figure/table by name (or ``all``)
``list``       show available workloads, policies and experiments

Examples::

    python -m repro list
    python -m repro run GUPS Trident --fragmented
    python -m repro run Canneal Trident --virt --host-policy Trident
    python -m repro experiment figure9
"""

from __future__ import annotations

import argparse
import sys

from repro.config import SCALE_FACTOR, PageSize


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Trident (MICRO 2021) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure one workload under one policy")
    run.add_argument("workload", help="Table 2 name, e.g. GUPS")
    run.add_argument("policy", help="policy config, e.g. Trident or 2MB-THP")
    run.add_argument("--fragmented", action="store_true")
    run.add_argument("--virt", action="store_true", help="run inside a VM")
    run.add_argument("--host-policy", default="Trident")
    run.add_argument("--accesses", type=int, default=80_000)
    run.add_argument("--seed", type=int, default=7)
    run.add_argument(
        "--baseline",
        default=None,
        help="also run this policy and report relative numbers",
    )

    exp = sub.add_parser("experiment", help="regenerate a figure/table")
    exp.add_argument("name", help="e.g. figure9, table3, latency_micro, all")

    sub.add_parser("list", help="list workloads, policies, experiments")
    return parser


def _cmd_list() -> int:
    from repro.experiments.configs import POLICY_CONFIGS
    from repro.experiments.run_all import MODULES
    from repro.workloads.registry import REGISTRY, SHADED_EIGHT

    print("Workloads (Table 2):")
    for name, cls in REGISTRY.items():
        spec = cls.spec
        tag = " *" if name in SHADED_EIGHT else ""
        print(
            f"  {name:10s} {spec.paper_footprint_gb:6.1f} GB  "
            f"{spec.threads:2d} threads  {spec.description}{tag}"
        )
    print("  (* = 1GB-sensitive, the paper's shaded set)\n")
    print("Policies:")
    for name in POLICY_CONFIGS:
        print(f"  {name}")
    print("\nExperiments:")
    for name, _ in MODULES:
        print(f"  {name}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.runner import (
        NativeRunner,
        RunConfig,
        VirtRunConfig,
        VirtRunner,
    )

    def one(policy: str):
        if args.virt:
            return VirtRunner(
                VirtRunConfig(
                    args.workload,
                    policy,
                    args.host_policy,
                    n_accesses=args.accesses,
                    seed=args.seed,
                    guest_fragmented=args.fragmented,
                )
            ).run()
        return NativeRunner(
            RunConfig(
                args.workload,
                policy,
                fragmented=args.fragmented,
                n_accesses=args.accesses,
                seed=args.seed,
            )
        ).run()

    metrics = one(args.policy)
    _print_metrics(metrics)
    if args.baseline:
        base = one(args.baseline)
        print(
            f"\nvs {base.policy}: speedup {metrics.speedup_over(base):.3f}x, "
            f"walk-cycle fraction {metrics.walk_fraction_vs(base):.3f}x"
        )
    return 0


def _print_metrics(m) -> None:
    print(f"policy:            {m.policy}")
    print(f"workload:          {m.workload}")
    print(f"accesses sampled:  {m.accesses}")
    print(f"walk cycles/acc:   {m.walk_cycles_per_access:.2f}")
    print(f"walk fraction:     {m.walk_cycle_fraction:.3f}")
    print(f"modeled runtime:   {m.runtime_ns / 1e9:.2f} s")
    if m.mapped_bytes_by_size:
        for size in reversed(PageSize.ALL):
            nbytes = m.mapped_bytes_by_size[size]
            print(
                f"  {PageSize.X86_NAMES[size]:4s} mapped: "
                f"{nbytes * SCALE_FACTOR / (1 << 30):8.1f} GB (paper scale)"
            )
    if m.bloat_bytes:
        print(
            f"bloat:             {m.bloat_bytes * SCALE_FACTOR / (1 << 30):.1f} GB"
        )


def _cmd_experiment(name: str) -> int:
    from repro.experiments.run_all import MODULES, main as run_all_main

    if name == "all":
        run_all_main([])
        return 0
    table = dict(MODULES)
    if name not in table:
        print(f"unknown experiment {name!r}; try one of: {', '.join(table)}")
        return 2
    table[name].main()
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "experiment":
        return _cmd_experiment(args.name)
    return 2


if __name__ == "__main__":
    sys.exit(main())
