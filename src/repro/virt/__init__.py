"""Virtualization: a KVM-like hypervisor, the guest/host composition, and
the Trident-pv paravirtual copy-less promotion/compaction path (Section 6).
"""

from repro.virt.hypervisor import Hypervisor
from repro.virt.machine import VirtualMachine, GuestSystem
from repro.virt.hypercall import PVExchangeInterface
from repro.virt.tridentpv import TridentPVPolicy

__all__ = [
    "Hypervisor",
    "VirtualMachine",
    "GuestSystem",
    "PVExchangeInterface",
    "TridentPVPolicy",
]
