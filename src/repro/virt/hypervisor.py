"""The hypervisor: host-side memory management for one virtual machine.

KVM-style hosting, as the paper evaluates: the VM's guest-physical memory is
one big anonymous allocation in a host process, and the *host's* memory
policy (THP, HawkEye or Trident, deployed at the hypervisor level) decides
which EPT page sizes back it.  An EPT violation — a guest access to a gPA
the host has not backed yet — is a host page fault on that allocation.

The hypervisor also implements the Trident-pv hypercall: exchanging the
gPA -> hPA mappings of two guest-physical ranges, which makes guest page
promotion/compaction copy-less (Figure 8c).  Exchanging may require
splitting a covering EPT huge page first, exactly like KVM EPT splitting.
"""

from __future__ import annotations

from repro.sim.system import System


class Hypervisor:
    """Host-side view: the VM is a host process; gPA is its virtual memory."""

    def __init__(self, host_system: System, guest_bytes: int) -> None:
        geometry = host_system.geometry
        if guest_bytes % geometry.large_size:
            raise ValueError("guest memory must be a whole number of large pages")
        self.host = host_system
        self.guest_bytes = guest_bytes
        self.vm_process = host_system.create_process("vm")
        # qemu-style: guest RAM is one large-aligned anonymous allocation.
        vma = self.vm_process.aspace.mmap(
            guest_bytes, name="heap", align=geometry.large_size
        )
        self.hva_base = vma.start
        self.ept_faults = 0

    @property
    def host_table(self):
        return self.vm_process.pagetable

    def hva(self, gpa: int) -> int:
        if not 0 <= gpa < self.guest_bytes:
            raise ValueError(f"gPA {gpa:#x} outside guest memory")
        return self.hva_base + gpa

    # -- EPT faults ---------------------------------------------------------
    def ensure_backed(self, gpa: int) -> float:
        """Back the gPA with host memory if needed; returns fault ns (0 if hit).

        Every call records the backing page as touched in the host's view:
        guest accesses ARE host-memory accesses, and host-side policies that
        reason about utilization (HawkEye's bloat recovery) must see them —
        otherwise the host would demote the guest's working set as "dead".
        """
        hva = self.hva(gpa)
        self.vm_process.record_touch(hva)
        if self.host_table.translate(hva) is not None:
            return 0.0
        latency = self.host.policy.handle_fault(self.vm_process, hva)
        self.ept_faults += 1
        return latency

    # -- the Trident-pv exchange hypercall -------------------------------------
    def exchange_ranges(self, pairs: list[tuple[int, int, int]]) -> int:
        """Exchange gPA->hPA mappings for each (gpa_a, gpa_b, nbytes) pair.

        Returns the number of page-mapping exchanges performed (the unit the
        cost model charges per).  Both ranges must be backed; covering EPT
        huge pages are split to the exchange granularity first.
        """
        exchanges = 0
        for gpa_a, gpa_b, nbytes in pairs:
            exchanges += self._exchange_one(gpa_a, gpa_b, nbytes)
        # --audit: the hypercall's postcondition is mapping bijectivity;
        # check it immediately rather than waiting for a sampled audit.
        auditor = self.host.auditor
        if auditor is not None:
            auditor.audit_exchange()
        return exchanges

    def _exchange_one(self, gpa_a: int, gpa_b: int, nbytes: int) -> int:
        geometry = self.host.geometry
        base = geometry.base_size
        if nbytes % base or gpa_a % base or gpa_b % base:
            raise ValueError("exchange ranges must be base-page aligned")
        # Ensure both sides are backed (the destination of a promotion is a
        # freshly allocated gPA block the guest has not touched).
        for off in range(0, nbytes, base):
            self.ensure_backed(gpa_a + off)
            self.ensure_backed(gpa_b + off)
        count = 0
        off = 0
        while off < nbytes:
            hva_a = self.hva(gpa_a + off)
            hva_b = self.hva(gpa_b + off)
            map_a = self._mapping_at_granule(hva_a, nbytes - off)
            map_b = self._mapping_at_granule(hva_b, nbytes - off)
            # Exchange at the coarsest granule both sides share and the
            # remaining length/alignment allows.
            cap = min(
                geometry.bytes_for(map_a.page_size),
                geometry.bytes_for(map_b.page_size),
            )
            remaining = nbytes - off
            granule = base
            for candidate in (geometry.large_size, geometry.mid_size, base):
                if (
                    candidate <= cap
                    and candidate <= remaining
                    and (gpa_a + off) % candidate == 0
                    and (gpa_b + off) % candidate == 0
                ):
                    granule = candidate
                    break
            map_a = self._split_to(hva_a, granule)
            map_b = self._split_to(hva_b, granule)
            map_a.pfn, map_b.pfn = map_b.pfn, map_a.pfn
            self._owner_swap(map_a, map_b)
            off += granule
            count += 1
        return count

    def _mapping_at_granule(self, hva: int, remaining: int):
        mapping = self.host_table.translate(hva)
        assert mapping is not None, "exchange on unbacked gPA"
        return mapping

    def _split_to(self, hva: int, granule: int):
        """Split the mapping covering ``hva`` until its size is ``granule``.

        EPT huge-page splitting: the same host frames get remapped at a
        finer granularity — no copying, just page-table surgery.
        """
        geometry = self.host.geometry
        policy = self.host.policy
        while True:
            mapping = self.host_table.translate(hva)
            size_bytes = geometry.bytes_for(mapping.page_size)
            if size_bytes <= granule:
                if size_bytes != granule:
                    raise ValueError(
                        f"mapping at {mapping.va:#x} finer than exchange granule"
                    )
                return mapping
            # Split one level down, keeping the same frames.
            next_size = mapping.page_size - 1
            step = geometry.bytes_for(next_size)
            frames_per = geometry.frames_for(next_size)
            self.host_table.unmap(mapping.va, mapping.page_size)
            self.host.rmap.unregister(mapping.pfn)
            self.vm_process.frame_owner.remove(mapping.pfn)
            # The buddy block stays allocated as a unit; re-register the
            # sub-blocks so compaction and future exchanges see them.
            self.host.buddy.free(mapping.pfn)
            for i in range(size_bytes // step):
                sub_pfn = mapping.pfn + i * frames_per
                sub_va = mapping.va + i * step
                self.host.buddy.alloc_at(sub_pfn, geometry.order_for(next_size))
                sub = self.host_table.map_page(sub_va, next_size, sub_pfn)
                self.host.rmap.register(
                    sub_pfn, geometry.order_for(next_size), self.vm_process.frame_owner
                )
                self.vm_process.frame_owner.add(sub_pfn, sub_va, next_size)
            self.vm_process.tlb.invalidate_range(mapping.va, size_bytes)

    def _owner_swap(self, map_a, map_b) -> None:
        """Fix host rmap/owner records after swapping two mappings' frames."""
        owner = self.vm_process.frame_owner
        owner.add(map_a.pfn, map_a.va, map_a.page_size)
        owner.add(map_b.pfn, map_b.va, map_b.page_size)
        order = self.host.geometry.order_for(map_a.page_size)
        # rmap entries: both pfns remain registered with the same owner and
        # order; only the va association (kept in the owner) changed.
        self.vm_process.tlb.invalidate_range(
            map_a.va, self.host.geometry.bytes_for(map_a.page_size)
        )
        self.vm_process.tlb.invalidate_range(
            map_b.va, self.host.geometry.bytes_for(map_b.page_size)
        )
