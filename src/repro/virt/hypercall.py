"""The Trident-pv exchange hypercall: guest-side interface and cost model.

Section 6: the guest passes lists of source and target gPAs through two
pre-defined shared pages; a single (batched) hypercall exchanges all 512
mappings needed to assemble a 1GB region, in ~500 us instead of the ~600 ms
a copy-based promotion costs.  Without batching, one hypercall per exchange
costs ~30 ms total.
"""

from __future__ import annotations

from repro.config import CostModel
from repro.virt.hypervisor import Hypervisor


class PVExchangeInterface:
    """What a paravirtualized guest kernel sees of the exchange hypercall."""

    #: how many (source, target) addresses fit in the two shared 4KB pages
    BATCH_CAPACITY = 512

    def __init__(
        self, hypervisor: Hypervisor, cost: CostModel, obs=None
    ) -> None:
        self.hypervisor = hypervisor
        self.cost = cost
        self.hypercalls = 0
        self.exchanges = 0
        self.time_ns = 0.0
        self._clock = getattr(obs, "clock", None) if obs is not None else None
        self._spans = getattr(obs, "spans", None) if obs is not None else None

    def exchange(
        self, pairs: list[tuple[int, int, int]], batched: bool = True
    ) -> float:
        """Exchange gPA mappings for (gpa_src, gpa_dst, nbytes) pairs.

        Returns the ns the guest spends in the hypercall path.  With
        batching, pairs are shipped ``BATCH_CAPACITY`` at a time through the
        shared pages; unbatched, every exchanged mapping pays its own
        guest/host world switch.
        """
        if not pairs:
            return 0.0
        count = self.hypervisor.exchange_ranges(pairs)
        self.exchanges += count
        if batched:
            calls = -(-count // self.BATCH_CAPACITY)
            spent = calls * self.cost.hypercall_ns + count * self.cost.exchange_batched_ns
        else:
            calls = count
            spent = count * (self.cost.hypercall_ns + self.cost.exchange_unbatched_ns)
        self.hypercalls += calls
        self.time_ns += spent
        if self._clock is not None and spent > 0.0:
            # Leaf site on the simulated-time axis: callers (compaction,
            # pv promotion) account this ns inside their own totals and
            # advance only their residual on top.
            self._clock.advance(spent)
            spans = self._spans
            if spans is not None and spans.enabled:
                spans.record_complete(
                    "pv_exchange", spent, calls=calls, pairs=count
                )
        return spent

    # -- microbenchmark helpers (Section 6 latency numbers) -----------------
    def copy_promotion_ns(self, nbytes: int) -> float:
        """Latency of promoting ``nbytes`` the traditional copy-based way."""
        return self.cost.copy_ns(nbytes)

    def pv_promotion_ns(self, n_exchanges: int, batched: bool) -> float:
        """Analytic pv promotion latency without touching the hypervisor."""
        if batched:
            calls = -(-n_exchanges // self.BATCH_CAPACITY)
            return calls * self.cost.hypercall_ns + n_exchanges * self.cost.exchange_batched_ns
        return n_exchanges * (self.cost.hypercall_ns + self.cost.exchange_unbatched_ns)
