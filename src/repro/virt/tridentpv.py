"""Trident-pv: the paravirtualized guest policy (Section 6).

Identical to Trident except for how data reaches a freshly allocated 1GB
guest-physical block during promotion: where Trident copies each present
2MB page's contents, Trident-pv exchanges the gPA -> hPA mappings of the
source and destination chunks via the batched hypercall (Figure 8c).

The paper's scope note applies: the copy-less path only pays off for
mid-sized (2MB) chunks — exchanging 4KB pages costs more in hypercall and
PTE-update overhead than simply copying them — so base pages still copy.
This is why workloads whose 4KB pages promote directly to 1GB (Btree,
Graph500, Canneal) gain little from Trident-pv (Figure 13).
"""

from __future__ import annotations

from repro.core.trident import TridentPolicy
from repro.vm.pagetable import Mapping
from repro.virt.hypercall import PVExchangeInterface


class TridentPVPolicy(TridentPolicy):
    """Guest Trident with copy-less 1GB promotion via the exchange hypercall."""

    name = "Trident-pv"

    def __init__(self, kernel, pv: PVExchangeInterface, batched: bool = True, **kwargs):
        super().__init__(kernel, **kwargs)
        self.pv = pv
        self.batched = batched
        self.pv_promotions = 0
        self.copied_promotions = 0
        # Guest compaction also moves gPA contents; route mid-or-larger
        # block moves through the exchange hypercall ("Tridentpv uses the
        # same hypercall for compacting guest physical memory").
        kernel.smart_compactor.pv_exchanger = self._exchange_block
        kernel.normal_compactor.pv_exchanger = self._exchange_block

    def _exchange_block(self, src_pfn: int, dst_pfn: int, order: int) -> float:
        base = self.kernel.geometry.base_size
        nbytes = (1 << order) * base
        return self.pv.exchange(
            [(src_pfn * base, dst_pfn * base, nbytes)], batched=self.batched
        )

    def _promote(
        self, process, va: int, page_size: int, pfn: int, present: list[Mapping]
    ) -> float:
        top = self.kernel.geometry.top_level
        if page_size != top:
            return super()._promote(process, va, page_size, pfn, present)
        geometry = self.kernel.geometry
        cost = self.kernel.cost
        base = geometry.base_size
        nbytes = geometry.bytes_for(top)
        # Partition the present mappings: non-base chunks exchange, base
        # pages copy (exchanging base pages costs more than copying).
        pairs: list[tuple[int, int, int]] = []
        copy_bytes = 0
        for mapping in present:
            chunk_bytes = geometry.bytes_for(mapping.page_size)
            offset = mapping.va - va
            dst_gpa = (pfn * base) + offset
            src_gpa = mapping.pfn * base
            if mapping.page_size > 0:
                pairs.append((src_gpa, dst_gpa, chunk_bytes))
            else:
                copy_bytes += chunk_bytes
        spent = 0.0
        if pairs:
            spent += self.pv.exchange(pairs, batched=self.batched)
            self.pv_promotions += 1
        if copy_bytes:
            spent += cost.copy_ns(copy_bytes)
            self.copied_promotions += 1
        present_bytes = copy_bytes + sum(
            geometry.bytes_for(m.page_size)
            for m in present
            if m.page_size > 0
        )
        for mapping in present:
            process.pagetable.unmap(mapping.va, mapping.page_size)
            self._teardown(process, mapping)
        self._install(process, va, top, pfn)
        process.tlb.invalidate_range(va, nbytes)
        self.stats.promoted[top] += 1
        self.stats.promo_copy_bytes += copy_bytes  # only truly-copied bytes
        spent += (
            cost.zero_ns(nbytes - present_bytes)
            + cost.pte_update_ns * (len(present) + 1)
        )
        return spent
