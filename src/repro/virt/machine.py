"""Guest/host composition: a virtual machine running a guest OS policy.

Two complete systems are stacked, as in the paper's virtualized evaluation:

* the **host** runs its own memory policy (THP / HawkEye / Trident) over
  host physical memory and backs the VM's guest-physical range (EPT page
  sizes = whatever the host policy maps the VM's allocation with);
* the **guest** runs its own policy over guest-physical memory (gPA), with
  its own buddy allocator, compactors and daemons — Trident deployed in the
  guest manages gVA -> gPA page sizes.

Guest processes translate through a :class:`NestedTranslationUnit`, so each
access pays for the effective page size min(guest, host) and 2D walk costs.
"""

from __future__ import annotations

from repro.config import FREQ_GHZ, MachineConfig
from repro.sim.batch import TouchResult
from repro.sim.process import Process
from repro.sim.system import System
from repro.tlb.nested import NestedTranslationUnit
from repro.virt.hypervisor import Hypervisor


class GuestSystem(System):
    """A System whose physical memory is the VM's guest-physical range."""

    #: every guest access does per-access work outside the native contract
    #: (EPT backing, nested-walk clock charging), so ``touch_batch`` stays
    #: on the scalar loop — the BatchResult contract is unchanged
    batch_hot_path = False

    def __init__(
        self,
        machine: MachineConfig,
        policy_factory,
        hypervisor: Hypervisor,
        seed: int = 0,
        host_daemon_share: float = 0.5,
        **kwargs,
    ) -> None:
        self.hypervisor = hypervisor  # needed by create_process during boot
        self.host_daemon_share = host_daemon_share
        super().__init__(machine, policy_factory, seed=seed, **kwargs)

    def create_process(self, name: str = "app") -> Process:
        tlb = NestedTranslationUnit(
            self.machine.tlb,
            self.machine.walk,
            self.geometry,
            host_table=self.hypervisor.host_table,
            hva_base=self.hypervisor.hva_base,
        )
        process = Process(self._next_pid, name, self.geometry, tlb)
        self._next_pid += 1
        self.processes.append(process)
        return process

    def touch(self, process: Process, va: int) -> TouchResult:
        """Guest load/store: guest fault, then EPT fault, then nested TLB."""
        mapping = process.pagetable.translate(va)
        faulted = mapping is None
        if faulted:
            mapping = self._fault(process, va)
        gpa = process.tlb.gpa_of(mapping, va)
        self._ensure_backed(gpa)
        process.record_touch(va)
        cycles = process.tlb.access(va, mapping)
        if cycles > 0.0:
            # The nested unit has no obs of its own: charge its walk and
            # L2-hit cycles to the guest's time axis here (leaf site).
            self.obs.clock.advance(cycles / FREQ_GHZ)
        self._accesses_since_daemon += 1
        if self._accesses_since_daemon >= self.daemon_period_accesses:
            self.run_daemons()
            # The host's daemons (khugepaged etc. in the hypervisor) run on
            # host CPUs; give them a share of the same cadence.
            self.hypervisor.host.run_daemons(
                self.daemon_budget_ns * self.host_daemon_share
            )
        return TouchResult(cycles, faulted=faulted, page_size=mapping.page_size)

    def _ensure_backed(self, gpa: int) -> None:
        """EPT-populate ``gpa``, charging host fault time to the guest axis.

        The host system runs on its own (private) clock, so the host-side
        fault nanoseconds — which stall the guest exactly like a guest
        fault — are re-charged here as an ``ept_fault`` span on the
        guest's timeline.
        """
        host_stats = self.hypervisor.host.policy.stats
        before = host_stats.fault_ns
        self.hypervisor.ensure_backed(gpa)
        ept_ns = host_stats.fault_ns - before
        if ept_ns > 0.0:
            self.obs.clock.advance(ept_ns)
            spans = self.obs.spans
            if spans.enabled:
                spans.record_complete("ept_fault", ept_ns)


class VirtualMachine:
    """One VM: a host system, a hypervisor view, and a guest system."""

    def __init__(
        self,
        guest_machine: MachineConfig,
        host_machine: MachineConfig,
        guest_policy_factory,
        host_policy_factory,
        seed: int = 0,
        guest_daemon_budget_ns: float = 2_000_000.0,
        guest_obs=None,
    ) -> None:
        if host_machine.total_bytes < guest_machine.total_bytes:
            raise ValueError("host memory must be at least the guest's size")
        self.host = System(host_machine, host_policy_factory, seed=seed)
        self.hypervisor = Hypervisor(self.host, guest_machine.total_bytes)
        self.guest = GuestSystem(
            guest_machine,
            guest_policy_factory,
            self.hypervisor,
            seed=seed + 1,
            daemon_budget_ns=guest_daemon_budget_ns,
            obs=guest_obs,
        )

    def create_guest_process(self, name: str = "app") -> Process:
        return self.guest.create_process(name)

    def settle(self, max_ticks: int = 400) -> None:
        """Let both levels' daemons converge."""
        self.guest.settle_until_quiet(max_ticks=max_ticks)
        self.host.settle_until_quiet(max_ticks=max_ticks)

    @property
    def total_fault_ns(self) -> float:
        """Guest faults + EPT faults, both on the guest's critical path."""
        return self.guest.policy.stats.fault_ns + self.host.policy.stats.fault_ns
