"""ObsOptions: the one source of truth for observability flags."""

from __future__ import annotations

import argparse

import pytest

from repro.obs.options import ObsOptions, add_obs_args, obs_options_from_args


def _parse(scope: str, argv: list[str]) -> argparse.Namespace:
    parser = argparse.ArgumentParser()
    add_obs_args(parser, scope=scope)
    return parser.parse_args(argv)


def test_run_scope_registers_full_surface():
    args = _parse(
        "run",
        [
            "--trace",
            "--trace-subsystems",
            "tlb,policy",
            "--trace-capacity",
            "128",
            "--trace-out",
            "t.jsonl",
            "--metrics-out",
            "m.json",
            "--audit",
            "--audit-every",
            "512",
            "--timeline",
            "--timeline-out",
            "tl.json",
            "--report-out",
            "r.html",
        ],
    )
    opts = obs_options_from_args(args)
    assert opts == ObsOptions(
        trace=True,
        trace_subsystems=("tlb", "policy"),
        trace_capacity=128,
        trace_out="t.jsonl",
        metrics_out="m.json",
        audit=True,
        audit_every=512,
        timeline=True,
        timeline_out="tl.json",
        report_out="r.html",
    )


@pytest.mark.parametrize("scope", ["experiment", "sweep"])
def test_ambient_scopes_register_only_toggles(scope):
    args = _parse(scope, ["--audit", "--timeline"])
    opts = obs_options_from_args(args)
    assert opts.audit and opts.timeline
    # flags the scope did not register fall back to dataclass defaults
    assert opts == ObsOptions(audit=True, timeline=True)
    with pytest.raises(SystemExit):
        _parse(scope, ["--trace"])


def test_unknown_scope_rejected():
    with pytest.raises(ValueError):
        add_obs_args(argparse.ArgumentParser(), scope="nonsense")


def test_trace_out_implies_trace():
    opts = ObsOptions(trace_out="t.jsonl")
    assert not opts.trace
    assert opts.trace_enabled
    assert opts.run_kwargs()["trace"] is True


def test_run_kwargs_primary_vs_companion():
    opts = ObsOptions(
        trace=True,
        metrics_out="m.json",
        audit=True,
        timeline=True,
        timeline_out="tl.json",
        report_out="r.html",
    )
    primary = opts.run_kwargs(primary=True)
    assert primary["trace"] is True
    assert primary["metrics_out"] == "m.json"
    assert primary["timeline_out"] == "tl.json"
    assert primary["report_out"] == "r.html"
    companion = opts.run_kwargs(primary=False)
    # ambient toggles still apply to companion (e.g. --baseline) runs...
    assert companion["audit"] is True
    assert companion["timeline"] is True
    # ...but per-run artifacts belong to the primary run only
    assert companion["trace"] is False
    assert companion["metrics_out"] is None
    assert companion["timeline_out"] is None
    assert companion["report_out"] is None


def test_off_toggles_defer_to_ambient_defaults():
    """audit/timeline map to None when off so the runner's ambient
    audit_enabled()/timeline_enabled() defaults still get a say."""
    kwargs = ObsOptions().run_kwargs()
    assert kwargs["audit"] is None
    assert kwargs["timeline"] is None
