"""End-to-end timeline tests on real runs (the PR's acceptance criteria).

The reconciliation invariant: the span layer observes the *same*
nanoseconds the policy accounts in ``PolicyStats.fault_ns``, via the
residual-advancement discipline — so the per-order fault attribution
totals must sum to :meth:`System.total_fault_ns` within 1%.
"""

import json

import pytest

from repro.experiments.runner import NativeRunner, RunConfig


@pytest.fixture(scope="module")
def timeline_run(tmp_path_factory):
    out = tmp_path_factory.mktemp("timeline")
    config = RunConfig(
        "GUPS",
        "Trident",
        fragmented=True,
        n_accesses=8_000,
        seed=7,
        timeline=True,
        timeline_out=str(out / "trace.json"),
        report_out=str(out / "report.html"),
        metrics_out=str(out / "metrics.json"),
    )
    runner = NativeRunner(config)
    metrics = runner.run()
    return runner, metrics, out


class TestReconciliation:
    def test_fault_attribution_matches_policy_accounting(self, timeline_run):
        runner, _, _ = timeline_run
        span_total = runner.obs.spans.total_ns("fault")
        policy_total = runner.system.total_fault_ns()
        assert policy_total > 0
        assert span_total == pytest.approx(policy_total, rel=0.01)

    def test_clock_advanced_past_fault_time(self, timeline_run):
        runner, _, _ = timeline_run
        # the axis folds in faults + daemon work + walk charges
        assert runner.obs.clock.now_ns >= runner.system.total_fault_ns()

    def test_per_order_rows_present(self, timeline_run):
        runner, _, _ = timeline_run
        orders = {
            r["order"]
            for r in runner.obs.spans.attribution()
            if r["kind"] == "fault"
        }
        assert orders  # at least one page-size order was faulted


class TestSeries:
    def test_configured_gauges_sampled(self, timeline_run):
        runner, _, _ = timeline_run
        series = runner.obs.timeline.export()["series"]
        for name in ("fmfi", "free_large_regions", "zerofill_pool"):
            assert series[name]["points"], f"{name} never sampled"

    def test_mapped_bytes_tracked_per_page_size(self, timeline_run):
        runner, _, _ = timeline_run
        series = runner.obs.timeline.export()["series"]
        assert "mapped_bytes_1GB" in series
        final_1g = series["mapped_bytes_1GB"]["points"][-1][1]
        assert final_1g > 0  # Trident mapped 1GB pages


class TestArtifacts:
    def test_chrome_trace_written_and_valid(self, timeline_run):
        from tests.obs.test_export import assert_valid_trace

        _, _, out = timeline_run
        with open(out / "trace.json") as f:
            trace = json.load(f)
        assert trace["traceEvents"]
        assert_valid_trace(trace)

    def test_report_written_with_sparklines(self, timeline_run):
        _, _, out = timeline_run
        page = (out / "report.html").read_text()
        assert "<svg" in page
        assert "fmfi" in page
        assert "zerofill_pool" in page
        assert "GUPS / Trident" in page

    def test_metrics_json_carries_timeline_section(self, timeline_run):
        _, _, out = timeline_run
        with open(out / "metrics.json") as f:
            data = json.load(f)
        timeline = data["timeline"]
        assert timeline["spans"]["spans_closed"] > 0
        assert timeline["sampler"]["samples"] > 0
        assert data["gauges"]["sim_clock_ns"] > 0
