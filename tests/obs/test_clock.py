"""Unit tests for the simulated clock (the timeline's time axis)."""

from repro.obs.clock import SimClock


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now_ns == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(100.0)
        clock.advance(2.5)
        assert clock.now_ns == 102.5

    def test_zero_and_negative_are_noops(self):
        clock = SimClock()
        clock.advance(10.0)
        clock.advance(0.0)
        clock.advance(-5.0)
        assert clock.now_ns == 10.0

    def test_listeners_see_post_advance_time(self):
        clock = SimClock()
        seen = []
        clock.add_listener(lambda now: seen.append(now))
        clock.advance(7.0)
        clock.advance(3.0)
        assert seen == [7.0, 10.0]

    def test_noop_advance_does_not_notify(self):
        clock = SimClock()
        seen = []
        clock.add_listener(lambda now: seen.append(now))
        clock.advance(0.0)
        clock.advance(-1.0)
        assert seen == []

    def test_remove_listener(self):
        clock = SimClock()
        seen = []
        listener = seen.append
        clock.add_listener(listener)
        clock.advance(1.0)
        clock.remove_listener(listener)
        clock.advance(1.0)
        assert seen == [1.0]
