"""Unit tests for spans: nesting, attribution, retrospective records."""

from repro.obs.clock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import NULL_SPAN, SpanRecorder
from repro.obs.trace import Tracer


def _recorder(with_tracer=False, with_metrics=False):
    clock = SimClock()
    tracer = None
    if with_tracer:
        tracer = Tracer(subsystems=("span",), clock=clock)
        tracer.enable("span")
    metrics = MetricsRegistry() if with_metrics else None
    rec = SpanRecorder(clock, tracer=tracer, metrics=metrics)
    rec.enabled = True
    return clock, rec


class TestDisabled:
    def test_disabled_recorder_hands_out_null_span(self):
        clock = SimClock()
        rec = SpanRecorder(clock)
        assert rec.span("fault") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as sp:
            sp.set(order=18)  # must not raise

    def test_disabled_record_complete_and_mark_are_noops(self):
        clock = SimClock()
        rec = SpanRecorder(clock)
        rec.record_complete("zerofill_fill", 100.0)
        rec.mark("phase", label="warmup")
        assert rec.spans_closed == 0
        assert rec.attribution() == []


class TestAttribution:
    def test_duration_is_clock_delta(self):
        clock, rec = _recorder()
        with rec.span("fault"):
            clock.advance(250.0)
        (row,) = rec.attribution()
        assert row["kind"] == "fault"
        assert row["count"] == 1
        assert row["total_ns"] == 250.0
        assert row["self_ns"] == 250.0
        assert row["child_ns"] == 0.0

    def test_nested_child_time_charged_to_parent(self):
        clock, rec = _recorder()
        with rec.span("daemon_tick"):
            clock.advance(10.0)
            with rec.span("compaction"):
                clock.advance(30.0)
            clock.advance(5.0)
        rows = {r["kind"]: r for r in rec.attribution()}
        assert rows["daemon_tick"]["total_ns"] == 45.0
        assert rows["daemon_tick"]["child_ns"] == 30.0
        assert rows["daemon_tick"]["self_ns"] == 15.0
        assert rows["compaction"]["total_ns"] == 30.0

    def test_record_complete_charges_open_parent(self):
        clock, rec = _recorder()
        with rec.span("daemon_tick"):
            clock.advance(100.0)  # caller advances, then records
            rec.record_complete("zerofill_fill", 100.0)
        rows = {r["kind"]: r for r in rec.attribution()}
        assert rows["daemon_tick"]["child_ns"] == 100.0
        assert rows["daemon_tick"]["self_ns"] == 0.0
        assert rows["zerofill_fill"]["total_ns"] == 100.0

    def test_attribution_keyed_by_order_and_sorted_by_total(self):
        clock, rec = _recorder()
        with rec.span("fault") as sp:
            clock.advance(10.0)
            sp.set(order=0)
        with rec.span("fault") as sp:
            clock.advance(500.0)
            sp.set(order=18)
        rows = rec.attribution()
        assert [(r["kind"], r["order"]) for r in rows] == [
            ("fault", 18),
            ("fault", 0),
        ]
        assert rec.total_ns("fault") == 510.0

    def test_export_shape(self):
        clock, rec = _recorder()
        with rec.span("fault"):
            clock.advance(1.0)
        out = rec.export()
        assert out["spans_closed"] == 1
        assert out["attribution"][0]["mean_ns"] == 1.0


class TestTraceStream:
    def test_begin_end_events_interleave_chronologically(self):
        clock, rec = _recorder(with_tracer=True)
        with rec.span("fault") as sp:
            clock.advance(40.0)
            sp.set(order=9)
        events = list(rec.tracer.events(subsystem="span"))
        assert [e["phase"] for e in events] == ["B", "E"]
        begin, end = events
        assert begin["ts_ns"] == 0.0
        assert end["ts_ns"] == 40.0
        assert end["duration_ns"] == 40.0
        assert end["order"] == 9

    def test_record_complete_backdates_begin(self):
        clock, rec = _recorder(with_tracer=True)
        clock.advance(500.0)
        rec.record_complete("pv_exchange", 120.0, calls=1)
        begin, end = list(rec.tracer.events(subsystem="span"))
        assert begin["phase"] == "B" and begin["ts_ns"] == 380.0
        assert end["phase"] == "E" and end["ts_ns"] == 500.0

    def test_mark_emits_instant(self):
        clock, rec = _recorder(with_tracer=True)
        clock.advance(3.0)
        rec.mark("phase", label="steady")
        (event,) = list(rec.tracer.events(subsystem="span"))
        assert event["phase"] == "I"
        assert event["label"] == "steady"
        assert event["ts_ns"] == 3.0


class TestHistograms:
    def test_durations_feed_per_kind_histogram(self):
        clock, rec = _recorder(with_metrics=True)
        with rec.span("fault"):
            clock.advance(150.0)
        export = rec.metrics.snapshot()["histograms"]
        hist = export["span_duration_ns{kind=fault}"]
        assert hist["count"] == 1
        assert hist["sum"] == 150.0
