"""Alert rule parsing, burn-rate/threshold evaluation, hysteresis, merges."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer
from repro.obs.telemetry.alerts import (
    AlertEngine,
    AlertLog,
    AlertRule,
    load_alert_rules,
    parse_alert_rules,
)

BURN_RULE = {
    "name": "slo-burn",
    "kind": "burn_rate",
    "numerator": "errors_total",
    "denominator": "requests_total",
    "objective": 0.05,
    "fast_window_ms": 2.0,
    "slow_window_ms": 6.0,
    "burn_threshold": 2.0,
    "for_frames": 2,
    "keep_frames": 2,
}


class TestRuleParsing:
    def test_valid_burn_rule(self):
        (rule,) = parse_alert_rules({"rules": [BURN_RULE]})
        assert rule.name == "slo-burn"
        assert rule.kind == "burn_rate"
        assert rule.horizon_ns() == 6.0e6

    def test_valid_threshold_rule(self):
        (rule,) = parse_alert_rules(
            {
                "rules": [
                    {
                        "name": "depth",
                        "kind": "threshold",
                        "metric": "queue_depth",
                        "op": ">=",
                        "value": 10,
                    }
                ]
            }
        )
        assert rule.op == ">="
        assert rule.value == 10.0
        assert rule.horizon_ns() == 0.0

    def test_top_level_shape_enforced(self):
        with pytest.raises(ValueError, match='"rules" list'):
            parse_alert_rules({"rule": []})
        with pytest.raises(ValueError, match='"rules" list'):
            parse_alert_rules([BURN_RULE])

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown field"):
            parse_alert_rules(
                {"rules": [{**BURN_RULE, "severity": "page"}]}
            )

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="kind must be one of"):
            parse_alert_rules(
                {"rules": [{"name": "x", "kind": "absence"}]}
            )

    def test_burn_rule_needs_numerator_and_denominator(self):
        broken = {k: v for k, v in BURN_RULE.items() if k != "denominator"}
        with pytest.raises(ValueError, match="needs denominator"):
            parse_alert_rules({"rules": [broken]})

    def test_threshold_needs_metric_and_valid_op(self):
        with pytest.raises(ValueError, match="needs metric"):
            parse_alert_rules(
                {"rules": [{"name": "x", "kind": "threshold"}]}
            )
        with pytest.raises(ValueError, match="op must be one of"):
            parse_alert_rules(
                {
                    "rules": [
                        {
                            "name": "x",
                            "kind": "threshold",
                            "metric": "m",
                            "op": "!=",
                        }
                    ]
                }
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate rule name"):
            parse_alert_rules({"rules": [BURN_RULE, BURN_RULE]})

    def test_hysteresis_frames_must_be_positive(self):
        with pytest.raises(ValueError, match="for_frames"):
            parse_alert_rules({"rules": [{**BURN_RULE, "for_frames": 0}]})

    def test_load_json_and_toml(self, tmp_path):
        json_path = tmp_path / "rules.json"
        json_path.write_text(json.dumps({"rules": [BURN_RULE]}))
        toml_path = tmp_path / "rules.toml"
        toml_path.write_text(
            "[[rules]]\n"
            'name = "slo-burn"\n'
            'kind = "burn_rate"\n'
            'numerator = "errors_total"\n'
            'denominator = "requests_total"\n'
            "objective = 0.05\n"
        )
        assert load_alert_rules(str(json_path))[0].name == "slo-burn"
        assert load_alert_rules(str(toml_path))[0].objective == 0.05


def _snapshot(requests: float, errors: float, **gauges) -> dict:
    return {
        "counters": {
            "requests_total{policy=Trident}": requests,
            "errors_total{policy=Trident}": errors,
        },
        "gauges": dict(gauges),
        "histograms": {},
    }


def _drive(engine: AlertEngine, error_rates, requests_per_frame=100.0):
    """Feed one frame per entry of ``error_rates`` (fraction bad), 1ms apart."""
    requests = errors = 0.0
    for frame, bad_fraction in enumerate(error_rates):
        requests += requests_per_frame
        errors += requests_per_frame * bad_fraction
        engine.evaluate((frame + 1) * 1e6, _snapshot(requests, errors))


class TestBurnRateEngine:
    def _engine(self, **overrides) -> AlertEngine:
        rules = parse_alert_rules({"rules": [{**BURN_RULE, **overrides}]})
        return AlertEngine(rules)

    def test_fires_and_resolves_on_transient_overload(self):
        engine = self._engine()
        # 6 clean frames, a 6-frame error burst, then clean again: the
        # burn crosses threshold in both windows during the burst and
        # falls back once the slow window drains.
        _drive(engine, [0.0] * 6 + [0.8] * 6 + [0.0] * 12)
        states = [t["state"] for t in engine.transitions]
        assert states == ["firing", "resolved"]
        firing, resolved = engine.transitions
        assert firing["rule"] == "slo-burn"
        assert resolved["sim_ms"] > firing["sim_ms"]
        assert engine.active() == []

    def test_single_bad_frame_does_not_fire(self):
        engine = self._engine()
        # One 30%-bad frame breaches the fast window (30/200 = 6x the
        # objective) but dilutes below threshold over the slow window
        # (30/600 = 1x), and the rule needs BOTH windows burning.
        _drive(engine, [0.0] * 8 + [0.3] + [0.0] * 8)
        assert engine.transitions == []

    def test_family_sum_spans_labeled_series(self):
        engine = self._engine()
        # Errors split across two labeled series of the bare family still
        # sum into one burn value.
        requests = errors = 0.0
        for frame in range(12):
            requests += 100.0
            errors += 80.0 if 4 <= frame < 10 else 0.0
            snapshot = {
                "counters": {
                    "requests_total{policy=Linux}": requests / 2,
                    "requests_total{policy=Trident}": requests / 2,
                    "errors_total{policy=Linux}": errors / 2,
                    "errors_total{policy=Trident}": errors / 2,
                },
                "gauges": {},
                "histograms": {},
            }
            engine.evaluate((frame + 1) * 1e6, snapshot)
        assert [t["state"] for t in engine.transitions] == ["firing"]

    def test_zero_denominator_is_zero_burn(self):
        engine = self._engine()
        for frame in range(6):
            engine.evaluate((frame + 1) * 1e6, _snapshot(0.0, 0.0))
        assert engine.transitions == []


class TestThresholdEngine:
    def _engine(self, metrics=None, tracer=None, **rule) -> AlertEngine:
        rules = parse_alert_rules(
            {
                "rules": [
                    {
                        "name": "depth",
                        "kind": "threshold",
                        "metric": "queue_depth",
                        "op": ">=",
                        "value": 8.0,
                        "for_frames": 2,
                        "keep_frames": 2,
                        **rule,
                    }
                ]
            }
        )
        return AlertEngine(rules, tracer=tracer, metrics=metrics)

    def test_gauge_threshold_fires_per_series(self):
        engine = self._engine(metric="node_depth")
        for frame in range(6):
            depth = 9.0 if frame >= 2 else 1.0
            snapshot = {
                "counters": {},
                "gauges": {
                    "node_depth{node=0}": depth,
                    "node_depth{node=1}": 1.0,
                },
                "histograms": {},
            }
            engine.evaluate((frame + 1) * 1e6, snapshot)
        assert [(t["series"], t["state"]) for t in engine.transitions] == [
            ("node_depth{node=0}", "firing")
        ]
        assert engine.active() == [
            {"rule": "depth", "series": "node_depth{node=0}"}
        ]

    def test_exact_series_key_matches_directly(self):
        engine = self._engine(metric="queue_depth")
        for frame in range(4):
            engine.evaluate(
                (frame + 1) * 1e6, _snapshot(1.0, 0.0, queue_depth=20.0)
            )
        (transition,) = engine.transitions
        assert transition["series"] == ""  # exact match: no per-series label
        assert transition["value"] == 20.0
        assert transition["threshold"] == 8.0

    def test_no_flapping_across_alternating_frames(self):
        # With for_frames=2 an alternating breach/clear value can never
        # accumulate two consecutive breaches, so the alert stays silent.
        engine = self._engine()
        for frame in range(20):
            depth = 9.0 if frame % 2 else 0.0
            engine.evaluate(
                (frame + 1) * 1e6, _snapshot(1.0, 0.0, queue_depth=depth)
            )
        assert engine.transitions == []

    def test_keep_frames_rides_out_single_clear_frame(self):
        # A firing alert must see keep_frames consecutive clear frames to
        # resolve; one good frame in a bad stretch does not flap it.
        engine = self._engine()
        pattern = [9.0, 9.0, 9.0, 0.0, 9.0, 9.0]
        for frame, depth in enumerate(pattern):
            engine.evaluate(
                (frame + 1) * 1e6, _snapshot(1.0, 0.0, queue_depth=depth)
            )
        assert [t["state"] for t in engine.transitions] == ["firing"]
        assert engine.active() == [{"rule": "depth", "series": ""}]

    def test_transitions_feed_tracer_and_metrics(self):
        registry = MetricsRegistry()
        tracer = Tracer(subsystems=("telemetry",))
        engine = self._engine(metrics=registry, tracer=tracer)
        for frame in range(8):
            depth = 9.0 if frame < 4 else 0.0
            engine.evaluate(
                (frame + 1) * 1e6, _snapshot(1.0, 0.0, queue_depth=depth)
            )
        assert registry.value("alert_transitions_total", rule="depth") == 2
        assert registry.value("alerts_active") == 0
        events = list(tracer.events("telemetry"))
        assert [e["event"] for e in events] == [
            "alert_firing",
            "alert_resolved",
        ]
        assert events[0]["rule"] == "depth"

    def test_export_shape(self):
        engine = self._engine()
        for frame in range(4):
            engine.evaluate(
                (frame + 1) * 1e6, _snapshot(1.0, 0.0, queue_depth=20.0)
            )
        export = engine.export()
        assert export["rules"] == [{"name": "depth", "kind": "threshold"}]
        assert export["frames"] == 4
        assert len(export["transitions"]) == 1
        assert export["active"] == [{"rule": "depth", "series": ""}]


class TestAlertRuleDefaults:
    def test_burn_rate_defaults_match_docs(self):
        rule = AlertRule(name="x", kind="burn_rate", numerator="a", denominator="b")
        assert rule.objective == 0.001
        assert rule.burn_threshold == 4.0
        assert rule.for_frames == 2
        assert rule.keep_frames == 2


class TestAlertLog:
    def test_merge_orders_transitions_canonically(self):
        log = AlertLog()
        log.add(
            "cell-b",
            {
                "rules": [],
                "frames": 3,
                "transitions": [
                    {"rule": "r", "series": "", "state": "firing", "sim_ms": 1.0}
                ],
                "active": [],
            },
        )
        log.add(
            "cell-a",
            {
                "rules": [],
                "frames": 3,
                "transitions": [
                    {"rule": "r", "series": "", "state": "firing", "sim_ms": 1.0},
                    {
                        "rule": "r",
                        "series": "",
                        "state": "resolved",
                        "sim_ms": 2.0,
                    },
                ],
                "active": [],
            },
        )
        merged = log.export()
        assert merged["kind"] == "alert_log"
        assert list(merged["cells"]) == ["cell-a", "cell-b"]
        assert [(t["sim_ms"], t["cell"]) for t in merged["transitions"]] == [
            (1.0, "cell-a"),
            (1.0, "cell-b"),
            (2.0, "cell-a"),
        ]
        assert merged["firing"] == 2
        assert merged["resolved"] == 1
