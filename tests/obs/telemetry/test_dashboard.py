"""Dashboard collection/rendering and the live HTTP scrape endpoint."""

import json
import urllib.request

from repro.obs.clock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.dashboard import (
    collect_streams,
    find_alert_log,
    render_dashboard,
    watch,
)
from repro.obs.telemetry.endpoint import (
    TelemetryHTTPServer,
    latest_frames_supplier,
)
from repro.obs.telemetry.exposition import ScrapeFileSink, TelemetryScraper


def _write_stream(path, cells: int = 1, frames: int = 3) -> None:
    """Seeded scrape streams with the service families the panels read."""
    for cell in range(cells):
        clock = SimClock()
        registry = MetricsRegistry()
        latency = registry.histogram(
            "service_request_latency_ns",
            buckets=(50_000, 500_000),
            workload="GUPS",
            policy="Trident",
        )
        requests = registry.counter(
            "service_requests_total", workload="GUPS", policy="Trident"
        )
        violations = registry.counter(
            "service_slo_violations_total", workload="GUPS", policy="Trident"
        )
        scraper = TelemetryScraper(
            clock,
            registry,
            ScrapeFileSink(str(path / f"cell{cell}.prom")),
            interval_ms=1.0,
            catalog=(),
        )
        for _ in range(frames):
            requests.inc(10)
            violations.inc(1)
            latency.observe(40_000.0)
            clock.advance(1e6)
        scraper.close()


class TestCollectStreams:
    def test_directory_of_streams(self, tmp_path):
        _write_stream(tmp_path, cells=2)
        streams = collect_streams(str(tmp_path))
        assert sorted(streams) == ["cell0", "cell1"]
        for state in streams.values():
            assert state["seq"] >= 3
            assert "snapshot" in state

    def test_single_file_source(self, tmp_path):
        _write_stream(tmp_path)
        streams = collect_streams(str(tmp_path / "cell0.prom"))
        assert list(streams) == ["cell0"]

    def test_empty_directory(self, tmp_path):
        assert collect_streams(str(tmp_path)) == {}


class TestRenderDashboard:
    def test_renders_service_rows(self, tmp_path):
        _write_stream(tmp_path, cells=2)
        lines = render_dashboard(collect_streams(str(tmp_path)))
        text = "\n".join(lines)
        assert "fleet telemetry — 2 stream(s)" in text
        assert "GUPS/Trident" in text

    def test_no_streams_placeholder(self):
        assert render_dashboard({}) == [
            "telemetry: no complete scrape frames yet"
        ]

    def test_rendering_is_pure(self, tmp_path):
        _write_stream(tmp_path)
        streams = collect_streams(str(tmp_path))
        assert render_dashboard(streams) == render_dashboard(streams)

    def test_alert_log_section(self, tmp_path):
        _write_stream(tmp_path)
        log = {
            "transitions": [
                {
                    "rule": "slo-burn",
                    "series": "",
                    "state": "firing",
                    "sim_ms": 1.5,
                    "cell": "cell0",
                    "value": 4.2,
                    "threshold": 2.0,
                }
            ],
            "firing": 1,
            "resolved": 0,
        }
        text = "\n".join(
            render_dashboard(collect_streams(str(tmp_path)), log)
        )
        assert "slo-burn" in text
        assert "firing" in text

    def test_find_alert_log_next_to_telemetry_dir(self, tmp_path):
        telemetry = tmp_path / "telemetry"
        telemetry.mkdir()
        (tmp_path / "alerts.json").write_text(
            json.dumps({"transitions": [], "firing": 0, "resolved": 0})
        )
        found = find_alert_log(str(telemetry))
        assert found == {"transitions": [], "firing": 0, "resolved": 0}


class TestWatch:
    def test_watch_iterations_with_injected_out(self, tmp_path):
        _write_stream(tmp_path)
        seen: list[str] = []
        code = watch(
            str(tmp_path),
            refresh_s=0.0,
            iterations=2,
            out=seen.append,
        )
        assert code == 0
        assert len(seen) == 2
        assert "fleet telemetry" in seen[0]


class TestEndpoint:
    def test_serves_metrics_and_health(self, tmp_path):
        _write_stream(tmp_path, cells=2)
        supplier = latest_frames_supplier(str(tmp_path))
        with TelemetryHTTPServer(supplier, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            with urllib.request.urlopen(f"{base}/metrics", timeout=10) as r:
                body = r.read().decode()
                assert r.headers["Content-Type"].startswith("text/plain")
            assert body.count("# stream ") == 2
            assert "service_requests_total" in body
            with urllib.request.urlopen(f"{base}/healthz", timeout=10) as r:
                assert r.read() == b"ok\n"
            streams = collect_streams(base)
            assert sorted(streams) == ["cell0", "cell1"]

    def test_empty_directory_serves_unhealthy(self, tmp_path):
        supplier = latest_frames_supplier(str(tmp_path))
        with TelemetryHTTPServer(supplier, port=0) as server:
            base = f"http://127.0.0.1:{server.port}"
            req = urllib.request.Request(f"{base}/healthz")
            try:
                urllib.request.urlopen(req, timeout=10)
                status = 200
            except urllib.error.HTTPError as exc:
                status = exc.code
            assert status == 503
