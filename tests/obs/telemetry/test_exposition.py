"""Exposition rendering, the strict parser, frames, and the scraper."""

import pytest

from repro.obs.clock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.exposition import (
    FRAME_TERMINATOR,
    ScrapeFileSink,
    TelemetryScraper,
    format_value,
    iter_frames,
    parse_exposition,
    read_last_frame,
    render_exposition,
    render_frame,
    validate_exposition,
)


def _registry_with_everything() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", workload="GUPS", policy="Trident").inc(7)
    reg.counter("requests_total", workload="BTree", policy="Linux").inc(3)
    reg.gauge("queue_depth").set(4)
    h = reg.histogram("latency_ns", buckets=(10, 100, 1000))
    for v in (5, 50, 500, 5000):
        h.observe(v)
    return reg


class TestFormatValue:
    def test_integral_floats_render_as_ints(self):
        assert format_value(3.0) == "3"
        assert format_value(7) == "7"

    def test_fractional_and_special(self):
        assert format_value(0.25) == "0.25"
        assert format_value(float("inf")) == "+Inf"
        assert format_value(float("-inf")) == "-Inf"
        assert format_value(float("nan")) == "NaN"


class TestRenderExposition:
    def test_families_sorted_with_type_lines(self):
        text = render_exposition(_registry_with_everything().snapshot())
        lines = text.splitlines()
        type_lines = [ln for ln in lines if ln.startswith("# TYPE")]
        assert type_lines == [
            "# TYPE latency_ns histogram",
            "# TYPE queue_depth gauge",
            "# TYPE requests_total counter",
        ]

    def test_histogram_buckets_are_cumulative(self):
        text = render_exposition(_registry_with_everything().snapshot())
        buckets = [
            ln for ln in text.splitlines() if ln.startswith("latency_ns_bucket")
        ]
        counts = [int(ln.rsplit(None, 1)[1]) for ln in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('latency_ns_bucket{le="+Inf"}')
        assert counts[-1] == 4
        assert "latency_ns_sum 5555" in text
        assert "latency_ns_count 4" in text

    def test_catalog_help_text_included(self):
        catalog = (("requests_total", "counter", "", "All requests."),)
        reg = MetricsRegistry()
        reg.counter("requests_total").inc()
        text = render_exposition(reg.snapshot(), catalog)
        assert "# HELP requests_total All requests." in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", path='a"b\\c\nd').inc()
        text = render_exposition(reg.snapshot())
        assert 'path="a\\"b\\\\c\\nd"' in text

    def test_cross_kind_family_raises(self):
        snapshot = {
            "counters": {"x_total": 1},
            "gauges": {"x_total": 2.0},
            "histograms": {},
        }
        with pytest.raises(ValueError, match="both counters and gauges"):
            render_exposition(snapshot)

    def test_empty_snapshot_is_empty_text(self):
        assert render_exposition({"counters": {}, "gauges": {}}) == ""


class TestParseRoundTrip:
    def test_round_trip_equals_snapshot(self):
        snapshot = _registry_with_everything().snapshot()
        parsed = parse_exposition(render_exposition(snapshot))
        assert parsed["counters"] == snapshot["counters"]
        assert parsed["gauges"] == snapshot["gauges"]
        for key, export in snapshot["histograms"].items():
            got = parsed["histograms"][key]
            assert got["count"] == export["count"]
            assert got["sum"] == export["sum"]
            assert got["buckets"] == export["buckets"]

    def test_round_trip_with_escaped_labels(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", path='a"b\\c\nd', other="x,y=z").inc(2)
        snapshot = reg.snapshot()
        parsed = parse_exposition(render_exposition(snapshot))
        assert parsed["counters"] == snapshot["counters"]

    def test_undeclared_family_raises(self):
        with pytest.raises(ValueError, match="undeclared family"):
            parse_exposition("mystery_total 3\n")

    def test_non_cumulative_buckets_raise(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 9\n"
            "h_count 3\n"
        )
        with pytest.raises(ValueError, match="not cumulative"):
            parse_exposition(text)

    def test_missing_inf_bucket_raises(self):
        text = "# TYPE h histogram\n" 'h_bucket{le="1"} 5\n' "h_sum 9\nh_count 5\n"
        with pytest.raises(ValueError, match=r"\+Inf"):
            parse_exposition(text)

    def test_inf_count_mismatch_raises(self):
        text = (
            "# TYPE h histogram\n"
            'h_bucket{le="+Inf"} 4\n'
            "h_sum 9\n"
            "h_count 5\n"
        )
        with pytest.raises(ValueError, match="!= *count|count"):
            parse_exposition(text)


class TestValidateExposition:
    def test_valid_text_passes(self):
        validate_exposition(
            render_exposition(_registry_with_everything().snapshot())
        )

    def test_duplicate_family_declaration_raises(self):
        with pytest.raises(ValueError, match="declared twice"):
            validate_exposition(
                "# TYPE a counter\n# TYPE a counter\na 1\n"
            )

    def test_duplicate_series_raises(self):
        with pytest.raises(ValueError, match="duplicate series"):
            validate_exposition("# TYPE a counter\na 1\na 2\n")

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError, match="unknown family type"):
            validate_exposition("# TYPE a summary\na 1\n")

    def test_sample_before_type_raises(self):
        with pytest.raises(ValueError, match="undeclared"):
            validate_exposition("a 1\n# TYPE a counter\n")


class TestFrames:
    def test_frame_has_header_and_terminator(self):
        frame = render_frame(
            _registry_with_everything().snapshot(), 3, 1.5, catalog=()
        )
        lines = frame.splitlines()
        assert lines[0] == "# scrape seq=3 sim_ms=1.5"
        assert lines[-1] == FRAME_TERMINATOR
        validate_exposition(frame)

    def test_iter_frames_splits_stream(self):
        snapshot = _registry_with_everything().snapshot()
        stream = render_frame(snapshot, 1, 1.0, ()) + render_frame(
            snapshot, 2, 2.0, ()
        )
        parsed = list(iter_frames(stream))
        assert [(seq, ts) for seq, ts, _ in parsed] == [(1, 1.0), (2, 2.0)]
        assert "".join(frame for _, _, frame in parsed) == stream


class TestScraper:
    def _run_once(self, path) -> str:
        clock = SimClock()
        reg = MetricsRegistry()
        c = reg.counter("ticks_total")
        scraper = TelemetryScraper(
            clock, reg, ScrapeFileSink(str(path)), interval_ms=1.0, catalog=()
        )
        for _ in range(5):
            c.inc()
            clock.advance(0.4e6)  # 0.4 ms per step
        scraper.close()
        with open(path) as f:
            return f.read()

    def test_cadence_follows_simulated_time(self, tmp_path):
        text = self._run_once(tmp_path / "s.prom")
        frames = list(iter_frames(text))
        # 2.0ms of simulated time at a 1ms cadence: scrapes at 0.4 and
        # 1.6 (first advance past each due time), plus the close() frame.
        assert [ts for _, ts, _ in frames] == [0.4, 1.6, 2.0]
        assert [seq for seq, _, _ in frames] == [1, 2, 3]
        for _, _, frame in frames:
            validate_exposition(frame)

    def test_repeat_run_is_byte_identical(self, tmp_path):
        first = self._run_once(tmp_path / "a.prom")
        second = self._run_once(tmp_path / "b.prom")
        assert first == second

    def test_frames_counter_in_stream(self, tmp_path):
        text = self._run_once(tmp_path / "s.prom")
        _, _, last = list(iter_frames(text))[-1]
        parsed = parse_exposition(last)
        assert parsed["counters"]["telemetry_frames_total"] == 3

    def test_close_is_idempotent_and_detaches(self, tmp_path):
        clock = SimClock()
        reg = MetricsRegistry()
        sink = ScrapeFileSink(str(tmp_path / "s.prom"))
        scraper = TelemetryScraper(clock, reg, sink, interval_ms=1.0, catalog=())
        scraper.close()
        scraper.close()
        clock.advance(5e6)  # must not scrape after close
        assert scraper.frames == 1

    def test_read_last_frame(self, tmp_path):
        path = tmp_path / "s.prom"
        self._run_once(path)
        last = read_last_frame(str(path))
        assert last is not None
        seq, ts_ms, frame = last
        assert (seq, ts_ms) == (3, 2.0)
        assert frame.endswith(FRAME_TERMINATOR + "\n")

    def test_nonpositive_interval_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="interval_ms"):
            TelemetryScraper(
                SimClock(),
                MetricsRegistry(),
                ScrapeFileSink(str(tmp_path / "s.prom")),
                interval_ms=0.0,
            )

    def test_sink_truncates_on_create(self, tmp_path):
        path = tmp_path / "s.prom"
        path.write_text("stale bytes\n")
        sink = ScrapeFileSink(str(path))
        sink.emit("# scrape seq=1 sim_ms=0\n# EOF\n")
        sink.close()
        assert "stale" not in path.read_text()
