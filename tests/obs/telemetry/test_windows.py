"""Sliding-window series, mergeable histogram windows, frame aggregation."""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.telemetry.windows import (
    FrameAggregator,
    HistogramWindow,
    WindowSeries,
    histogram_export_delta,
    merge_histogram_exports,
)


def _export(counts: dict, total: float, observed_max: float | None = None):
    export = {
        "count": sum(counts.values()),
        "sum": total,
        "buckets": dict(counts),
    }
    if observed_max is not None:
        export["max"] = observed_max
    return export


class TestMergeHistogramExports:
    def test_counts_and_sums_add(self):
        merged = merge_histogram_exports(
            [
                _export({"10": 1, "+Inf": 2}, 30.0),
                _export({"10": 4, "+Inf": 0}, 12.0),
            ]
        )
        assert merged == {
            "count": 7,
            "sum": 42.0,
            "buckets": {"10": 5, "+Inf": 2},
        }

    def test_max_takes_largest(self):
        merged = merge_histogram_exports(
            [
                _export({"+Inf": 1}, 5.0, observed_max=5.0),
                _export({"+Inf": 1}, 9.0, observed_max=9.0),
            ]
        )
        assert merged["max"] == 9.0

    def test_mismatched_bounds_raise(self):
        with pytest.raises(ValueError, match="different bucket bounds"):
            merge_histogram_exports(
                [_export({"10": 1, "+Inf": 0}, 1.0), _export({"+Inf": 1}, 1.0)]
            )

    def test_empty_merge_is_zero(self):
        assert merge_histogram_exports([]) == {
            "count": 0,
            "sum": 0.0,
            "buckets": {},
        }


class TestWindowSeries:
    def test_delta_over_trailing_window(self):
        series = WindowSeries(horizon_ns=10e6)
        for step in range(6):
            series.observe(step * 1e6, float(step * 10))
        assert series.delta(2e6) == 20.0
        assert series.delta(100e6) == 50.0  # partial window: full history

    def test_rate_per_simulated_second(self):
        series = WindowSeries(horizon_ns=10e6)
        series.observe(0.0, 0.0)
        series.observe(1e6, 500.0)  # 500 events in 1 simulated ms
        assert series.rate_per_s(1e6) == pytest.approx(500_000.0)

    def test_eviction_keeps_anchor_at_horizon_edge(self):
        series = WindowSeries(horizon_ns=3e6)
        for step in range(10):
            series.observe(step * 1e6, float(step))
        # Samples older than now-horizon are gone, but one anchor at or
        # before the edge survives so a full-width delta still differences.
        assert series.ts[0] <= 9e6 - 3e6
        assert len(series.ts) <= 5
        assert series.delta(3e6) == 3.0

    def test_decimation_is_deterministic_and_keeps_newest(self):
        def run():
            series = WindowSeries(horizon_ns=1e12, max_samples=8)
            for step in range(101):
                series.observe(float(step), float(step))
            return list(zip(series.ts, series.values))

        first, second = run(), run()
        assert first == second
        assert len(first) < 101
        assert first[-1] == (100.0, 100.0)

    def test_rejects_degenerate_parameters(self):
        with pytest.raises(ValueError, match="horizon_ns"):
            WindowSeries(horizon_ns=0)
        with pytest.raises(ValueError, match="max_samples"):
            WindowSeries(horizon_ns=1e6, max_samples=2)


class TestHistogramWindow:
    @staticmethod
    def _cumulative_stream(steps: int):
        """Cumulative exports of one series observed once per step."""
        registry = MetricsRegistry()
        h = registry.histogram("h", buckets=(10, 100))
        stream = []
        for step in range(steps):
            h.observe(5 if step % 2 else 50)
            stream.append((float(step) * 1e6, h.export()))
        return stream

    def test_adjacent_window_deltas_merge_to_union(self):
        # The mergeability property the module docstring pins: the delta
        # over [t-4ms, t-2ms] plus the delta over [t-2ms, t] equals the
        # delta over [t-4ms, t], bucket for bucket.  The older window is
        # read mid-stream (when its end was the newest frame), not
        # reconstructed from the union.
        window = HistogramWindow(horizon_ns=100e6)
        stream = self._cumulative_stream(9)
        for ts_ns, export in stream[:7]:  # up to ts=6ms
            window.observe(ts_ns, export)
        older = window.window_delta(2e6)  # [4ms, 6ms]
        for ts_ns, export in stream[7:]:  # through ts=8ms
            window.observe(ts_ns, export)
        recent = window.window_delta(2e6)  # [6ms, 8ms]
        union = window.window_delta(4e6)  # [4ms, 8ms]
        merged = merge_histogram_exports([older, recent])
        assert merged["buckets"] == union["buckets"]
        assert merged["count"] == union["count"]
        assert merged["sum"] == pytest.approx(union["sum"])

    def test_window_covering_all_history_is_cumulative_export(self):
        window = HistogramWindow(horizon_ns=100e6)
        stream = self._cumulative_stream(4)
        for ts_ns, export in stream:
            window.observe(ts_ns, export)
        delta = window.window_delta(1e12)
        assert delta["count"] == stream[-1][1]["count"]
        assert delta["buckets"] == stream[-1][1]["buckets"]

    def test_empty_window(self):
        window = HistogramWindow(horizon_ns=1e6)
        assert window.window_delta(1e6) == {
            "count": 0,
            "sum": 0.0,
            "buckets": {},
        }

    def test_export_delta_bound_mismatch_raises(self):
        with pytest.raises(ValueError, match="different bounds"):
            histogram_export_delta(
                _export({"10": 1, "+Inf": 0}, 1.0), _export({"+Inf": 0}, 0.0)
            )


class TestFrameAggregator:
    @staticmethod
    def _feed(agg: FrameAggregator, frames: int = 5):
        registry = MetricsRegistry()
        c = registry.counter("reqs_total", policy="Trident")
        g = registry.gauge("depth")
        h = registry.histogram("lat_ns", buckets=(10, 100))
        for step in range(frames):
            c.inc(10)
            g.set(step)
            h.observe(50)
            agg.observe_frame((step + 1) * 1e6, registry.snapshot())

    def test_value_delta_rate(self):
        agg = FrameAggregator(horizon_ns=50e6)
        self._feed(agg)
        key = "reqs_total{policy=Trident}"
        assert agg.value(key) == 50
        assert agg.delta(key, 2e6) == 20.0
        # 20 events over 2 simulated ms = 10k events per simulated second
        assert agg.rate_per_s(key, 2e6) == pytest.approx(10_000.0)
        assert agg.value("depth") == 4

    def test_unknown_series_is_zero(self):
        agg = FrameAggregator()
        assert agg.value("nope") is None
        assert agg.delta("nope", 1e6) == 0.0
        assert agg.rate_per_s("nope", 1e6) == 0.0
        assert agg.histogram_window("nope", 1e6) == {
            "count": 0,
            "sum": 0.0,
            "buckets": {},
        }

    def test_histogram_window_and_quantile(self):
        agg = FrameAggregator(horizon_ns=50e6)
        self._feed(agg)
        windowed = agg.histogram_window("lat_ns", 2e6)
        assert windowed["count"] == 2
        full = agg.histogram_window("lat_ns", None)
        assert full["count"] == 5
        assert agg.quantile("lat_ns", 99.0) == 100.0
        assert agg.quantile("lat_ns", 99.0, window_ns=2e6) == 100.0
        assert agg.quantile("nope", 50.0) == 0.0
