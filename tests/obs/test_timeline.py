"""Unit tests for bounded time-series samplers on the simulated clock."""

import pytest

from repro.obs.clock import SimClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeline import TimelineSampler, TimeSeries


class TestTimeSeries:
    def test_append_and_export(self):
        s = TimeSeries("fmfi", unit="index")
        assert s.append(0.5, 0.9) is False
        assert s.export() == {"unit": "index", "points": [[0.5, 0.9]]}

    def test_decimation_halves_and_keeps_newest(self):
        s = TimeSeries("x", max_points=8)
        flags = [s.append(float(i), float(i)) for i in range(8)]
        assert flags == [False] * 7 + [True]
        # every second point survives, plus both boundaries: coverage
        # still spans the full [first, newest] window after decimating
        assert [p[0] for p in s.points] == [0.0, 2.0, 4.0, 6.0, 7.0]

    def test_decimation_keeps_first_and_last_samples(self):
        """Flight-recorder boundary: the run's first and newest samples
        must survive every decimation round, not just mid-buffer ones."""
        s = TimeSeries("x", max_points=16)
        for i in range(1000):
            s.append(float(i), float(i))
        assert s.points[0] == (0.0, 0.0)
        assert s.points[-1] == (999.0, 999.0)
        # and between the boundaries timestamps stay strictly ordered
        ts = [p[0] for p in s.points]
        assert ts == sorted(ts) and len(set(ts)) == len(ts)

    def test_decimation_boundary_without_duplicating_newest(self):
        """When the every-second-point slice already ends on the newest
        sample (odd buffer length at overflow), no duplicate is appended."""
        s = TimeSeries("x", max_points=7)
        for i in range(7):  # overflow at append #7 -> points [0..6]
            s.append(float(i), 0.0)
        ts = [p[0] for p in s.points]
        assert ts == [0.0, 2.0, 4.0, 6.0]  # 6.0 kept once, not twice
        assert len(ts) == len(set(ts))

    def test_max_points_bounds_memory(self):
        s = TimeSeries("x", max_points=8)
        for i in range(10_000):
            s.append(float(i), 0.0)
        assert len(s.points) <= 8

    def test_tiny_max_points_rejected(self):
        with pytest.raises(ValueError):
            TimeSeries("x", max_points=1)


class TestTimelineSampler:
    def test_samples_on_interval_not_every_advance(self):
        clock = SimClock()
        sampler = TimelineSampler(clock, interval_ms=1.0)  # 1e6 ns
        sampler.add_series("const", lambda: 42.0)
        for _ in range(10):
            clock.advance(0.3e6)  # 0.3 ms steps
        # due at 0, then every >=1ms after a taken sample
        assert 3 <= sampler.samples <= 4
        pts = sampler.export()["series"]["const"]["points"]
        assert all(v == 42.0 for _, v in pts)

    def test_no_series_means_no_samples(self):
        clock = SimClock()
        sampler = TimelineSampler(clock, interval_ms=1.0)
        clock.advance(50e6)
        assert sampler.samples == 0

    def test_decimation_doubles_cadence_for_all_series(self):
        clock = SimClock()
        sampler = TimelineSampler(clock, interval_ms=1.0, max_points=8)
        sampler.add_series("a", lambda: 1.0)
        sampler.add_series("b", lambda: 2.0)
        before = sampler.interval_ns
        for _ in range(8):
            sampler.sample()
            clock.now_ns += 1e6  # move time without triggering the listener
        assert sampler.interval_ns == before * 2.0
        exported = sampler.export()["series"]
        assert len(exported["a"]["points"]) == len(exported["b"]["points"])

    def test_explicit_sample_counts_in_metrics(self):
        clock = SimClock()
        metrics = MetricsRegistry()
        sampler = TimelineSampler(clock, interval_ms=1.0, metrics=metrics)
        sampler.add_series("a", lambda: 0.0)
        sampler.sample()
        assert metrics.counter("timeline_samples_total").value == 1

    def test_export_sorted_and_deterministic(self):
        def build():
            clock = SimClock()
            sampler = TimelineSampler(clock, interval_ms=1.0)
            sampler.add_series("zeta", lambda: 1.0)
            sampler.add_series("alpha", lambda: 2.0)
            for _ in range(5):
                clock.advance(2e6)
            return sampler.export()

        one, two = build(), build()
        assert one == two
        assert list(one["series"]) == ["alpha", "zeta"]

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            TimelineSampler(SimClock(), interval_ms=0.0)
