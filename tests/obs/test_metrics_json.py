"""End-to-end: the emitted metrics.json agrees with RunMetrics.

The acceptance contract for the observability layer: counters exported by
the registry and the figures computed from :class:`RunMetrics` must be two
views of the same numbers.
"""

import json

from repro.cli import main
from repro.experiments.runner import NativeRunner, RunConfig


class TestMetricsJsonMatchesRunMetrics:
    def test_zerofill_and_promotion_counters_agree(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        runner = NativeRunner(
            RunConfig(
                "GUPS",
                "Trident",
                n_accesses=3000,
                fragmented=True,
                metrics_out=path,
            )
        )
        metrics = runner.run()
        data = json.loads(open(path).read())
        counters = data["counters"]
        assert counters["zerofill_take_hit_total"] == metrics.zerofill_pool_hits
        assert (
            counters["zerofill_take_miss_total"] == metrics.zerofill_pool_misses
        )
        assert counters["zerofill_fill_total"] == metrics.zerofill_blocks_zeroed
        assert (
            counters["policy_promo_large_failures_total"]
            == metrics.promo_large_failures
        )
        assert (
            counters["policy_promo_large_attempts_total"]
            == metrics.promo_large_attempts
        )
        assert (
            counters["policy_fault_large_attempts_total"]
            == metrics.fault_large_attempts
        )
        assert (
            counters["policy_fault_large_failures_total"]
            == metrics.fault_large_failures
        )
        # The embedded run section mirrors the same RunMetrics fields.
        assert data["run"]["zerofill_pool_hits"] == metrics.zerofill_pool_hits
        assert (
            data["run"]["promo_large_failures"] == metrics.promo_large_failures
        )

    def test_tlb_totals_agree_with_translation_stats(self, tmp_path):
        path = str(tmp_path / "metrics.json")
        runner = NativeRunner(
            RunConfig("GUPS", "Trident", n_accesses=3000, metrics_out=path)
        )
        metrics = runner.run()
        counters = json.loads(open(path).read())["counters"]
        # The runner resets TLB stats before the steady-state stream, so the
        # mirrored totals equal the sampled-phase counts in RunMetrics.
        assert counters["tlb_accesses_total"] == metrics.accesses
        walks = sum(
            v for k, v in counters.items() if k.startswith("tlb_walks_total{")
        )
        assert walks == metrics.walks


class TestObservabilityCLI:
    def test_policy_flag_is_case_insensitive(self, capsys, tmp_path):
        path = str(tmp_path / "m.json")
        code = main(
            [
                "run", "GUPS", "--policy", "trident",
                "--accesses", "2000", "--metrics-out", path,
            ]
        )
        assert code == 0
        data = json.loads(open(path).read())
        assert data["run"]["policy"] == "Trident"
        assert "metrics written" in capsys.readouterr().out

    def test_missing_policy_errors(self, capsys):
        assert main(["run", "GUPS"]) == 2
        assert "no policy" in capsys.readouterr().out

    def test_trace_flag_prints_summary_and_writes_jsonl(self, capsys, tmp_path):
        trace_path = str(tmp_path / "t.jsonl")
        code = main(
            [
                "run", "GUPS", "Trident", "--accesses", "2000",
                "--trace", "--trace-out", trace_path,
                "--trace-subsystems", "buddy,zerofill",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "trace:" in out
        records = [
            json.loads(line) for line in open(trace_path) if line.strip()
        ]
        assert records
        assert {r["subsystem"] for r in records} <= {"buddy", "zerofill"}

    def test_metrics_command_lists_catalog(self, capsys):
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert "buddy_free_blocks" in out
        assert "tlb_walk_cycles" in out
        assert main(["metrics", "--kind", "gauge"]) == 0
        out = capsys.readouterr().out
        assert "zerofill_pool_size" in out
        assert "buddy_alloc_total" not in out

    def test_metrics_dir_drop(self, tmp_path):
        """``repro experiment --metrics-out DIR`` routes every runner's
        metrics.json into DIR via the module-level METRICS_DIR switch."""
        import os

        import repro.experiments.runner as runner_mod

        out_dir = str(tmp_path / "metrics")
        os.makedirs(out_dir)
        runner_mod.METRICS_DIR = out_dir
        try:
            NativeRunner(RunConfig("GUPS", "Trident", n_accesses=2000)).run()
        finally:
            runner_mod.METRICS_DIR = None
        written = os.listdir(out_dir)
        assert written == ["metrics_GUPS_Trident.json"]
        sample = json.loads(open(os.path.join(out_dir, written[0])).read())
        assert "counters" in sample and "run" in sample

    def test_experiment_flag_resets_metrics_dir(self, capsys, tmp_path):
        import repro.experiments.runner as runner_mod

        out_dir = str(tmp_path / "drop")
        # Even when the experiment itself fails, the switch is restored.
        assert main(["experiment", "nope", "--metrics-out", out_dir]) == 2
        assert runner_mod.METRICS_DIR is None
